//! Crash-safe write-ahead job journal.
//!
//! The scheduler appends one checksummed JSON line per job transition —
//! `submitted` (the full request, write-ahead of the client's ack),
//! `started`, and `done` (any terminal state) — so a `kill -9` loses at
//! most work the client was never told was accepted. Two further record
//! kinds make poison jobs durable facts rather than per-process memory:
//! `attempt` (an abnormal failure — executor panic, watchdog kill, or
//! budget breach — with its ordinal and reason) and `quarantined` (the
//! scheduler has pinned the key; it must never execute again). On
//! startup, [`Journal::open`] scans the log, tolerating a torn final
//! record (interrupted append), folds it into a per-key state machine,
//! and returns every job that was durably accepted but never finished
//! plus the surviving attempt counts and quarantine pins; the service
//! replays the pending jobs into the scheduler and the journal is
//! compacted down to just the still-meaningful records via the same
//! tempfile+rename idiom the cache uses.
//!
//! Compaction also runs **live**: with [`Journal::with_compact_bytes`]
//! configured, an append that pushes the file past the threshold
//! rewrites it in place (pending submissions + attempt counts +
//! quarantine pins), so a long-running server's journal stays
//! proportional to its open work instead of its history. Each rewrite
//! bumps the `journal_compactions` counter when one is attached.
//!
//! Records are keyed by the request's content address ([`JobKey`] hex),
//! not by scheduler job ids — ids restart from 1 after a crash, content
//! addresses don't. `scale` travels as its exact `f64` bit pattern
//! (`scale_bits`), so a recovered request hashes to the same key it was
//! journaled under.

use std::collections::{HashMap, HashSet};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use nemfpga::request::{ExperimentKind, ExperimentRequest};
use nemfpga_runtime::faults::{FaultAction, FaultPoint};

use crate::json::{self, Value};
use crate::qos::{Lane, DEFAULT_TENANT};
use crate::sha::sha256_hex;

/// Fires once per appended record. `Err` fails the append (frozen
/// disk), `Corrupt`/`ShortRead` damage the line on its way out — the
/// recovery scan must shrug both off as a torn tail.
static FAULT_APPEND: FaultPoint = FaultPoint::new("journal.append");

/// Milliseconds since the Unix epoch. Deadlines are journaled as wall
/// time because monotonic instants do not survive a restart.
pub fn now_unix_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or(Duration::ZERO).as_millis() as u64
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job was accepted (written before the client hears "accepted").
    Submitted {
        /// Content address (64-hex) of the request.
        key: String,
        /// Experiment wire name.
        experiment: String,
        /// Exact bit pattern of the request's `scale`.
        scale_bits: u64,
        /// Benchmark count.
        benchmarks: u64,
        /// Request seed.
        seed: u64,
        /// Client deadline as wall time, when one was given.
        deadline_unix_ms: Option<u64>,
        /// Submitting tenant, when not the default (optional for
        /// backward compatibility with pre-QoS journals).
        tenant: Option<String>,
        /// Priority lane, when not interactive.
        lane: Option<String>,
    },
    /// A worker picked the job up.
    Started {
        /// Content address of the request.
        key: String,
    },
    /// The job failed abnormally (executor panic, watchdog kill, or
    /// budget breach). Attempts accumulate per key across restarts; a
    /// successful `done` clears them.
    Attempt {
        /// Content address of the request.
        key: String,
        /// Ordinal of this failed attempt (1-based). The fold takes the
        /// max per key, so compaction can collapse a run of attempts
        /// into one record without losing the count.
        attempt: u32,
        /// Human-readable failure reason (panic message, "watchdog:
        /// ...", "budget: ...").
        reason: String,
    },
    /// The key is pinned: it reached the quarantine threshold and must
    /// never execute again. Sticky — preserved by every compaction.
    Quarantined {
        /// Content address of the request.
        key: String,
        /// The structured error served to waiters and result lookups.
        error: String,
    },
    /// The job reached a terminal state.
    Done {
        /// Content address of the request.
        key: String,
        /// Terminal state wire name (`done`, `failed`, `timed_out`,
        /// `expired`, `cancelled`, `quarantined`).
        state: String,
    },
}

impl JournalRecord {
    /// Builds the `submitted` record for `request` (default tenant,
    /// interactive lane; see [`JournalRecord::with_class`]).
    pub fn submitted(
        key: &str,
        request: &ExperimentRequest,
        deadline_unix_ms: Option<u64>,
    ) -> Self {
        Self::Submitted {
            key: key.to_owned(),
            experiment: request.experiment.name().to_owned(),
            scale_bits: request.scale.to_bits(),
            benchmarks: request.benchmarks as u64,
            seed: request.seed,
            deadline_unix_ms,
            tenant: None,
            lane: None,
        }
    }

    /// Tags a `submitted` record with its scheduling class. Default
    /// tenant and interactive lane are elided from the encoding, so
    /// single-tenant journals look exactly like pre-QoS ones.
    #[must_use]
    pub fn with_class(mut self, job_tenant: &str, job_lane: Lane) -> Self {
        if let Self::Submitted { tenant, lane, .. } = &mut self {
            *tenant = (job_tenant != DEFAULT_TENANT).then(|| job_tenant.to_owned());
            *lane = (job_lane != Lane::Interactive).then(|| job_lane.name().to_owned());
        }
        self
    }

    /// The content address this record is about.
    pub fn key(&self) -> &str {
        match self {
            Self::Submitted { key, .. }
            | Self::Started { key }
            | Self::Attempt { key, .. }
            | Self::Quarantined { key, .. }
            | Self::Done { key, .. } => key,
        }
    }

    fn to_value(&self) -> Value {
        match self {
            Self::Submitted {
                key,
                experiment,
                scale_bits,
                benchmarks,
                seed,
                deadline_unix_ms,
                tenant,
                lane,
            } => {
                let mut fields = vec![
                    ("kind", Value::Str("submitted".to_owned())),
                    ("key", Value::Str(key.clone())),
                    ("experiment", Value::Str(experiment.clone())),
                    ("scale_bits", Value::U64(*scale_bits)),
                    ("benchmarks", Value::U64(*benchmarks)),
                    ("seed", Value::U64(*seed)),
                ];
                if let Some(ms) = deadline_unix_ms {
                    fields.push(("deadline_unix_ms", Value::U64(*ms)));
                }
                if let Some(name) = tenant {
                    fields.push(("tenant", Value::Str(name.clone())));
                }
                if let Some(name) = lane {
                    fields.push(("lane", Value::Str(name.clone())));
                }
                Value::obj(fields)
            }
            Self::Started { key } => Value::obj(vec![
                ("kind", Value::Str("started".to_owned())),
                ("key", Value::Str(key.clone())),
            ]),
            Self::Attempt { key, attempt, reason } => Value::obj(vec![
                ("kind", Value::Str("attempt".to_owned())),
                ("key", Value::Str(key.clone())),
                ("attempt", Value::U64(u64::from(*attempt))),
                ("reason", Value::Str(reason.clone())),
            ]),
            Self::Quarantined { key, error } => Value::obj(vec![
                ("kind", Value::Str("quarantined".to_owned())),
                ("key", Value::Str(key.clone())),
                ("error", Value::Str(error.clone())),
            ]),
            Self::Done { key, state } => Value::obj(vec![
                ("kind", Value::Str("done".to_owned())),
                ("key", Value::Str(key.clone())),
                ("state", Value::Str(state.clone())),
            ]),
        }
    }

    fn from_value(doc: &Value) -> Option<Self> {
        let key = doc.get("key")?.as_str()?.to_owned();
        match doc.get("kind")?.as_str()? {
            "submitted" => Some(Self::Submitted {
                key,
                experiment: doc.get("experiment")?.as_str()?.to_owned(),
                scale_bits: doc.get("scale_bits")?.as_u64()?,
                benchmarks: doc.get("benchmarks")?.as_u64()?,
                seed: doc.get("seed")?.as_u64()?,
                deadline_unix_ms: match doc.get("deadline_unix_ms") {
                    None => None,
                    Some(v) => Some(v.as_u64()?),
                },
                tenant: match doc.get("tenant") {
                    None => None,
                    Some(v) => Some(v.as_str()?.to_owned()),
                },
                lane: match doc.get("lane") {
                    None => None,
                    Some(v) => Some(v.as_str()?.to_owned()),
                },
            }),
            "started" => Some(Self::Started { key }),
            "attempt" => Some(Self::Attempt {
                key,
                attempt: u32::try_from(doc.get("attempt")?.as_u64()?).ok()?,
                reason: doc.get("reason")?.as_str()?.to_owned(),
            }),
            "quarantined" => {
                Some(Self::Quarantined { key, error: doc.get("error")?.as_str()?.to_owned() })
            }
            "done" => Some(Self::Done { key, state: doc.get("state")?.as_str()?.to_owned() }),
            _ => None,
        }
    }

    /// Encodes the record as one journal line (no trailing newline):
    /// `{"checksum": sha256(record-json), "record": {...}}`.
    pub fn encode_line(&self) -> String {
        let record = self.to_value().to_json();
        Value::obj(vec![
            ("checksum", Value::Str(sha256_hex(record.as_bytes()))),
            ("record", self.to_value()),
        ])
        .to_json()
    }

    /// Decodes and verifies one journal line. `None` for anything that
    /// does not parse, fails its checksum, or names an unknown kind — a
    /// torn or tampered line is skipped evidence, never a panic.
    pub fn decode_line(line: &str) -> Option<Self> {
        let doc = json::parse(line).ok()?;
        let checksum = doc.get("checksum")?.as_str()?;
        let record = doc.get("record")?;
        // The record sub-document contains only strings and integers, so
        // re-encoding the parsed value reproduces the appended bytes.
        if checksum != sha256_hex(record.to_json().as_bytes()) {
            return None;
        }
        Self::from_value(record)
    }
}

/// A job the journal shows as accepted but not finished.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The reconstructed request.
    pub request: ExperimentRequest,
    /// Client deadline as wall time, when one was journaled.
    pub deadline_unix_ms: Option<u64>,
    /// Whether a worker had picked it up before the crash.
    pub started: bool,
    /// Submitting tenant; `None` = the default tenant.
    pub tenant: Option<String>,
    /// Priority lane it was submitted in.
    pub lane: Lane,
}

/// What a startup recovery scan found.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Accepted, unfinished, unexpired jobs to replay into the scheduler.
    pub pending: Vec<PendingJob>,
    /// Accepted, unfinished jobs whose client deadline passed while the
    /// server was down; closed out as `expired` without replaying.
    pub expired: Vec<PendingJob>,
    /// Surviving abnormal-failure counts: `(key, attempts, last
    /// reason)`. The service preloads these into the scheduler so the
    /// quarantine threshold counts across restarts.
    pub attempts: Vec<(String, u32, String)>,
    /// Quarantine pins: `(key, error)`. Pinned keys are excluded from
    /// `pending` — they must never execute again.
    pub quarantined: Vec<(String, String)>,
    /// Records that decoded and verified.
    pub records_scanned: usize,
    /// True when the scan stopped at a torn or corrupt line.
    pub torn_tail: bool,
}

/// The per-key fold the journal maintains: everything a compaction
/// needs to rewrite. Updated incrementally on every append so a live
/// rewrite never has to re-read the file it is about to replace.
#[derive(Default)]
struct FoldState {
    /// Keys in first-submission order (may hold keys later settled;
    /// emission filters on map presence and dedups).
    pending_order: Vec<String>,
    /// key → its `submitted` record, for still-open jobs.
    pending: HashMap<String, JournalRecord>,
    attempt_order: Vec<String>,
    /// key → (max attempt ordinal seen, last reason).
    attempts: HashMap<String, (u32, String)>,
    quarantine_order: Vec<String>,
    /// key → quarantine error (first pin wins; pins are sticky).
    quarantined: HashMap<String, String>,
}

impl FoldState {
    fn apply(&mut self, record: &JournalRecord) {
        match record {
            JournalRecord::Submitted { key, .. } => {
                if !self.quarantined.contains_key(key) && !self.pending.contains_key(key) {
                    self.pending_order.push(key.clone());
                    self.pending.insert(key.clone(), record.clone());
                }
            }
            JournalRecord::Started { .. } => {}
            JournalRecord::Attempt { key, attempt, reason } => {
                if self.quarantined.contains_key(key) {
                    return;
                }
                let entry = self.attempts.entry(key.clone()).or_insert_with(|| {
                    self.attempt_order.push(key.clone());
                    (0, String::new())
                });
                entry.0 = entry.0.max(*attempt);
                entry.1 = reason.clone();
            }
            JournalRecord::Quarantined { key, error } => {
                if !self.quarantined.contains_key(key) {
                    self.quarantine_order.push(key.clone());
                    self.quarantined.insert(key.clone(), error.clone());
                }
                // A pinned key's open submission and attempt tally are
                // subsumed by the pin: nothing will ever replay it.
                self.pending.remove(key);
                self.attempts.remove(key);
            }
            JournalRecord::Done { key, state } => {
                self.pending.remove(key);
                // A successful completion proves the key is not poison;
                // any other terminal state leaves the tally standing.
                if state == "done" {
                    self.attempts.remove(key);
                }
            }
        }
    }

    /// The compacted journal image: one line per still-meaningful record.
    fn rewrite_lines(&self) -> String {
        let mut out = String::new();
        let mut seen = HashSet::new();
        for key in &self.pending_order {
            if let Some(record) = self.pending.get(key) {
                if seen.insert(key.clone()) {
                    out.push_str(&record.encode_line());
                    out.push('\n');
                }
            }
        }
        seen.clear();
        for key in &self.attempt_order {
            if let Some((attempt, reason)) = self.attempts.get(key) {
                if seen.insert(key.clone()) {
                    let record = JournalRecord::Attempt {
                        key: key.clone(),
                        attempt: *attempt,
                        reason: reason.clone(),
                    };
                    out.push_str(&record.encode_line());
                    out.push('\n');
                }
            }
        }
        seen.clear();
        for key in &self.quarantine_order {
            if let Some(error) = self.quarantined.get(key) {
                if seen.insert(key.clone()) {
                    let record =
                        JournalRecord::Quarantined { key: key.clone(), error: error.clone() };
                    out.push_str(&record.encode_line());
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// The append handle's file-side state, guarded by one mutex so the
/// fold can never drift from the bytes on disk.
struct JournalFile {
    file: std::fs::File,
    /// Bytes appended since the file was last rewritten.
    bytes_since_compact: u64,
    fold: FoldState,
}

/// Append handle over the journal file. All appends flush before
/// returning — a record the scheduler believes is durable, is.
pub struct Journal {
    path: PathBuf,
    inner: Mutex<JournalFile>,
    /// Live-compaction threshold in appended bytes; 0 = startup-only.
    compact_bytes: u64,
    /// Bumped once per live rewrite, when attached.
    compactions: Option<nemfpga_obs::Counter>,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`: scans existing
    /// records, compacts the file down to the still-meaningful set
    /// (pending `submitted` records, attempt tallies, quarantine pins),
    /// and returns the append handle plus what was recovered.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating, rewriting, or opening the file.
    pub fn open(path: &Path) -> std::io::Result<(Self, RecoveryReport)> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let (report, fold) = scan(path, now_unix_ms());

        // Compact atomically. Finished and expired keys disappear; a
        // replayed pending job is already journaled, so the scheduler
        // must not re-append it.
        let tmp = path.with_extension("rewrite");
        std::fs::write(&tmp, fold.rewrite_lines())?;
        std::fs::rename(&tmp, path)?;

        let file = OpenOptions::new().append(true).open(path)?;
        let inner = Mutex::new(JournalFile { file, bytes_since_compact: 0, fold });
        Ok((Self { path: path.to_owned(), inner, compact_bytes: 0, compactions: None }, report))
    }

    /// Arms live compaction: once more than `bytes` have been appended
    /// since the last rewrite, the next append rewrites the file down
    /// to the still-meaningful record set. `0` (the default) keeps the
    /// startup-only behavior.
    #[must_use]
    pub fn with_compact_bytes(mut self, bytes: u64) -> Self {
        self.compact_bytes = bytes;
        self
    }

    /// Attaches the counter bumped once per live rewrite
    /// (`journal_compactions`).
    #[must_use]
    pub fn with_compaction_counter(mut self, counter: nemfpga_obs::Counter) -> Self {
        self.compactions = Some(counter);
        self
    }

    /// The journal file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS. May trigger a live
    /// compaction (see [`Journal::with_compact_bytes`]).
    ///
    /// # Errors
    ///
    /// A human-readable message on I/O failure (or an injected
    /// `journal.append` fault). The caller logs and counts these; the
    /// serving path never blocks on a broken journal disk.
    pub fn append(&self, record: &JournalRecord) -> Result<(), String> {
        let mut line = record.encode_line();
        match FAULT_APPEND.fire().apply_basic() {
            FaultAction::Err(msg) => return Err(msg),
            FaultAction::Corrupt => line = damage(line, false),
            FaultAction::ShortRead => line = damage(line, true),
            _ => {}
        }
        line.push('\n');
        let mut inner = self.inner.lock().expect("journal file poisoned");
        inner.file.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        inner.file.flush().map_err(|e| e.to_string())?;
        inner.bytes_since_compact += line.len() as u64;
        // The fold tracks intent even when an injected fault damaged the
        // physical line — a later compaction then rewrites it clean,
        // which is strictly better evidence than the damaged bytes.
        inner.fold.apply(record);
        if self.compact_bytes > 0 && inner.bytes_since_compact >= self.compact_bytes {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Rewrites the file down to the fold's still-meaningful records.
    /// Caller holds the inner lock; appends observe either the old file
    /// or the fully-swapped new one.
    fn compact_locked(&self, inner: &mut JournalFile) -> Result<(), String> {
        let tmp = self.path.with_extension("rewrite");
        std::fs::write(&tmp, inner.fold.rewrite_lines()).map_err(|e| e.to_string())?;
        std::fs::rename(&tmp, &self.path).map_err(|e| e.to_string())?;
        inner.file = OpenOptions::new().append(true).open(&self.path).map_err(|e| e.to_string())?;
        inner.bytes_since_compact = 0;
        if let Some(counter) = &self.compactions {
            counter.inc();
        }
        Ok(())
    }
}

/// Reads every verifiable record from `path` and folds it into the
/// recovery report plus the compaction fold. Missing file = empty
/// journal. Stops at the first line that fails to decode (torn tail);
/// everything before it counts.
fn scan(path: &Path, now_ms: u64) -> (RecoveryReport, FoldState) {
    let mut report = RecoveryReport::default();
    let mut fold = FoldState::default();
    let Ok(text) = std::fs::read_to_string(path) else { return (report, fold) };

    let mut started: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let Some(record) = JournalRecord::decode_line(line) else {
            report.torn_tail = true;
            break;
        };
        report.records_scanned += 1;
        if let JournalRecord::Started { key } = &record {
            started.insert(key.clone());
        }
        fold.apply(&record);
    }

    // Decode the fold's open submissions into replayable jobs. Keys
    // that fail to decode (unknown experiment from a future version)
    // are dropped from the fold so compaction retires them.
    let mut emitted = HashSet::new();
    let mut dropped: Vec<String> = Vec::new();
    for key in &fold.pending_order {
        let Some(JournalRecord::Submitted {
            experiment,
            scale_bits,
            benchmarks,
            seed,
            deadline_unix_ms,
            tenant,
            lane,
            ..
        }) = fold.pending.get(key)
        else {
            continue;
        };
        if !emitted.insert(key.clone()) {
            continue;
        }
        let Some(kind) = ExperimentKind::from_name(experiment) else {
            dropped.push(key.clone());
            continue;
        };
        let mut request = ExperimentRequest::new(kind);
        request.scale = f64::from_bits(*scale_bits);
        request.benchmarks = *benchmarks as usize;
        request.seed = *seed;
        let job = PendingJob {
            request,
            deadline_unix_ms: *deadline_unix_ms,
            started: started.contains(key),
            tenant: tenant.clone(),
            lane: lane.as_deref().and_then(Lane::from_name).unwrap_or_default(),
        };
        if job.deadline_unix_ms.is_some_and(|deadline| deadline <= now_ms) {
            // Expired while down: the service closes these out with a
            // `done` record; drop them from the rewrite image now.
            dropped.push(key.clone());
            report.expired.push(job);
        } else {
            report.pending.push(job);
        }
    }
    for key in dropped {
        fold.pending.remove(&key);
    }

    let mut seen = HashSet::new();
    for key in &fold.attempt_order {
        if let Some((attempt, reason)) = fold.attempts.get(key) {
            if seen.insert(key.clone()) {
                report.attempts.push((key.clone(), *attempt, reason.clone()));
            }
        }
    }
    seen.clear();
    for key in &fold.quarantine_order {
        if let Some(error) = fold.quarantined.get(key) {
            if seen.insert(key.clone()) {
                report.quarantined.push((key.clone(), error.clone()));
            }
        }
    }
    (report, fold)
}

/// Deterministic damage mirroring the cache's: truncate at the midpoint
/// or perturb the midpoint byte.
fn damage(text: String, truncate: bool) -> String {
    let mut bytes = text.into_bytes();
    let mid = bytes.len() / 2;
    if truncate {
        bytes.truncate(mid);
    } else if let Some(b) = bytes.get_mut(mid) {
        *b = b.wrapping_add(1);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(seed: u64) -> ExperimentRequest {
        ExperimentRequest { seed, ..ExperimentRequest::new(ExperimentKind::Fig4) }
    }

    fn key_of(req: &ExperimentRequest) -> String {
        crate::key::job_key(req).expect("valid request").as_hex().to_owned()
    }

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nemfpga-journal-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.log"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn record_lines_round_trip_and_reject_tampering() {
        let req = request(7);
        let rec = JournalRecord::submitted(&key_of(&req), &req, Some(123_456));
        let line = rec.encode_line();
        assert_eq!(JournalRecord::decode_line(&line), Some(rec));
        let tampered = line.replace("123456", "123457");
        assert_ne!(line, tampered);
        assert_eq!(JournalRecord::decode_line(&tampered), None, "checksum must catch tampering");
        assert_eq!(JournalRecord::decode_line("{ not json"), None);
    }

    #[test]
    fn attempt_and_quarantine_records_round_trip() {
        let attempt = JournalRecord::Attempt {
            key: "ab".repeat(32),
            attempt: 2,
            reason: "executor panicked: boom".to_owned(),
        };
        assert_eq!(JournalRecord::decode_line(&attempt.encode_line()), Some(attempt));
        let pin = JournalRecord::Quarantined {
            key: "cd".repeat(32),
            error: "quarantined after 3 failed attempts".to_owned(),
        };
        assert_eq!(JournalRecord::decode_line(&pin.encode_line()), Some(pin));
    }

    #[test]
    fn open_scan_replays_only_unfinished_jobs() {
        let path = temp_journal("replay");
        let (done_req, pending_req) = (request(1), request(2));
        {
            let (journal, report) = Journal::open(&path).expect("open fresh");
            assert!(report.pending.is_empty() && !report.torn_tail);
            let k1 = key_of(&done_req);
            let k2 = key_of(&pending_req);
            journal.append(&JournalRecord::submitted(&k1, &done_req, None)).unwrap();
            journal.append(&JournalRecord::Started { key: k1.clone() }).unwrap();
            journal.append(&JournalRecord::submitted(&k2, &pending_req, None)).unwrap();
            journal.append(&JournalRecord::Done { key: k1, state: "done".to_owned() }).unwrap();
        }
        let (_journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.records_scanned, 4);
        assert_eq!(report.pending.len(), 1);
        assert_eq!(report.pending[0].request, pending_req);
        assert!(!report.pending[0].started);
        assert!(report.expired.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored_and_compacted_away() {
        let path = temp_journal("torn");
        let req = request(3);
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal.append(&JournalRecord::submitted(&key_of(&req), &req, None)).unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let torn = JournalRecord::Started { key: key_of(&req) }.encode_line();
        text.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, text).unwrap();

        let (_journal, report) = Journal::open(&path).expect("reopen tolerates torn tail");
        assert!(report.torn_tail);
        assert_eq!(report.records_scanned, 1);
        assert_eq!(report.pending.len(), 1, "the intact submitted record survives");
        // Compaction rewrote the file: clean to scan, no torn bytes left.
        let (_j, second) = Journal::open(&path).expect("third open");
        assert!(!second.torn_tail);
        assert_eq!(second.pending.len(), 1);
    }

    #[test]
    fn pending_jobs_past_their_wall_deadline_recover_as_expired() {
        let path = temp_journal("expired");
        let (stale, fresh) = (request(4), request(5));
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal.append(&JournalRecord::submitted(&key_of(&stale), &stale, Some(1))).unwrap();
            journal
                .append(&JournalRecord::submitted(
                    &key_of(&fresh),
                    &fresh,
                    Some(now_unix_ms() + 60_000),
                ))
                .unwrap();
        }
        let (_journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.expired.len(), 1);
        assert_eq!(report.expired[0].request, stale);
        assert_eq!(report.pending.len(), 1);
        assert_eq!(report.pending[0].request, fresh);
    }

    #[test]
    fn tenant_and_lane_survive_recovery_and_compaction() {
        let path = temp_journal("tenant-lane");
        let req = request(9);
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal
                .append(
                    &JournalRecord::submitted(&key_of(&req), &req, None)
                        .with_class("acme", Lane::Batch),
                )
                .unwrap();
        }
        let (_journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.pending[0].tenant.as_deref(), Some("acme"));
        assert_eq!(report.pending[0].lane, Lane::Batch);
        // Compaction rewrote the file; the class tags must survive it.
        let (_j, second) = Journal::open(&path).expect("third open");
        assert_eq!(second.pending[0].tenant.as_deref(), Some("acme"));
        assert_eq!(second.pending[0].lane, Lane::Batch);
        // Default-classed records elide the optional fields entirely, so
        // single-tenant journals are byte-compatible with pre-QoS ones.
        let line = JournalRecord::submitted(&key_of(&req), &req, None)
            .with_class(DEFAULT_TENANT, Lane::Interactive)
            .encode_line();
        assert!(!line.contains("tenant") && !line.contains("lane"), "{line}");
    }

    #[test]
    fn scale_survives_the_round_trip_bit_exactly() {
        let path = temp_journal("scale-bits");
        let mut req = request(6);
        req.scale = 0.1 + 0.2; // not representable as a short decimal
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal.append(&JournalRecord::submitted(&key_of(&req), &req, None)).unwrap();
        }
        let (_journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.pending[0].request.scale.to_bits(), req.scale.to_bits());
        assert_eq!(key_of(&report.pending[0].request), key_of(&req), "same content address");
    }

    #[test]
    fn attempts_and_quarantine_survive_restart_and_compaction() {
        let path = temp_journal("quarantine");
        let (poison, healthy) = (request(11), request(12));
        let (pk, hk) = (key_of(&poison), key_of(&healthy));
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal.append(&JournalRecord::submitted(&pk, &poison, None)).unwrap();
            journal
                .append(&JournalRecord::Attempt {
                    key: pk.clone(),
                    attempt: 1,
                    reason: "executor panicked: boom".to_owned(),
                })
                .unwrap();
            journal
                .append(&JournalRecord::Done { key: pk.clone(), state: "failed".to_owned() })
                .unwrap();
            // A healthy key's attempt is cleared by its successful done.
            journal.append(&JournalRecord::submitted(&hk, &healthy, None)).unwrap();
            journal
                .append(&JournalRecord::Attempt {
                    key: hk.clone(),
                    attempt: 1,
                    reason: "transient".to_owned(),
                })
                .unwrap();
            journal
                .append(&JournalRecord::Done { key: hk.clone(), state: "done".to_owned() })
                .unwrap();
        }
        let (journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.attempts, vec![(pk.clone(), 1, "executor panicked: boom".to_owned())]);
        assert!(report.quarantined.is_empty());
        assert!(report.pending.is_empty());
        // Second failed attempt, then the pin.
        journal.append(&JournalRecord::submitted(&pk, &poison, None)).unwrap();
        journal
            .append(&JournalRecord::Attempt {
                key: pk.clone(),
                attempt: 2,
                reason: "executor panicked: boom".to_owned(),
            })
            .unwrap();
        journal
            .append(&JournalRecord::Quarantined {
                key: pk.clone(),
                error: "quarantined after 2 failed attempts".to_owned(),
            })
            .unwrap();
        journal
            .append(&JournalRecord::Done { key: pk.clone(), state: "quarantined".to_owned() })
            .unwrap();
        drop(journal);
        let (_j, report) = Journal::open(&path).expect("third open");
        assert!(report.attempts.is_empty(), "the pin subsumes the tally");
        assert_eq!(
            report.quarantined,
            vec![(pk.clone(), "quarantined after 2 failed attempts".to_owned())]
        );
        assert!(report.pending.is_empty(), "a pinned key must never replay");
        // And the pin survives yet another compaction cycle.
        let (_j, again) = Journal::open(&path).expect("fourth open");
        assert_eq!(again.quarantined.len(), 1);
    }

    #[test]
    fn live_compaction_bounds_the_file_and_counts() {
        let path = temp_journal("live-compact");
        let counter = nemfpga_obs::Registry::new().counter("journal_compactions");
        let (journal, _) = Journal::open(&path).expect("open");
        let journal = journal.with_compact_bytes(2048).with_compaction_counter(counter.clone());
        // Many settled jobs: the fold retires each, so rewrites shrink
        // the file back to (near) empty every time the threshold trips.
        for seed in 0..64 {
            let req = request(1000 + seed);
            let key = key_of(&req);
            journal.append(&JournalRecord::submitted(&key, &req, None)).unwrap();
            journal.append(&JournalRecord::Started { key: key.clone() }).unwrap();
            journal.append(&JournalRecord::Done { key, state: "done".to_owned() }).unwrap();
        }
        assert!(counter.get() >= 1, "threshold must have tripped at least once");
        let bytes = std::fs::metadata(&path).unwrap().len();
        assert!(bytes < 8192, "journal stayed bounded, got {bytes} bytes");
        // The compacted file is still a valid journal.
        drop(journal);
        let (_j, report) = Journal::open(&path).expect("reopen after live compaction");
        assert!(!report.torn_tail);
        assert!(report.pending.is_empty());
    }
}
