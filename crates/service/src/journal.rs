//! Crash-safe write-ahead job journal.
//!
//! The scheduler appends one checksummed JSON line per job transition —
//! `submitted` (the full request, write-ahead of the client's ack),
//! `started`, and `done` (any terminal state) — so a `kill -9` loses at
//! most work the client was never told was accepted. On startup,
//! [`Journal::open`] scans the log, tolerating a torn final record
//! (interrupted append), folds it into a per-key state machine, and
//! returns every job that was durably accepted but never finished; the
//! service replays those into the scheduler and the journal is compacted
//! down to just the still-pending records via the same tempfile+rename
//! idiom the cache uses.
//!
//! Records are keyed by the request's content address ([`JobKey`] hex),
//! not by scheduler job ids — ids restart from 1 after a crash, content
//! addresses don't. `scale` travels as its exact `f64` bit pattern
//! (`scale_bits`), so a recovered request hashes to the same key it was
//! journaled under.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use nemfpga::request::{ExperimentKind, ExperimentRequest};
use nemfpga_runtime::faults::{FaultAction, FaultPoint};

use crate::json::{self, Value};
use crate::qos::{Lane, DEFAULT_TENANT};
use crate::sha::sha256_hex;

/// Fires once per appended record. `Err` fails the append (frozen
/// disk), `Corrupt`/`ShortRead` damage the line on its way out — the
/// recovery scan must shrug both off as a torn tail.
static FAULT_APPEND: FaultPoint = FaultPoint::new("journal.append");

/// Milliseconds since the Unix epoch. Deadlines are journaled as wall
/// time because monotonic instants do not survive a restart.
pub fn now_unix_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or(Duration::ZERO).as_millis() as u64
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job was accepted (written before the client hears "accepted").
    Submitted {
        /// Content address (64-hex) of the request.
        key: String,
        /// Experiment wire name.
        experiment: String,
        /// Exact bit pattern of the request's `scale`.
        scale_bits: u64,
        /// Benchmark count.
        benchmarks: u64,
        /// Request seed.
        seed: u64,
        /// Client deadline as wall time, when one was given.
        deadline_unix_ms: Option<u64>,
        /// Submitting tenant, when not the default (optional for
        /// backward compatibility with pre-QoS journals).
        tenant: Option<String>,
        /// Priority lane, when not interactive.
        lane: Option<String>,
    },
    /// A worker picked the job up.
    Started {
        /// Content address of the request.
        key: String,
    },
    /// The job reached a terminal state.
    Done {
        /// Content address of the request.
        key: String,
        /// Terminal state wire name (`done`, `failed`, `timed_out`,
        /// `expired`, `cancelled`).
        state: String,
    },
}

impl JournalRecord {
    /// Builds the `submitted` record for `request` (default tenant,
    /// interactive lane; see [`JournalRecord::with_class`]).
    pub fn submitted(
        key: &str,
        request: &ExperimentRequest,
        deadline_unix_ms: Option<u64>,
    ) -> Self {
        Self::Submitted {
            key: key.to_owned(),
            experiment: request.experiment.name().to_owned(),
            scale_bits: request.scale.to_bits(),
            benchmarks: request.benchmarks as u64,
            seed: request.seed,
            deadline_unix_ms,
            tenant: None,
            lane: None,
        }
    }

    /// Tags a `submitted` record with its scheduling class. Default
    /// tenant and interactive lane are elided from the encoding, so
    /// single-tenant journals look exactly like pre-QoS ones.
    #[must_use]
    pub fn with_class(mut self, job_tenant: &str, job_lane: Lane) -> Self {
        if let Self::Submitted { tenant, lane, .. } = &mut self {
            *tenant = (job_tenant != DEFAULT_TENANT).then(|| job_tenant.to_owned());
            *lane = (job_lane != Lane::Interactive).then(|| job_lane.name().to_owned());
        }
        self
    }

    /// The content address this record is about.
    pub fn key(&self) -> &str {
        match self {
            Self::Submitted { key, .. } | Self::Started { key } | Self::Done { key, .. } => key,
        }
    }

    fn to_value(&self) -> Value {
        match self {
            Self::Submitted {
                key,
                experiment,
                scale_bits,
                benchmarks,
                seed,
                deadline_unix_ms,
                tenant,
                lane,
            } => {
                let mut fields = vec![
                    ("kind", Value::Str("submitted".to_owned())),
                    ("key", Value::Str(key.clone())),
                    ("experiment", Value::Str(experiment.clone())),
                    ("scale_bits", Value::U64(*scale_bits)),
                    ("benchmarks", Value::U64(*benchmarks)),
                    ("seed", Value::U64(*seed)),
                ];
                if let Some(ms) = deadline_unix_ms {
                    fields.push(("deadline_unix_ms", Value::U64(*ms)));
                }
                if let Some(name) = tenant {
                    fields.push(("tenant", Value::Str(name.clone())));
                }
                if let Some(name) = lane {
                    fields.push(("lane", Value::Str(name.clone())));
                }
                Value::obj(fields)
            }
            Self::Started { key } => Value::obj(vec![
                ("kind", Value::Str("started".to_owned())),
                ("key", Value::Str(key.clone())),
            ]),
            Self::Done { key, state } => Value::obj(vec![
                ("kind", Value::Str("done".to_owned())),
                ("key", Value::Str(key.clone())),
                ("state", Value::Str(state.clone())),
            ]),
        }
    }

    fn from_value(doc: &Value) -> Option<Self> {
        let key = doc.get("key")?.as_str()?.to_owned();
        match doc.get("kind")?.as_str()? {
            "submitted" => Some(Self::Submitted {
                key,
                experiment: doc.get("experiment")?.as_str()?.to_owned(),
                scale_bits: doc.get("scale_bits")?.as_u64()?,
                benchmarks: doc.get("benchmarks")?.as_u64()?,
                seed: doc.get("seed")?.as_u64()?,
                deadline_unix_ms: match doc.get("deadline_unix_ms") {
                    None => None,
                    Some(v) => Some(v.as_u64()?),
                },
                tenant: match doc.get("tenant") {
                    None => None,
                    Some(v) => Some(v.as_str()?.to_owned()),
                },
                lane: match doc.get("lane") {
                    None => None,
                    Some(v) => Some(v.as_str()?.to_owned()),
                },
            }),
            "started" => Some(Self::Started { key }),
            "done" => Some(Self::Done { key, state: doc.get("state")?.as_str()?.to_owned() }),
            _ => None,
        }
    }

    /// Encodes the record as one journal line (no trailing newline):
    /// `{"checksum": sha256(record-json), "record": {...}}`.
    pub fn encode_line(&self) -> String {
        let record = self.to_value().to_json();
        Value::obj(vec![
            ("checksum", Value::Str(sha256_hex(record.as_bytes()))),
            ("record", self.to_value()),
        ])
        .to_json()
    }

    /// Decodes and verifies one journal line. `None` for anything that
    /// does not parse, fails its checksum, or names an unknown kind — a
    /// torn or tampered line is skipped evidence, never a panic.
    pub fn decode_line(line: &str) -> Option<Self> {
        let doc = json::parse(line).ok()?;
        let checksum = doc.get("checksum")?.as_str()?;
        let record = doc.get("record")?;
        // The record sub-document contains only strings and integers, so
        // re-encoding the parsed value reproduces the appended bytes.
        if checksum != sha256_hex(record.to_json().as_bytes()) {
            return None;
        }
        Self::from_value(record)
    }
}

/// A job the journal shows as accepted but not finished.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The reconstructed request.
    pub request: ExperimentRequest,
    /// Client deadline as wall time, when one was journaled.
    pub deadline_unix_ms: Option<u64>,
    /// Whether a worker had picked it up before the crash.
    pub started: bool,
    /// Submitting tenant; `None` = the default tenant.
    pub tenant: Option<String>,
    /// Priority lane it was submitted in.
    pub lane: Lane,
}

/// What a startup recovery scan found.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Accepted, unfinished, unexpired jobs to replay into the scheduler.
    pub pending: Vec<PendingJob>,
    /// Accepted, unfinished jobs whose client deadline passed while the
    /// server was down; closed out as `expired` without replaying.
    pub expired: Vec<PendingJob>,
    /// Records that decoded and verified.
    pub records_scanned: usize,
    /// True when the scan stopped at a torn or corrupt line.
    pub torn_tail: bool,
}

/// Append handle over the journal file. All appends flush before
/// returning — a record the scheduler believes is durable, is.
pub struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`: scans existing
    /// records, compacts the file down to still-pending `submitted`
    /// records, and returns the append handle plus what was recovered.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating, rewriting, or opening the file.
    pub fn open(path: &Path) -> std::io::Result<(Self, RecoveryReport)> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let report = scan(path, now_unix_ms());

        // Compact: rewrite only the pending submissions, atomically.
        // Finished and expired keys disappear; a replayed pending job is
        // already journaled, so the scheduler must not re-append it.
        let tmp = path.with_extension("rewrite");
        {
            let mut out = std::fs::File::create(&tmp)?;
            for job in &report.pending {
                let key = crate::key::job_key(&job.request)
                    .map(|k| k.as_hex().to_owned())
                    .unwrap_or_default();
                let record = JournalRecord::submitted(&key, &job.request, job.deadline_unix_ms)
                    .with_class(job.tenant.as_deref().unwrap_or(DEFAULT_TENANT), job.lane);
                out.write_all(record.encode_line().as_bytes())?;
                out.write_all(b"\n")?;
            }
            out.flush()?;
        }
        std::fs::rename(&tmp, path)?;

        let file = OpenOptions::new().append(true).open(path)?;
        Ok((Self { path: path.to_owned(), file: Mutex::new(file) }, report))
    }

    /// The journal file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// A human-readable message on I/O failure (or an injected
    /// `journal.append` fault). The caller logs and counts these; the
    /// serving path never blocks on a broken journal disk.
    pub fn append(&self, record: &JournalRecord) -> Result<(), String> {
        let mut line = record.encode_line();
        match FAULT_APPEND.fire().apply_basic() {
            FaultAction::Err(msg) => return Err(msg),
            FaultAction::Corrupt => line = damage(line, false),
            FaultAction::ShortRead => line = damage(line, true),
            _ => {}
        }
        line.push('\n');
        let mut file = self.file.lock().expect("journal file poisoned");
        file.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        file.flush().map_err(|e| e.to_string())
    }
}

/// Reads every verifiable record from `path` and folds it into pending /
/// expired sets. Missing file = empty journal. Stops at the first line
/// that fails to decode (torn tail); everything before it counts.
fn scan(path: &Path, now_ms: u64) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let Ok(text) = std::fs::read_to_string(path) else { return report };

    // Insertion-ordered fold: key → (submitted info, started, done).
    let mut order: Vec<String> = Vec::new();
    let mut by_key: std::collections::HashMap<String, (Option<PendingJob>, bool)> =
        std::collections::HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let Some(record) = JournalRecord::decode_line(line) else {
            report.torn_tail = true;
            break;
        };
        report.records_scanned += 1;
        let key = record.key().to_owned();
        if !by_key.contains_key(&key) {
            order.push(key.clone());
        }
        let entry = by_key.entry(key).or_insert((None, false));
        match record {
            JournalRecord::Submitted {
                experiment,
                scale_bits,
                benchmarks,
                seed,
                deadline_unix_ms,
                tenant,
                lane,
                ..
            } => {
                let Some(kind) = ExperimentKind::from_name(&experiment) else { continue };
                let mut request = ExperimentRequest::new(kind);
                request.scale = f64::from_bits(scale_bits);
                request.benchmarks = benchmarks as usize;
                request.seed = seed;
                entry.0 = Some(PendingJob {
                    request,
                    deadline_unix_ms,
                    started: false,
                    tenant,
                    lane: lane.as_deref().and_then(Lane::from_name).unwrap_or_default(),
                });
            }
            JournalRecord::Started { .. } => {
                if let Some(job) = &mut entry.0 {
                    job.started = true;
                }
            }
            JournalRecord::Done { .. } => entry.1 = true,
        }
    }

    for key in order {
        let Some((Some(job), done)) = by_key.remove(&key) else { continue };
        if done {
            continue;
        }
        if job.deadline_unix_ms.is_some_and(|deadline| deadline <= now_ms) {
            report.expired.push(job);
        } else {
            report.pending.push(job);
        }
    }
    report
}

/// Deterministic damage mirroring the cache's: truncate at the midpoint
/// or perturb the midpoint byte.
fn damage(text: String, truncate: bool) -> String {
    let mut bytes = text.into_bytes();
    let mid = bytes.len() / 2;
    if truncate {
        bytes.truncate(mid);
    } else if let Some(b) = bytes.get_mut(mid) {
        *b = b.wrapping_add(1);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(seed: u64) -> ExperimentRequest {
        ExperimentRequest { seed, ..ExperimentRequest::new(ExperimentKind::Fig4) }
    }

    fn key_of(req: &ExperimentRequest) -> String {
        crate::key::job_key(req).expect("valid request").as_hex().to_owned()
    }

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nemfpga-journal-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.log"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn record_lines_round_trip_and_reject_tampering() {
        let req = request(7);
        let rec = JournalRecord::submitted(&key_of(&req), &req, Some(123_456));
        let line = rec.encode_line();
        assert_eq!(JournalRecord::decode_line(&line), Some(rec));
        let tampered = line.replace("123456", "123457");
        assert_ne!(line, tampered);
        assert_eq!(JournalRecord::decode_line(&tampered), None, "checksum must catch tampering");
        assert_eq!(JournalRecord::decode_line("{ not json"), None);
    }

    #[test]
    fn open_scan_replays_only_unfinished_jobs() {
        let path = temp_journal("replay");
        let (done_req, pending_req) = (request(1), request(2));
        {
            let (journal, report) = Journal::open(&path).expect("open fresh");
            assert!(report.pending.is_empty() && !report.torn_tail);
            let k1 = key_of(&done_req);
            let k2 = key_of(&pending_req);
            journal.append(&JournalRecord::submitted(&k1, &done_req, None)).unwrap();
            journal.append(&JournalRecord::Started { key: k1.clone() }).unwrap();
            journal.append(&JournalRecord::submitted(&k2, &pending_req, None)).unwrap();
            journal.append(&JournalRecord::Done { key: k1, state: "done".to_owned() }).unwrap();
        }
        let (_journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.records_scanned, 4);
        assert_eq!(report.pending.len(), 1);
        assert_eq!(report.pending[0].request, pending_req);
        assert!(!report.pending[0].started);
        assert!(report.expired.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored_and_compacted_away() {
        let path = temp_journal("torn");
        let req = request(3);
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal.append(&JournalRecord::submitted(&key_of(&req), &req, None)).unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let torn = JournalRecord::Started { key: key_of(&req) }.encode_line();
        text.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, text).unwrap();

        let (_journal, report) = Journal::open(&path).expect("reopen tolerates torn tail");
        assert!(report.torn_tail);
        assert_eq!(report.records_scanned, 1);
        assert_eq!(report.pending.len(), 1, "the intact submitted record survives");
        // Compaction rewrote the file: clean to scan, no torn bytes left.
        let (_j, second) = Journal::open(&path).expect("third open");
        assert!(!second.torn_tail);
        assert_eq!(second.pending.len(), 1);
    }

    #[test]
    fn pending_jobs_past_their_wall_deadline_recover_as_expired() {
        let path = temp_journal("expired");
        let (stale, fresh) = (request(4), request(5));
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal.append(&JournalRecord::submitted(&key_of(&stale), &stale, Some(1))).unwrap();
            journal
                .append(&JournalRecord::submitted(
                    &key_of(&fresh),
                    &fresh,
                    Some(now_unix_ms() + 60_000),
                ))
                .unwrap();
        }
        let (_journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.expired.len(), 1);
        assert_eq!(report.expired[0].request, stale);
        assert_eq!(report.pending.len(), 1);
        assert_eq!(report.pending[0].request, fresh);
    }

    #[test]
    fn tenant_and_lane_survive_recovery_and_compaction() {
        let path = temp_journal("tenant-lane");
        let req = request(9);
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal
                .append(
                    &JournalRecord::submitted(&key_of(&req), &req, None)
                        .with_class("acme", Lane::Batch),
                )
                .unwrap();
        }
        let (_journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.pending[0].tenant.as_deref(), Some("acme"));
        assert_eq!(report.pending[0].lane, Lane::Batch);
        // Compaction rewrote the file; the class tags must survive it.
        let (_j, second) = Journal::open(&path).expect("third open");
        assert_eq!(second.pending[0].tenant.as_deref(), Some("acme"));
        assert_eq!(second.pending[0].lane, Lane::Batch);
        // Default-classed records elide the optional fields entirely, so
        // single-tenant journals are byte-compatible with pre-QoS ones.
        let line = JournalRecord::submitted(&key_of(&req), &req, None)
            .with_class(DEFAULT_TENANT, Lane::Interactive)
            .encode_line();
        assert!(!line.contains("tenant") && !line.contains("lane"), "{line}");
    }

    #[test]
    fn scale_survives_the_round_trip_bit_exactly() {
        let path = temp_journal("scale-bits");
        let mut req = request(6);
        req.scale = 0.1 + 0.2; // not representable as a short decimal
        {
            let (journal, _) = Journal::open(&path).expect("open");
            journal.append(&JournalRecord::submitted(&key_of(&req), &req, None)).unwrap();
        }
        let (_journal, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.pending[0].request.scale.to_bits(), req.scale.to_bits());
        assert_eq!(key_of(&report.pending[0].request), key_of(&req), "same content address");
    }
}
