//! Two-tier, content-addressed result cache.
//!
//! Tier 1 is an in-memory LRU bounded by entry count; tier 2 is an
//! on-disk store of compact binary frames ([`crate::codec`], one
//! `{key}.bin` file per entry, atomically written via a tempfile +
//! rename) that survives server restarts. A disk hit is promoted into
//! memory. Both tiers are keyed by the canonical
//! [`JobKey`](crate::key::JobKey), so a cached entry is valid for *any*
//! request that hashes to it — the cache never needs invalidation, only
//! eviction.
//!
//! The disk tier trusts nothing it reads back: every frame ends in a
//! SHA-256 trailer over its own bytes, and a frame whose trailer, magic,
//! version, or embedded key does not verify — bit rot, torn writes, a
//! hostile editor — is a **miss**, never a wrong answer. The chaos
//! testkit drives this path through the `cache.read_disk` /
//! `cache.write_disk` fault points.
//!
//! For the cluster's anti-entropy protocol the cache also exports a
//! [`ResultCache::digest`]: the set of keys it can serve, each with its
//! output checksum as the per-key version. Results are deterministic
//! functions of their key, so two entries with the same key can only
//! disagree if one is wrong — merge is plain set union.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use nemfpga_obs::Counter;
use nemfpga_runtime::faults::{FaultAction, FaultPoint};

use crate::codec;
use crate::key::JobKey;
use crate::sha::sha256_hex;

/// Fires per disk read. `Err` fails the read, `Corrupt` flips a byte in
/// the loaded frame, `ShortRead` truncates it; all must degrade to a
/// cache miss.
static FAULT_READ_DISK: FaultPoint = FaultPoint::new("cache.read_disk");

/// Fires per disk write. `Err` drops the write (the disk tier silently
/// degrades), `Corrupt`/`ShortRead` persist a damaged frame that later
/// reads must reject.
static FAULT_WRITE_DISK: FaultPoint = FaultPoint::new("cache.write_disk");

/// A cached experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// Experiment name (for humans inspecting the store).
    pub experiment: String,
    /// The exact bytes a direct `repro` run prints to stdout.
    pub output: String,
}

/// Where a lookup was answered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// In-memory LRU.
    Memory,
    /// On-disk binary store.
    Disk,
}

/// The two-tier store. All methods take `&self`; an internal mutex
/// serializes access (entries are small relative to job compute times,
/// so a single lock is not a bottleneck).
pub struct ResultCache {
    inner: Mutex<Inner>,
    /// Keys this cache has seen with their output checksums — the
    /// anti-entropy advertisement. Lock order: `digest` before `inner`.
    digest: Mutex<DigestIndex>,
    disk_dir: Option<PathBuf>,
    /// Bumped on every failed disk-tier write (tempfile write or
    /// rename). Defaults to a detached counter; the service wires in its
    /// `disk_write_errors` metric.
    write_errors: Counter,
}

struct Inner {
    entries: HashMap<String, MemEntry>,
    capacity: usize,
    tick: u64,
}

struct MemEntry {
    value: CachedResult,
    last_used: u64,
}

#[derive(Default)]
struct DigestIndex {
    /// key hex → output checksum hex.
    versions: HashMap<String, String>,
    /// Whether the one-time cold scan of the disk tier has run.
    scanned_disk: bool,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries in memory, with
    /// an optional disk tier rooted at `disk_dir` (created on first
    /// write).
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                capacity: capacity.max(1),
                tick: 0,
            }),
            digest: Mutex::new(DigestIndex::default()),
            disk_dir,
            write_errors: Counter::default(),
        }
    }

    /// Routes failed disk writes into `counter` (shared with the metric
    /// registry) instead of the default detached counter.
    #[must_use]
    pub fn with_write_error_counter(mut self, counter: Counter) -> Self {
        self.write_errors = counter;
        self
    }

    /// Failed disk-tier writes so far (through whichever counter is
    /// wired in).
    pub fn write_error_count(&self) -> u64 {
        self.write_errors.get()
    }

    /// Looks `key` up in memory, then on disk (promoting a disk hit into
    /// memory). Returns the result and the tier that answered.
    pub fn get(&self, key: &JobKey) -> Option<(CachedResult, CacheTier)> {
        {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(key.as_hex()) {
                entry.last_used = tick;
                return Some((entry.value.clone(), CacheTier::Memory));
            }
        }
        let value = self.read_disk(key)?;
        self.record_version(key.as_hex(), &sha256_hex(value.output.as_bytes()));
        self.insert_memory(key, value.clone());
        Some((value, CacheTier::Disk))
    }

    /// Stores a result in both tiers and advertises it in the digest.
    pub fn put(&self, key: &JobKey, value: CachedResult) {
        self.record_version(key.as_hex(), &sha256_hex(value.output.as_bytes()));
        self.write_disk(key, &value);
        self.insert_memory(key, value);
    }

    /// Entries currently resident in memory.
    pub fn memory_len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").entries.len()
    }

    /// Every key this cache advertises, with the SHA-256 checksum of
    /// its output as the per-key version, sorted by key. Union of both
    /// tiers; the first call scans the disk directory so entries that
    /// predate this process (a rejoining node's store) are advertised
    /// too. An advertised key can still miss later (evicted from memory
    /// after a failed disk write) — peers treat that as "retry next
    /// round", never as an error.
    pub fn digest(&self) -> Vec<(String, String)> {
        let mut digest = self.digest.lock().expect("digest lock poisoned");
        if !digest.scanned_disk {
            digest.scanned_disk = true;
            if let Some(dir) = &self.disk_dir {
                for (key, version) in scan_disk_versions(dir) {
                    digest.versions.entry(key).or_insert(version);
                }
            }
        }
        {
            let inner = self.inner.lock().expect("cache lock poisoned");
            for (key, entry) in &inner.entries {
                digest
                    .versions
                    .entry(key.clone())
                    .or_insert_with(|| sha256_hex(entry.value.output.as_bytes()));
            }
        }
        let mut out: Vec<(String, String)> =
            digest.versions.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort();
        out
    }

    /// The entry for `key` as a self-verifying codec frame — the bytes
    /// peers transfer. `None` when the key cannot be served.
    pub fn entry_frame(&self, key: &JobKey) -> Option<Vec<u8>> {
        let (value, _) = self.get(key)?;
        Some(codec::encode_entry(key.as_hex(), &value.experiment, &value.output))
    }

    fn record_version(&self, key_hex: &str, checksum: &str) {
        let mut digest = self.digest.lock().expect("digest lock poisoned");
        digest.versions.insert(key_hex.to_owned(), checksum.to_owned());
    }

    fn insert_memory(&self, key: &JobKey, value: CachedResult) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(key.as_hex().to_owned(), MemEntry { value, last_used: tick });
        while inner.entries.len() > inner.capacity {
            // O(n) victim scan; capacities are small (hundreds).
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty above capacity");
            inner.entries.remove(&victim);
        }
    }

    fn entry_path(&self, key: &JobKey) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{}.bin", key.as_hex())))
    }

    fn read_disk(&self, key: &JobKey) -> Option<CachedResult> {
        let mut bytes = std::fs::read(self.entry_path(key)?).ok()?;
        match FAULT_READ_DISK.fire().apply_basic() {
            FaultAction::Err(_) => return None,
            FaultAction::Corrupt => bytes = damage(bytes, false),
            FaultAction::ShortRead => bytes = damage(bytes, true),
            _ => {}
        }
        // A corrupt or truncated frame is treated as a miss; the job
        // recomputes and overwrites it. The codec's SHA-256 trailer
        // covers every byte (including corruption that stays inside the
        // output field); the key check catches a valid frame renamed to
        // the wrong content address.
        let entry = codec::decode_entry(&bytes)?;
        if entry.key != key.as_hex() {
            return None;
        }
        Some(CachedResult { experiment: entry.experiment, output: entry.output })
    }

    fn write_disk(&self, key: &JobKey, value: &CachedResult) {
        let Some(path) = self.entry_path(key) else { return };
        let Some(dir) = path.parent() else { return };
        // Disk-tier failures degrade the cache, never the service.
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut encoded = codec::encode_entry(key.as_hex(), &value.experiment, &value.output);
        match FAULT_WRITE_DISK.fire().apply_basic() {
            FaultAction::Err(error) => {
                // An injected write failure is still a failed write:
                // count it so the metric tells the truth under chaos.
                self.write_errors.inc();
                eprintln!("nemfpga-service: cache write failed for {}: {error}", key.as_hex());
                return;
            }
            FaultAction::Corrupt => encoded = damage(encoded, false),
            FaultAction::ShortRead => encoded = damage(encoded, true),
            _ => {}
        }
        let tmp = dir.join(format!(".{}.tmp-{}", key.as_hex(), std::process::id()));
        if let Err(error) =
            std::fs::write(&tmp, encoded).and_then(|()| std::fs::rename(&tmp, &path))
        {
            // The entry stays compute-able and memory-cached; surface
            // the degraded disk tier instead of dropping it silently.
            self.write_errors.inc();
            eprintln!("nemfpga-service: cache write failed for {}: {error}", key.as_hex());
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Scans `dir` for verifiable `{key}.bin` frames and returns their
/// (key, output checksum) pairs. Frames that fail to decode or whose
/// embedded key disagrees with the filename are skipped — they will
/// read as misses anyway.
fn scan_disk_versions(dir: &Path) -> Vec<(String, String)> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_suffix(".bin") else { continue };
        if JobKey::from_hex(stem).is_none() {
            continue;
        }
        let Ok(bytes) = std::fs::read(entry.path()) else { continue };
        let Some(decoded) = codec::decode_entry(&bytes) else { continue };
        if decoded.key != stem {
            continue;
        }
        out.push((decoded.key, sha256_hex(decoded.output.as_bytes())));
    }
    out
}

/// Removes orphaned cache tempfiles (`.{key}.tmp-{pid}`) left behind by
/// a crash between the tempfile write and its rename. Returns how many
/// were removed. Safe to call with live writers only from startup, when
/// this process is the sole owner of `dir`.
pub fn gc_orphan_tmp(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with('.')
            && name.contains(".tmp-")
            && std::fs::remove_file(entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    removed
}

/// Deterministic damage for injected `Corrupt`/`ShortRead` faults:
/// truncates at the midpoint, or perturbs the midpoint byte.
fn damage(mut bytes: Vec<u8>, truncate: bool) -> Vec<u8> {
    let mid = bytes.len() / 2;
    if truncate {
        bytes.truncate(mid);
    } else if let Some(b) = bytes.get_mut(mid) {
        *b = b.wrapping_add(1);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga::request::{ExperimentKind, ExperimentRequest};

    fn key(seed: u64) -> JobKey {
        crate::key::job_key(&ExperimentRequest {
            seed,
            ..ExperimentRequest::new(ExperimentKind::Fig4)
        })
        .unwrap()
    }

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            experiment: "fig4".to_owned(),
            output: format!("line one {tag}\nline \"two\"\t{tag}\n"),
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nemfpga-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_hits_and_evicts_lru() {
        let cache = ResultCache::new(2, None);
        let (k1, k2, k3) = (key(1), key(2), key(3));
        cache.put(&k1, result("a"));
        cache.put(&k2, result("b"));
        // Touch k1 so k2 is the LRU victim.
        assert_eq!(cache.get(&k1).unwrap().1, CacheTier::Memory);
        cache.put(&k3, result("c"));
        assert_eq!(cache.memory_len(), 2);
        assert!(cache.get(&k2).is_none(), "LRU entry should be gone");
        assert_eq!(cache.get(&k1).unwrap().0, result("a"));
        assert_eq!(cache.get(&k3).unwrap().0, result("c"));
    }

    #[test]
    fn disk_tier_round_trips_bytes_and_survives_restart() {
        let dir = temp_dir("roundtrip");
        let k = key(7);
        let value = CachedResult {
            experiment: "fig4".to_owned(),
            output: "==== banner ====\n  nominal: 6.20 V\n\ttabbed \"quoted\" µ\n".to_owned(),
        };
        {
            let cache = ResultCache::new(4, Some(dir.clone()));
            cache.put(&k, value.clone());
        }
        // A fresh cache (fresh process in real life) hits the disk tier.
        let cache = ResultCache::new(4, Some(dir.clone()));
        let (got, tier) = cache.get(&k).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(got, value);
        // The promotion makes the second read a memory hit.
        assert_eq!(cache.get(&k).unwrap().1, CacheTier::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_read_as_misses() {
        let dir = temp_dir("corrupt");
        let k = key(9);
        {
            let cache = ResultCache::new(4, Some(dir.clone()));
            cache.put(&k, result("x"));
        }
        let path = dir.join(format!("{}.bin", k.as_hex()));
        std::fs::write(&path, b"NEMF garbage that is not a frame").unwrap();
        let cache = ResultCache::new(4, Some(dir.clone()));
        assert!(cache.get(&k).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_inside_the_output_string_is_a_miss() {
        // A well-formed frame whose output bytes were tampered with
        // after the trailer was computed: only the SHA-256 trailer can
        // catch this, and a wrong answer is never served.
        let dir = temp_dir("tampered");
        let k = key(10);
        {
            let cache = ResultCache::new(4, Some(dir.clone()));
            cache.put(&k, result("original"));
        }
        let path = dir.join(format!("{}.bin", k.as_hex()));
        let bytes = std::fs::read(&path).unwrap();
        let needle = b"original";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("output bytes are embedded verbatim in the frame");
        let mut tampered = bytes.clone();
        tampered[at..at + needle.len()].copy_from_slice(b"tampered");
        assert_ne!(bytes, tampered, "test must actually modify the entry");
        std::fs::write(&path, tampered).unwrap();
        let cache = ResultCache::new(4, Some(dir.clone()));
        assert!(cache.get(&k).is_none(), "tampered entry must read as a miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_disk_dir_means_memory_only() {
        let cache = ResultCache::new(4, None);
        let k = key(11);
        cache.put(&k, result("m"));
        assert_eq!(cache.get(&k).unwrap().1, CacheTier::Memory);
    }

    #[test]
    fn failed_disk_writes_are_counted_and_leave_no_tempfile() {
        let dir = temp_dir("write-errors");
        let k = key(12);
        let cache = ResultCache::new(4, Some(dir.clone()));
        // Occupy the entry path with a directory so the rename must fail.
        std::fs::create_dir_all(dir.join(format!("{}.bin", k.as_hex()))).unwrap();
        cache.put(&k, result("w"));
        assert_eq!(cache.write_error_count(), 1);
        let leftover_tmp = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .count();
        assert_eq!(leftover_tmp, 0, "failure path must clean its tempfile up");
        // The memory tier still serves the entry.
        assert_eq!(cache.get(&k).unwrap().1, CacheTier::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_orphan_tempfiles_only() {
        let dir = temp_dir("gc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(".abc.tmp-123"), "orphan").unwrap();
        std::fs::write(dir.join("real.bin"), "keep").unwrap();
        assert_eq!(gc_orphan_tmp(&dir), 1);
        assert!(dir.join("real.bin").exists());
        assert!(!dir.join(".abc.tmp-123").exists());
        assert_eq!(gc_orphan_tmp(&dir), 0, "idempotent");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_advertises_both_tiers_sorted_with_output_checksums() {
        let dir = temp_dir("digest");
        let cache = ResultCache::new(4, Some(dir.clone()));
        let (k1, k2) = (key(21), key(22));
        cache.put(&k1, result("a"));
        cache.put(&k2, result("b"));
        let digest = cache.digest();
        assert_eq!(digest.len(), 2);
        assert!(digest.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");
        for (k, v) in [(&k1, result("a")), (&k2, result("b"))] {
            let version = digest.iter().find(|(h, _)| h == k.as_hex()).map(|(_, v)| v.clone());
            assert_eq!(version, Some(sha256_hex(v.output.as_bytes())));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_start_digest_scans_the_disk_tier() {
        let dir = temp_dir("cold-digest");
        let k = key(23);
        {
            let cache = ResultCache::new(4, Some(dir.clone()));
            cache.put(&k, result("cold"));
            // A corrupt stray frame must not be advertised.
            std::fs::write(dir.join(format!("{}.bin", key(24).as_hex())), b"junk").unwrap();
        }
        let cache = ResultCache::new(4, Some(dir.clone()));
        let digest = cache.digest();
        assert_eq!(digest.len(), 1, "only the verifiable frame is advertised");
        assert_eq!(digest[0].0, k.as_hex());
        assert_eq!(digest[0].1, sha256_hex(result("cold").output.as_bytes()));
        // And the frame export round-trips through the codec.
        let frame = cache.entry_frame(&k).unwrap();
        let decoded = codec::decode_entry(&frame).unwrap();
        assert_eq!(decoded.output, result("cold").output);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
