//! Two-tier, content-addressed result cache.
//!
//! Tier 1 is an in-memory LRU bounded by entry count; tier 2 is an
//! on-disk JSON store (one file per key, atomically written via a
//! tempfile + rename) that survives server restarts. A disk hit is
//! promoted into memory. Both tiers are keyed by the canonical
//! [`JobKey`](crate::key::JobKey), so a cached entry is valid for *any*
//! request that hashes to it — the cache never needs invalidation, only
//! eviction.
//!
//! The disk tier trusts nothing it reads back: every entry carries a
//! SHA-256 checksum of its output bytes, and an entry whose key or
//! checksum does not verify — bit rot, torn writes, a hostile editor —
//! is a **miss**, never a wrong answer. The chaos testkit drives this
//! path through the `cache.read_disk` / `cache.write_disk` fault points.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use nemfpga_obs::Counter;
use nemfpga_runtime::faults::{FaultAction, FaultPoint};

use crate::json::{self, Value};
use crate::key::JobKey;
use crate::sha::sha256_hex;

/// Fires per disk read. `Err` fails the read, `Corrupt` flips a byte in
/// the loaded entry, `ShortRead` truncates it; all must degrade to a
/// cache miss.
static FAULT_READ_DISK: FaultPoint = FaultPoint::new("cache.read_disk");

/// Fires per disk write. `Err` drops the write (the disk tier silently
/// degrades), `Corrupt`/`ShortRead` persist a damaged entry that later
/// reads must reject.
static FAULT_WRITE_DISK: FaultPoint = FaultPoint::new("cache.write_disk");

/// A cached experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// Experiment name (for humans inspecting the store).
    pub experiment: String,
    /// The exact bytes a direct `repro` run prints to stdout.
    pub output: String,
}

/// Where a lookup was answered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// In-memory LRU.
    Memory,
    /// On-disk JSON store.
    Disk,
}

/// The two-tier store. All methods take `&self`; an internal mutex
/// serializes access (entries are small relative to job compute times,
/// so a single lock is not a bottleneck).
pub struct ResultCache {
    inner: Mutex<Inner>,
    disk_dir: Option<PathBuf>,
    /// Bumped on every failed disk-tier write (tempfile write or
    /// rename). Defaults to a detached counter; the service wires in its
    /// `disk_write_errors` metric.
    write_errors: Counter,
}

struct Inner {
    entries: HashMap<String, MemEntry>,
    capacity: usize,
    tick: u64,
}

struct MemEntry {
    value: CachedResult,
    last_used: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries in memory, with
    /// an optional disk tier rooted at `disk_dir` (created on first
    /// write).
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                capacity: capacity.max(1),
                tick: 0,
            }),
            disk_dir,
            write_errors: Counter::default(),
        }
    }

    /// Routes failed disk writes into `counter` (shared with the metric
    /// registry) instead of the default detached counter.
    #[must_use]
    pub fn with_write_error_counter(mut self, counter: Counter) -> Self {
        self.write_errors = counter;
        self
    }

    /// Failed disk-tier writes so far (through whichever counter is
    /// wired in).
    pub fn write_error_count(&self) -> u64 {
        self.write_errors.get()
    }

    /// Looks `key` up in memory, then on disk (promoting a disk hit into
    /// memory). Returns the result and the tier that answered.
    pub fn get(&self, key: &JobKey) -> Option<(CachedResult, CacheTier)> {
        {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(key.as_hex()) {
                entry.last_used = tick;
                return Some((entry.value.clone(), CacheTier::Memory));
            }
        }
        let value = self.read_disk(key)?;
        self.insert_memory(key, value.clone());
        Some((value, CacheTier::Disk))
    }

    /// Stores a result in both tiers.
    pub fn put(&self, key: &JobKey, value: CachedResult) {
        self.write_disk(key, &value);
        self.insert_memory(key, value);
    }

    /// Entries currently resident in memory.
    pub fn memory_len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").entries.len()
    }

    fn insert_memory(&self, key: &JobKey, value: CachedResult) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(key.as_hex().to_owned(), MemEntry { value, last_used: tick });
        while inner.entries.len() > inner.capacity {
            // O(n) victim scan; capacities are small (hundreds).
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty above capacity");
            inner.entries.remove(&victim);
        }
    }

    fn entry_path(&self, key: &JobKey) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{}.json", key.as_hex())))
    }

    fn read_disk(&self, key: &JobKey) -> Option<CachedResult> {
        let mut text = std::fs::read_to_string(self.entry_path(key)?).ok()?;
        match FAULT_READ_DISK.fire().apply_basic() {
            FaultAction::Err(_) => return None,
            FaultAction::Corrupt => text = damage(text, false),
            FaultAction::ShortRead => text = damage(text, true),
            _ => {}
        }
        let doc = json::parse(&text).ok()?;
        // A corrupt or truncated entry is treated as a miss; the job
        // recomputes and overwrites it. Three independent tripwires: the
        // JSON must parse, the embedded key must match the filename's,
        // and the output bytes must hash to the recorded checksum (this
        // last one catches corruption that stays inside a string
        // literal, which the first two cannot see).
        if doc.get("key")?.as_str()? != key.as_hex() {
            return None;
        }
        let output = doc.get("output")?.as_str()?.to_owned();
        if doc.get("checksum")?.as_str()? != sha256_hex(output.as_bytes()) {
            return None;
        }
        Some(CachedResult { experiment: doc.get("experiment")?.as_str()?.to_owned(), output })
    }

    fn write_disk(&self, key: &JobKey, value: &CachedResult) {
        let Some(path) = self.entry_path(key) else { return };
        let Some(dir) = path.parent() else { return };
        // Disk-tier failures degrade the cache, never the service.
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let doc = Value::obj(vec![
            ("key", Value::Str(key.as_hex().to_owned())),
            ("experiment", Value::Str(value.experiment.clone())),
            ("output", Value::Str(value.output.clone())),
            ("checksum", Value::Str(sha256_hex(value.output.as_bytes()))),
        ]);
        let mut encoded = doc.to_json();
        match FAULT_WRITE_DISK.fire().apply_basic() {
            FaultAction::Err(error) => {
                // An injected write failure is still a failed write:
                // count it so the metric tells the truth under chaos.
                self.write_errors.inc();
                eprintln!("nemfpga-service: cache write failed for {}: {error}", key.as_hex());
                return;
            }
            FaultAction::Corrupt => encoded = damage(encoded, false),
            FaultAction::ShortRead => encoded = damage(encoded, true),
            _ => {}
        }
        let tmp = dir.join(format!(".{}.tmp-{}", key.as_hex(), std::process::id()));
        if let Err(error) =
            std::fs::write(&tmp, encoded).and_then(|()| std::fs::rename(&tmp, &path))
        {
            // The entry stays compute-able and memory-cached; surface
            // the degraded disk tier instead of dropping it silently.
            self.write_errors.inc();
            eprintln!("nemfpga-service: cache write failed for {}: {error}", key.as_hex());
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Removes orphaned cache tempfiles (`.{key}.tmp-{pid}`) left behind by
/// a crash between the tempfile write and its rename. Returns how many
/// were removed. Safe to call with live writers only from startup, when
/// this process is the sole owner of `dir`.
pub fn gc_orphan_tmp(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with('.')
            && name.contains(".tmp-")
            && std::fs::remove_file(entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    removed
}

/// Deterministic damage for injected `Corrupt`/`ShortRead` faults:
/// truncates at the midpoint, or perturbs the midpoint byte.
fn damage(text: String, truncate: bool) -> String {
    let mut bytes = text.into_bytes();
    let mid = bytes.len() / 2;
    if truncate {
        bytes.truncate(mid);
    } else if let Some(b) = bytes.get_mut(mid) {
        *b = b.wrapping_add(1);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga::request::{ExperimentKind, ExperimentRequest};

    fn key(seed: u64) -> JobKey {
        crate::key::job_key(&ExperimentRequest {
            seed,
            ..ExperimentRequest::new(ExperimentKind::Fig4)
        })
        .unwrap()
    }

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            experiment: "fig4".to_owned(),
            output: format!("line one {tag}\nline \"two\"\t{tag}\n"),
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nemfpga-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_hits_and_evicts_lru() {
        let cache = ResultCache::new(2, None);
        let (k1, k2, k3) = (key(1), key(2), key(3));
        cache.put(&k1, result("a"));
        cache.put(&k2, result("b"));
        // Touch k1 so k2 is the LRU victim.
        assert_eq!(cache.get(&k1).unwrap().1, CacheTier::Memory);
        cache.put(&k3, result("c"));
        assert_eq!(cache.memory_len(), 2);
        assert!(cache.get(&k2).is_none(), "LRU entry should be gone");
        assert_eq!(cache.get(&k1).unwrap().0, result("a"));
        assert_eq!(cache.get(&k3).unwrap().0, result("c"));
    }

    #[test]
    fn disk_tier_round_trips_bytes_and_survives_restart() {
        let dir = temp_dir("roundtrip");
        let k = key(7);
        let value = CachedResult {
            experiment: "fig4".to_owned(),
            output: "==== banner ====\n  nominal: 6.20 V\n\ttabbed \"quoted\" µ\n".to_owned(),
        };
        {
            let cache = ResultCache::new(4, Some(dir.clone()));
            cache.put(&k, value.clone());
        }
        // A fresh cache (fresh process in real life) hits the disk tier.
        let cache = ResultCache::new(4, Some(dir.clone()));
        let (got, tier) = cache.get(&k).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(got, value);
        // The promotion makes the second read a memory hit.
        assert_eq!(cache.get(&k).unwrap().1, CacheTier::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_read_as_misses() {
        let dir = temp_dir("corrupt");
        let k = key(9);
        {
            let cache = ResultCache::new(4, Some(dir.clone()));
            cache.put(&k, result("x"));
        }
        let path = dir.join(format!("{}.json", k.as_hex()));
        std::fs::write(&path, "{ truncated").unwrap();
        let cache = ResultCache::new(4, Some(dir.clone()));
        assert!(cache.get(&k).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_inside_the_output_string_is_a_miss() {
        // Valid JSON, correct key, but the output bytes were tampered
        // with after the checksum was recorded: only the checksum
        // tripwire can catch this, and a wrong answer is never served.
        let dir = temp_dir("tampered");
        let k = key(10);
        {
            let cache = ResultCache::new(4, Some(dir.clone()));
            cache.put(&k, result("original"));
        }
        let path = dir.join(format!("{}.json", k.as_hex()));
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("original", "tampered");
        assert_ne!(text, tampered, "test must actually modify the entry");
        std::fs::write(&path, tampered).unwrap();
        let cache = ResultCache::new(4, Some(dir.clone()));
        assert!(cache.get(&k).is_none(), "tampered entry must read as a miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_disk_dir_means_memory_only() {
        let cache = ResultCache::new(4, None);
        let k = key(11);
        cache.put(&k, result("m"));
        assert_eq!(cache.get(&k).unwrap().1, CacheTier::Memory);
    }

    #[test]
    fn failed_disk_writes_are_counted_and_leave_no_tempfile() {
        let dir = temp_dir("write-errors");
        let k = key(12);
        let cache = ResultCache::new(4, Some(dir.clone()));
        // Occupy the entry path with a directory so the rename must fail.
        std::fs::create_dir_all(dir.join(format!("{}.json", k.as_hex()))).unwrap();
        cache.put(&k, result("w"));
        assert_eq!(cache.write_error_count(), 1);
        let leftover_tmp = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .count();
        assert_eq!(leftover_tmp, 0, "failure path must clean its tempfile up");
        // The memory tier still serves the entry.
        assert_eq!(cache.get(&k).unwrap().1, CacheTier::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_orphan_tempfiles_only() {
        let dir = temp_dir("gc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(".abc.tmp-123"), "orphan").unwrap();
        std::fs::write(dir.join("real.json"), "keep").unwrap();
        assert_eq!(gc_orphan_tmp(&dir), 1);
        assert!(dir.join("real.json").exists());
        assert!(!dir.join(".abc.tmp-123").exists());
        assert_eq!(gc_orphan_tmp(&dir), 0, "idempotent");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
