//! Compact binary codec for cache entries and peer transfer.
//!
//! One frame per cached result:
//!
//! ```text
//! +--------+---------+-----------------+-----------------+-----------------+----------------+
//! | "NEMF" | version | len:u32 | key   | len:u32 | exp   | len:u32 | out   | sha256 trailer |
//! | 4 B    | u16 LE  | LE      | bytes | LE      | bytes | LE      | bytes | 32 B           |
//! +--------+---------+-----------------+-----------------+-----------------+----------------+
//! ```
//!
//! The trailer is the SHA-256 of every byte before it, so a frame is
//! self-verifying end to end: torn writes, bit rot, and truncated peer
//! transfers all fail [`decode_entry`] and degrade to a cache **miss**,
//! never a wrong answer. The same frame serves two masters — the disk
//! tier of [`crate::cache::ResultCache`] (one `{key}.bin` file per
//! entry) and the cluster's peer-transfer endpoint
//! (`GET /v1/cluster/entry/:key`) — so bytes verified once on disk are
//! the bytes shipped over the wire. JSON stays at the `/v1` API edge.
//!
//! Versioning: the magic + `CODEC_VERSION` pair gates decoding. A
//! future incompatible layout bumps the version; old frames then decode
//! as `None` (a miss) and get rewritten on the next compute, which is
//! exactly the upgrade story a content-addressed cache wants.

use crate::sha::sha256;

/// Leading magic bytes of every frame.
pub const CODEC_MAGIC: &[u8; 4] = b"NEMF";

/// Current frame layout version.
pub const CODEC_VERSION: u16 = 1;

/// SHA-256 trailer length.
const TRAILER: usize = 32;

/// Hard ceiling on any single length-prefixed field (64 MiB). Decoding
/// rejects larger claims outright so a corrupt length prefix cannot
/// drive a huge allocation before the trailer check would catch it.
const MAX_FIELD: usize = 64 << 20;

/// A decoded cache-entry frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedEntry {
    /// Content address (64 lowercase hex chars) the frame claims.
    pub key: String,
    /// Experiment wire name.
    pub experiment: String,
    /// The exact bytes a direct `repro` run prints to stdout.
    pub output: String,
}

/// Encodes one cache entry as a self-verifying binary frame.
pub fn encode_entry(key: &str, experiment: &str, output: &str) -> Vec<u8> {
    let mut frame = Vec::with_capacity(
        CODEC_MAGIC.len() + 2 + 3 * 4 + key.len() + experiment.len() + output.len() + TRAILER,
    );
    frame.extend_from_slice(CODEC_MAGIC);
    frame.extend_from_slice(&CODEC_VERSION.to_le_bytes());
    for field in [key, experiment, output] {
        frame.extend_from_slice(&(field.len() as u32).to_le_bytes());
        frame.extend_from_slice(field.as_bytes());
    }
    let digest = sha256(&frame);
    frame.extend_from_slice(&digest);
    frame
}

/// Decodes and verifies a frame. Any defect — wrong magic, unknown
/// version, short or oversized fields, non-UTF-8 bytes, or a trailer
/// mismatch — returns `None`; callers treat that as a cache miss.
pub fn decode_entry(bytes: &[u8]) -> Option<DecodedEntry> {
    if bytes.len() < CODEC_MAGIC.len() + 2 + TRAILER {
        return None;
    }
    let (frame, trailer) = bytes.split_at(bytes.len() - TRAILER);
    if sha256(frame) != trailer {
        return None;
    }
    let mut cursor = frame;
    let magic = take(&mut cursor, CODEC_MAGIC.len())?;
    if magic != CODEC_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes(take(&mut cursor, 2)?.try_into().ok()?);
    if version != CODEC_VERSION {
        return None;
    }
    let key = take_field(&mut cursor)?;
    let experiment = take_field(&mut cursor)?;
    let output = take_field(&mut cursor)?;
    if !cursor.is_empty() {
        // Trailing garbage would have broken the trailer already, but
        // be explicit: a frame is exactly its three fields.
        return None;
    }
    Some(DecodedEntry { key, experiment, output })
}

fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if cursor.len() < n {
        return None;
    }
    let (head, rest) = cursor.split_at(n);
    *cursor = rest;
    Some(head)
}

fn take_field(cursor: &mut &[u8]) -> Option<String> {
    let len = u32::from_le_bytes(take(cursor, 4)?.try_into().ok()?) as usize;
    if len > MAX_FIELD {
        return None;
    }
    String::from_utf8(take(cursor, len)?.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode_entry(&"ab".repeat(32), "fig4", "==== banner ====\n  nominal: 6.20 V\n\tµ\n")
    }

    #[test]
    fn round_trips_exact_bytes() {
        let frame = sample();
        let decoded = decode_entry(&frame).expect("clean frame decodes");
        assert_eq!(decoded.key, "ab".repeat(32));
        assert_eq!(decoded.experiment, "fig4");
        assert_eq!(decoded.output, "==== banner ====\n  nominal: 6.20 V\n\tµ\n");
        // Empty fields are legal frames too.
        let empty = encode_entry("", "", "");
        assert_eq!(
            decode_entry(&empty).unwrap(),
            DecodedEntry { key: String::new(), experiment: String::new(), output: String::new() }
        );
    }

    #[test]
    fn every_single_byte_flip_degrades_to_a_miss() {
        let frame = sample();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] = bad[i].wrapping_add(1);
            assert!(decode_entry(&bad).is_none(), "flip at byte {i} must not decode");
        }
    }

    #[test]
    fn every_truncation_degrades_to_a_miss() {
        let frame = sample();
        for len in 0..frame.len() {
            assert!(decode_entry(&frame[..len]).is_none(), "truncation to {len} must not decode");
        }
    }

    #[test]
    fn trailing_garbage_and_wrong_version_are_misses() {
        let mut padded = sample();
        padded.extend_from_slice(b"tail");
        assert!(decode_entry(&padded).is_none());

        // Re-sign a frame with a bumped version: the trailer verifies,
        // the version gate still rejects it.
        let frame = sample();
        let mut future = frame[..frame.len() - TRAILER].to_vec();
        future[4..6].copy_from_slice(&(CODEC_VERSION + 1).to_le_bytes());
        let digest = crate::sha::sha256(&future);
        future.extend_from_slice(&digest);
        assert!(decode_entry(&future).is_none());
    }

    #[test]
    fn oversized_length_claim_is_rejected_without_allocating() {
        let frame = sample();
        let mut bad = frame[..frame.len() - TRAILER].to_vec();
        // Claim a 3 GiB key; re-sign so only the length gate can reject.
        bad[6..10].copy_from_slice(&(3u32 << 30).to_le_bytes());
        let digest = crate::sha::sha256(&bad);
        bad.extend_from_slice(&digest);
        assert!(decode_entry(&bad).is_none());
    }
}
