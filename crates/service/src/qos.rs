//! Multi-tenant fair-share queueing.
//!
//! [`FairQueue`] is the scheduling policy behind the scheduler's
//! bounded queue: every accepted job is tagged with a **tenant** and a
//! **lane** (interactive or batch), and dequeue order is decided by
//! per-tenant *virtual time* — the discrete weighted-fair-queueing
//! scheme. Each dequeue charges the chosen tenant
//! `VTIME_SCALE / weight`, so a tenant with weight 3 is charged a third
//! as much per job as a tenant with weight 1 and is therefore picked
//! three times as often under sustained backlog. A tenant that goes
//! idle re-enters at the current global virtual time: fairness shares
//! the *present*, it does not bank credit for the past.
//!
//! The structure is deliberately pure — no clock, no threads, no
//! atomics — so the deterministic scheduler simulator in
//! `nemfpga-testkit` can drive the exact policy object the live
//! scheduler uses and property-test its invariants (weighted-share
//! convergence, batch non-starvation, quota exactness, per-class FIFO)
//! without any wall time.
//!
//! Two lanes, one guarantee: interactive work is served first, but the
//! batch lane is served at least once every `batch_every` dequeues
//! whenever it has eligible work, so a flood of interactive jobs can
//! never starve batch work outright.
//!
//! Quotas are per tenant and exact. `max_queued` bounds waiting jobs at
//! *admission* — [`FairQueue::enqueue`] rejects the excess, which the
//! HTTP layer surfaces as `429 Too Many Requests` + `Retry-After`.
//! `max_inflight` bounds *running* jobs at dispatch — a tenant at its
//! cap is simply skipped by [`FairQueue::dequeue`] until a job of its
//! finishes, which keeps the worker pool work-conserving.

use std::collections::{BTreeMap, VecDeque};

/// Tenant label used when a submission carries no `tenant` field.
pub const DEFAULT_TENANT: &str = "default";

/// Virtual-time charge for a weight-1 dequeue. Power of two so charges
/// for typical small weights stay exact.
pub const VTIME_SCALE: u64 = 1 << 20;

/// Priority lane of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Lane {
    /// Latency-sensitive work; served first.
    #[default]
    Interactive,
    /// Throughput work; served at least one-in-`batch_every` dequeues.
    Batch,
}

impl Lane {
    /// Wire name (`interactive` / `batch`).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
        }
    }

    /// Parses a wire name back into a lane.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "interactive" => Some(Lane::Interactive),
            "batch" => Some(Lane::Batch),
            _ => None,
        }
    }
}

/// Fair-share policy knobs. Quota fields use `0` for "unlimited", so
/// the default policy changes nothing for single-tenant deployments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosPolicy {
    /// Weight for tenants not listed in `weights` (≥ 1).
    pub default_weight: u32,
    /// Per-tenant weight overrides.
    pub weights: Vec<(String, u32)>,
    /// Max *waiting* jobs per tenant; `0` = unlimited. Exceeding it
    /// rejects the submission (HTTP 429).
    pub max_queued: usize,
    /// Max *running* jobs per tenant; `0` = unlimited. A tenant at the
    /// cap keeps its jobs queued until one finishes.
    pub max_inflight: usize,
    /// Serve the batch lane at least once every this many dequeues
    /// while it has eligible work; `0` disables the guarantee.
    pub batch_every: usize,
}

impl Default for QosPolicy {
    fn default() -> Self {
        Self {
            default_weight: 1,
            weights: Vec::new(),
            max_queued: 0,
            max_inflight: 0,
            batch_every: 4,
        }
    }
}

impl QosPolicy {
    /// The configured weight for `tenant`, clamped to ≥ 1.
    pub fn weight(&self, tenant: &str) -> u32 {
        self.weights
            .iter()
            .find(|(name, _)| name == tenant)
            .map_or(self.default_weight, |(_, w)| *w)
            .max(1)
    }
}

/// A submission rejected by the per-tenant queue quota.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaExceeded {
    /// The over-quota tenant.
    pub tenant: String,
    /// Jobs the tenant already had waiting.
    pub queued: usize,
    /// The configured `max_queued`.
    pub limit: usize,
}

impl std::fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant `{}` is over its queue quota ({} queued, limit {})",
            self.tenant, self.queued, self.limit
        )
    }
}

/// One dequeued job with its class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dequeued {
    /// Owning tenant.
    pub tenant: String,
    /// Lane it waited in.
    pub lane: Lane,
    /// Scheduler job id.
    pub job: u64,
}

/// Point-in-time accounting for one tenant, for metrics and invariant
/// checks (the chaos `tenants` scenario asserts the peaks never exceed
/// the quotas).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Effective weight.
    pub weight: u32,
    /// Jobs currently waiting.
    pub queued: usize,
    /// Jobs currently running.
    pub inflight: usize,
    /// High-water mark of `queued`.
    pub peak_queued: usize,
    /// High-water mark of `inflight`.
    pub peak_inflight: usize,
    /// Jobs ever dequeued for this tenant.
    pub dequeued: u64,
    /// Of those, jobs from the batch lane.
    pub dequeued_batch: u64,
    /// Submissions rejected by the queue quota.
    pub rejected: u64,
}

#[derive(Debug, Default)]
struct Tenant {
    weight: u32,
    vtime: u64,
    lanes: [VecDeque<u64>; 2],
    inflight: usize,
    peak_queued: usize,
    peak_inflight: usize,
    dequeued: u64,
    dequeued_batch: u64,
    rejected: u64,
}

impl Tenant {
    fn queued(&self) -> usize {
        self.lanes[0].len() + self.lanes[1].len()
    }
}

fn lane_index(lane: Lane) -> usize {
    match lane {
        Lane::Interactive => 0,
        Lane::Batch => 1,
    }
}

/// Weighted fair queue over (tenant, lane) classes. See the module
/// docs for the policy; all methods are O(tenants) or better and the
/// whole structure is deterministic given the same call sequence.
#[derive(Debug)]
pub struct FairQueue {
    policy: QosPolicy,
    tenants: BTreeMap<String, Tenant>,
    global_vtime: u64,
    /// Interactive dequeues since the batch lane was last served.
    interactive_streak: usize,
    queued: usize,
}

impl FairQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: &QosPolicy) -> Self {
        Self {
            policy: policy.clone(),
            tenants: BTreeMap::new(),
            global_vtime: 0,
            interactive_streak: 0,
            queued: 0,
        }
    }

    /// Admits `job` to `tenant`'s `lane`, or rejects it when the tenant
    /// is at its `max_queued` quota.
    ///
    /// # Errors
    ///
    /// [`QuotaExceeded`] when the tenant already has `max_queued` jobs
    /// waiting (and the quota is enabled).
    pub fn enqueue(&mut self, tenant: &str, lane: Lane, job: u64) -> Result<(), QuotaExceeded> {
        let weight = self.policy.weight(tenant);
        let global_vtime = self.global_vtime;
        let state = self.tenants.entry(tenant.to_owned()).or_default();
        state.weight = weight;
        let queued = state.queued();
        if self.policy.max_queued > 0 && queued >= self.policy.max_queued {
            state.rejected += 1;
            return Err(QuotaExceeded {
                tenant: tenant.to_owned(),
                queued,
                limit: self.policy.max_queued,
            });
        }
        if queued == 0 {
            // Re-entering the backlog: no credit for idle time.
            state.vtime = state.vtime.max(global_vtime);
        }
        state.lanes[lane_index(lane)].push_back(job);
        state.peak_queued = state.peak_queued.max(state.queued());
        self.queued += 1;
        Ok(())
    }

    /// Whether any queued job belongs to a tenant below its inflight cap.
    pub fn has_eligible(&self) -> bool {
        self.tenants.values().any(|t| t.queued() > 0 && self.below_inflight_cap(t))
    }

    fn below_inflight_cap(&self, tenant: &Tenant) -> bool {
        self.policy.max_inflight == 0 || tenant.inflight < self.policy.max_inflight
    }

    /// Min-vtime eligible tenant with work in `lane` (ties break on the
    /// lexicographically smallest name, which `BTreeMap` order gives us).
    fn pick(&self, lane: Lane) -> Option<String> {
        let li = lane_index(lane);
        self.tenants
            .iter()
            .filter(|(_, t)| !t.lanes[li].is_empty() && self.below_inflight_cap(t))
            .min_by_key(|(name, t)| (t.vtime, *name))
            .map(|(name, _)| name.clone())
    }

    /// Pops the next job to run, or `None` when nothing is eligible
    /// (empty, or every backlogged tenant is at its inflight cap).
    pub fn dequeue(&mut self) -> Option<Dequeued> {
        let batch_due =
            self.policy.batch_every > 0 && self.interactive_streak + 1 >= self.policy.batch_every;
        let lane = if batch_due && self.pick(Lane::Batch).is_some() {
            Lane::Batch
        } else if self.pick(Lane::Interactive).is_some() {
            Lane::Interactive
        } else {
            Lane::Batch
        };
        let name = self.pick(lane)?;
        match lane {
            Lane::Interactive => self.interactive_streak += 1,
            Lane::Batch => self.interactive_streak = 0,
        }
        let charge = {
            let state = self.tenants.get_mut(&name).expect("picked tenant exists");
            let job = state.lanes[lane_index(lane)].pop_front().expect("picked lane non-empty");
            state.inflight += 1;
            state.peak_inflight = state.peak_inflight.max(state.inflight);
            state.dequeued += 1;
            if lane == Lane::Batch {
                state.dequeued_batch += 1;
            }
            let before = state.vtime;
            state.vtime += VTIME_SCALE / u64::from(state.weight.max(1));
            self.queued -= 1;
            (before, job)
        };
        self.global_vtime = self.global_vtime.max(charge.0);
        Some(Dequeued { tenant: name, lane, job: charge.1 })
    }

    /// Records that one of `tenant`'s running jobs finished, freeing an
    /// inflight slot.
    pub fn finish(&mut self, tenant: &str) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.inflight = state.inflight.saturating_sub(1);
        }
    }

    /// Removes a specific waiting job (submission rollback, cancel of a
    /// queued job). Returns whether it was found.
    pub fn remove(&mut self, tenant: &str, lane: Lane, job: u64) -> bool {
        let Some(state) = self.tenants.get_mut(tenant) else { return false };
        let queue = &mut state.lanes[lane_index(lane)];
        let Some(pos) = queue.iter().position(|&j| j == job) else { return false };
        queue.remove(pos);
        self.queued -= 1;
        true
    }

    /// Total waiting jobs across all tenants.
    pub fn queued_len(&self) -> usize {
        self.queued
    }

    /// Per-tenant accounting, in tenant-name order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.tenants
            .iter()
            .map(|(name, t)| TenantStats {
                tenant: name.clone(),
                weight: t.weight,
                queued: t.queued(),
                inflight: t.inflight,
                peak_queued: t.peak_queued,
                peak_inflight: t.peak_inflight,
                dequeued: t.dequeued,
                dequeued_batch: t.dequeued_batch,
                rejected: t.rejected,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(weights: &[(&str, u32)]) -> QosPolicy {
        QosPolicy {
            weights: weights.iter().map(|(n, w)| ((*n).to_owned(), *w)).collect(),
            ..QosPolicy::default()
        }
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = FairQueue::new(&QosPolicy::default());
        for job in 0..5 {
            q.enqueue("a", Lane::Interactive, job).expect("no quota");
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|d| d.job).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weights_shape_dequeue_shares() {
        let mut q = FairQueue::new(&weighted(&[("a", 3), ("b", 2), ("c", 1)]));
        let mut job = 0u64;
        for _ in 0..60 {
            for tenant in ["a", "b", "c"] {
                q.enqueue(tenant, Lane::Interactive, job).expect("no quota");
                job += 1;
            }
        }
        let mut shares = std::collections::BTreeMap::new();
        for _ in 0..60 {
            let d = q.dequeue().expect("backlogged");
            *shares.entry(d.tenant).or_insert(0u64) += 1;
            q.finish("ignored"); // inflight is uncapped here
        }
        assert_eq!(shares["a"], 30);
        assert_eq!(shares["b"], 20);
        assert_eq!(shares["c"], 10);
    }

    #[test]
    fn idle_tenant_reenters_at_global_vtime() {
        let mut q = FairQueue::new(&QosPolicy::default());
        // `a` burns virtual time while `b` is idle.
        for job in 0..10 {
            q.enqueue("a", Lane::Interactive, job).expect("no quota");
        }
        for _ in 0..10 {
            q.dequeue().expect("a is backlogged");
        }
        // When `b` shows up it must not get 10 back-to-back dequeues as
        // "owed" time: it shares from now on.
        for job in 10..14 {
            q.enqueue("a", Lane::Interactive, job).expect("no quota");
            q.enqueue("b", Lane::Interactive, 100 + job).expect("no quota");
        }
        let mut b_streak = 0usize;
        let mut max_b_streak = 0usize;
        while let Some(d) = q.dequeue() {
            if d.tenant == "b" {
                b_streak += 1;
                max_b_streak = max_b_streak.max(b_streak);
            } else {
                b_streak = 0;
            }
        }
        assert!(max_b_streak <= 2, "b got {max_b_streak} consecutive dequeues");
    }

    #[test]
    fn queue_quota_is_exact() {
        let policy = QosPolicy { max_queued: 2, ..QosPolicy::default() };
        let mut q = FairQueue::new(&policy);
        q.enqueue("a", Lane::Interactive, 0).expect("under quota");
        q.enqueue("a", Lane::Batch, 1).expect("under quota");
        let err = q.enqueue("a", Lane::Interactive, 2).expect_err("over quota");
        assert_eq!(err.queued, 2);
        assert_eq!(err.limit, 2);
        // Another tenant is unaffected.
        q.enqueue("b", Lane::Interactive, 3).expect("separate quota");
        // Draining one slot readmits.
        q.dequeue().expect("work queued");
        q.enqueue("a", Lane::Interactive, 4).expect("slot freed");
        assert_eq!(q.tenant_stats()[0].rejected, 1);
    }

    #[test]
    fn inflight_cap_gates_dequeue_not_admission() {
        let policy = QosPolicy { max_inflight: 1, ..QosPolicy::default() };
        let mut q = FairQueue::new(&policy);
        q.enqueue("a", Lane::Interactive, 0).expect("no queue quota");
        q.enqueue("a", Lane::Interactive, 1).expect("no queue quota");
        assert_eq!(q.dequeue().expect("first job").job, 0);
        assert!(q.dequeue().is_none(), "tenant is at its inflight cap");
        assert!(!q.has_eligible());
        q.finish("a");
        assert!(q.has_eligible());
        assert_eq!(q.dequeue().expect("slot freed").job, 1);
    }

    #[test]
    fn batch_lane_is_served_one_in_n() {
        let policy = QosPolicy { batch_every: 3, ..QosPolicy::default() };
        let mut q = FairQueue::new(&policy);
        for job in 0..12 {
            q.enqueue("a", Lane::Interactive, job).expect("no quota");
        }
        for job in 100..104 {
            q.enqueue("b", Lane::Batch, job).expect("no quota");
        }
        let lanes: Vec<Lane> = std::iter::from_fn(|| q.dequeue()).map(|d| d.lane).collect();
        for window in lanes[..9].windows(3) {
            assert!(
                window.contains(&Lane::Batch),
                "batch starved in window {window:?} of {lanes:?}"
            );
        }
    }

    #[test]
    fn remove_releases_quota() {
        let policy = QosPolicy { max_queued: 1, ..QosPolicy::default() };
        let mut q = FairQueue::new(&policy);
        q.enqueue("a", Lane::Interactive, 7).expect("under quota");
        assert!(q.remove("a", Lane::Interactive, 7));
        assert!(!q.remove("a", Lane::Interactive, 7));
        q.enqueue("a", Lane::Interactive, 8).expect("slot released");
        assert_eq!(q.queued_len(), 1);
    }
}
