//! Pure-`std` HTTP/1.1 JSON API.
//!
//! One accept-loop thread, one short-lived thread per connection, one
//! request per connection (`Connection: close`). That is deliberately
//! boring: the expensive part of every request is the experiment itself,
//! and those are bounded by the scheduler's worker pool, not by the
//! transport. The module also ships the minimal wire client
//! ([`http_request`]) that backs the typed [`crate::client::ServiceClient`];
//! everything except raw-protocol tests should go through the client.
//!
//! Routes (schemas and the error-code taxonomy live in `API.md`):
//!
//! | Method/path              | Behavior                                   |
//! |--------------------------|--------------------------------------------|
//! | `POST /v1/jobs`          | Submit a request; `"wait": true` (default) blocks to the job deadline |
//! | `GET /v1/jobs/:id`       | Poll one job; `?wait=true` long-polls to the job deadline |
//! | `GET /v1/jobs/:id/events`| Stream the job's progress as SSE over chunked transfer; resume with `Last-Event-ID` |
//! | `DELETE /v1/jobs/:id`    | Cancel a job (cooperative for running jobs) |
//! | `GET /v1/results/:key`   | Fetch a cached result by content address   |
//! | `GET /v1/jobs?tenant=&state=&limit=&cursor=` | Stable id-ordered job listing with an opaque `next` cursor |
//! | `GET /v1/archs`          | Architecture graph store listing (digest + build stats) |
//! | `GET /v1/archs/:digest`  | One store entry: params echo, node/edge counts, snapshot size |
//! | `GET /v1/healthz`        | Liveness                                   |
//! | `GET /v1/metrics`        | Registry snapshot (JSON); `?format=prometheus` for text |
//! | `GET /v1/cluster/digest` | This node's advertised keys + versions (clustered nodes) |
//! | `GET /v1/cluster/peers`  | Membership snapshot (clustered nodes)      |
//! | `GET /v1/cluster/entry/:key` | One cache entry as a binary codec frame (peer transfer) |
//!
//! Every non-2xx response carries the unified error envelope
//! `{"error": {"code", "message", "retry_after_ms"?}}` — see
//! [`ErrorCode`] for the code enum. Backpressure responses (`429 Too
//! Many Requests` for a full queue or quota, `503 Service Unavailable`
//! while draining) additionally carry a `Retry-After` header in seconds
//! and `retry_after_ms` inside the envelope. The pre-`/v1` unversioned
//! paths had one release of `301` grace and now answer `404` like any
//! other unknown route.
//!
//! With clustering armed, `POST /v1/jobs` first routes by rendezvous
//! hash: a node that is not the key's owner proxies the submit to the
//! owner and relays its response verbatim (`?forwarded=1` marks the
//! hop so chains cap at one), and the local serving path tries a peer
//! result fetch before computing a miss. `GET /v1/results/:key` does
//! the same peer fetch, so any node answers for any replicated key.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nemfpga::request::{ExperimentKind, ExperimentRequest};

use crate::cluster::{Cluster, RouteStep};
use crate::events::Poll;
use crate::json::{self, Value};
use crate::key::JobKey;
use crate::metrics::Metrics;
use crate::qos::Lane;
use crate::scheduler::{JobStatus, Scheduler, SubmitError, SubmitOptions};
use crate::sse;

/// Hard ceiling on request bodies (requests are tiny JSON objects).
const MAX_BODY: usize = 1 << 20;

/// A running HTTP server. Dropping (or calling [`ServerHandle::shutdown`])
/// stops the accept loop; the scheduler it serves is owned by the caller.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `addr` and serves the scheduler until shutdown. `cluster` arms
/// the `/v1/cluster/*` routes and owner-aware job routing.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(
    addr: &str,
    scheduler: Arc<Scheduler>,
    metrics: Arc<Metrics>,
    cluster: Option<Arc<Cluster>>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let accept_thread =
        std::thread::Builder::new().name("nemfpga-http-accept".to_owned()).spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let scheduler = Arc::clone(&scheduler);
                let metrics = Arc::clone(&metrics);
                let cluster = cluster.clone();
                let _ = std::thread::Builder::new().name("nemfpga-http-conn".to_owned()).spawn(
                    move || handle_connection(stream, &scheduler, &metrics, cluster.as_deref()),
                );
            }
        })?;
    Ok(ServerHandle { addr: local, stop, accept_thread: Some(accept_thread) })
}

fn handle_connection(
    stream: TcpStream,
    scheduler: &Scheduler,
    metrics: &Metrics,
    cluster: Option<&Cluster>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let peer_writable = stream.try_clone();
    let Ok(mut out) = peer_writable else { return };
    let response = match read_request(stream) {
        Ok((method, path, body, last_event_id)) => {
            metrics.http_requests.inc();
            // The events stream writes chunks to the socket as they
            // happen; everything else is a one-shot response.
            let (bare_path, params) = split_query(&path);
            if method == "GET" {
                if let Some(id_text) =
                    bare_path.strip_prefix("/v1/jobs/").and_then(|r| r.strip_suffix("/events"))
                {
                    stream_events(&mut out, id_text, &params, last_event_id, scheduler);
                    return;
                }
            }
            route(&method, &path, &body, scheduler, metrics, cluster)
        }
        Err(e) => Response::error(400, ErrorCode::BadRequest, &format!("malformed request: {e}")),
    };
    let _ = out.write_all(response.to_bytes().as_slice());
    let _ = out.flush();
}

/// (method, path, body, Last-Event-ID header).
fn read_request(stream: TcpStream) -> Result<(String, String, String, Option<u64>), String> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line).map_err(|e| e.to_string())?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let path = parts.next().ok_or("missing path")?.to_owned();
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version}"));
    }

    let mut content_length = 0usize;
    let mut last_event_id = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| "bad Content-Length".to_owned())?;
            } else if name.eq_ignore_ascii_case("last-event-id") {
                last_event_id = value.trim().parse::<u64>().ok();
            }
        }
    }
    if content_length > MAX_BODY {
        return Err("body too large".to_owned());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    Ok((method, path, body, last_event_id))
}

/// Machine-readable error codes of the unified `/v1` error envelope.
///
/// Every non-2xx response body is exactly
/// `{"error": {"code": <one of these>, "message": <human text>,
/// "retry_after_ms"?: <u64>}}`. The code set is part of the wire
/// contract (documented in API.md); clients branch on the code, never
/// on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request is malformed: bad JSON, unknown or mistyped fields,
    /// an unparsable id/key/cursor, or an unknown query value.
    BadRequest,
    /// The route, job, result, entry, or architecture does not exist
    /// (job ids also expire after record eviction).
    NotFound,
    /// The method is not supported anywhere on the API surface.
    MethodNotAllowed,
    /// The bounded job queue is full; retry after the hinted delay.
    QueueFull,
    /// The submitting tenant is over its fair-share quota; retry after
    /// the hinted delay (scoped to the tenant, unlike `queue_full`).
    QuotaExceeded,
    /// The service is draining for shutdown; resubmit elsewhere.
    Draining,
    /// The service is in overload brownout and shed this submission;
    /// retry after the hinted delay (the brownout stage recovers as
    /// load drains).
    Overloaded,
    /// The job key is quarantined: it failed abnormally (panic,
    /// watchdog kill, budget breach) too many times in a row and will
    /// not be executed again. Not retryable — fix the input.
    Quarantined,
}

impl ErrorCode {
    /// The wire name (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::BadRequest => "bad_request",
            Self::NotFound => "not_found",
            Self::MethodNotAllowed => "method_not_allowed",
            Self::QueueFull => "queue_full",
            Self::QuotaExceeded => "quota_exceeded",
            Self::Draining => "draining",
            Self::Overloaded => "overloaded",
            Self::Quarantined => "quarantined",
        }
    }
}

enum Body {
    Json(Value),
    Text(String),
    /// A binary codec frame (peer entry transfer).
    Bytes(Vec<u8>),
}

struct Response {
    status: u16,
    body: Body,
    /// `Retry-After` header value in seconds (backpressure responses).
    retry_after: Option<u64>,
}

impl Response {
    fn ok(body: Value) -> Self {
        Self { status: 200, body: Body::Json(body), retry_after: None }
    }

    fn text(body: String) -> Self {
        Self { status: 200, body: Body::Text(body), retry_after: None }
    }

    fn bytes(body: Vec<u8>) -> Self {
        Self { status: 200, body: Body::Bytes(body), retry_after: None }
    }

    /// Relays a response received from a peer (proxied submit): the
    /// parsed body re-serializes byte-identically through the
    /// deterministic codec.
    fn relayed(status: u16, retry_after: Option<u64>, body: Value) -> Self {
        Self { status, body: Body::Json(body), retry_after }
    }

    /// The unified error envelope:
    /// `{"error": {"code", "message"}}` (plus `retry_after_ms` via
    /// [`Response::backpressure`]). Every non-2xx body flows through
    /// here, so the shape cannot drift per route.
    fn error(status: u16, code: ErrorCode, message: &str) -> Self {
        let envelope = Value::obj(vec![(
            "error",
            Value::obj(vec![
                ("code", Value::Str(code.as_str().to_owned())),
                ("message", Value::Str(message.to_owned())),
            ]),
        )]);
        Self { status, body: Body::Json(envelope), retry_after: None }
    }

    /// A backpressure error (429/503): the envelope gains
    /// `retry_after_ms` and the response a `Retry-After: {seconds}`
    /// header, so well-behaved clients pace their retries off the
    /// server's hint instead of guessing.
    fn backpressure(status: u16, code: ErrorCode, message: &str, retry_after_secs: u64) -> Self {
        let mut response = Self::error(status, code, message);
        if let Body::Json(Value::Obj(fields)) = &mut response.body {
            if let Some(Value::Obj(inner)) =
                fields.iter_mut().find(|(k, _)| k == "error").map(|(_, v)| v)
            {
                inner.push(("retry_after_ms".to_owned(), Value::U64(retry_after_secs * 1000)));
            }
        }
        response.retry_after = Some(retry_after_secs);
        response
    }

    fn to_bytes(&self) -> Vec<u8> {
        let (content_type, body): (&str, Vec<u8>) = match &self.body {
            Body::Json(v) => ("application/json", v.to_json().into_bytes()),
            Body::Text(t) => ("text/plain; version=0.0.4", t.clone().into_bytes()),
            Body::Bytes(b) => ("application/octet-stream", b.clone()),
        };
        let reason = match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        let retry_after =
            self.retry_after.map(|secs| format!("Retry-After: {secs}\r\n")).unwrap_or_default();
        let mut out = format!(
            "HTTP/1.1 {} {}\r\n{}Content-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            retry_after,
            content_type,
            body.len(),
        )
        .into_bytes();
        out.extend_from_slice(&body);
        out
    }
}

/// Splits `/path?k=v&k2=v2` into the path and its query pairs.
fn split_query(raw: &str) -> (&str, Vec<(&str, &str)>) {
    match raw.split_once('?') {
        None => (raw, Vec::new()),
        Some((path, query)) => {
            let params = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| p.split_once('=').unwrap_or((p, "")))
                .collect();
            (path, params)
        }
    }
}

fn query_flag(params: &[(&str, &str)], name: &str) -> bool {
    params.iter().any(|(k, v)| *k == name && matches!(*v, "1" | "true" | ""))
}

fn route(
    method: &str,
    raw_path: &str,
    body: &str,
    scheduler: &Scheduler,
    metrics: &Metrics,
    cluster: Option<&Cluster>,
) -> Response {
    let (path, params) = split_query(raw_path);

    // The pre-`/v1` unversioned paths had their release of 301 grace;
    // they now 404 like any other unknown route.
    let Some(sub) = path.strip_prefix("/v1") else {
        return Response::error(
            404,
            ErrorCode::NotFound,
            &format!("no route for {method} {raw_path}"),
        );
    };

    match (method, sub) {
        ("GET", "/healthz") => {
            Response::ok(Value::obj(vec![("status", Value::Str("ok".to_owned()))]))
        }
        ("GET", "/metrics") => {
            let depth = scheduler.queue_depth();
            match params.iter().find(|(k, _)| *k == "format").map(|(_, v)| *v) {
                None | Some("json") => Response::ok(metrics.to_json(depth)),
                Some("prometheus") => Response::text(metrics.to_prometheus(depth)),
                Some(other) => Response::error(
                    400,
                    ErrorCode::BadRequest,
                    &format!("unknown metrics format `{other}`"),
                ),
            }
        }
        ("POST", "/jobs") => post_jobs(body, query_flag(&params, "forwarded"), scheduler, cluster),
        ("GET", "/jobs") => list_jobs(&params, scheduler),
        ("GET", "/archs") => list_archs(),
        _ if method == "GET" && sub.starts_with("/archs/") => get_arch(&sub[7..]),
        ("GET", "/cluster/digest") => match cluster {
            Some(cluster) => Response::ok(cluster.digest_json()),
            None => Response::error(404, ErrorCode::NotFound, "this node is not clustered"),
        },
        ("GET", "/cluster/peers") => match cluster {
            Some(cluster) => Response::ok(cluster.peers_json()),
            None => Response::error(404, ErrorCode::NotFound, "this node is not clustered"),
        },
        _ if method == "GET" && sub.starts_with("/cluster/entry/") => {
            get_cluster_entry(&sub[15..], cluster)
        }
        _ if method == "GET" && sub.starts_with("/jobs/") => {
            get_job(&sub[6..], query_flag(&params, "wait"), scheduler)
        }
        _ if method == "DELETE" && sub.starts_with("/jobs/") => delete_job(&sub[6..], scheduler),
        _ if method == "GET" && sub.starts_with("/results/") => {
            get_result(&sub[9..], scheduler, cluster)
        }
        ("GET" | "POST" | "DELETE", _) => {
            Response::error(404, ErrorCode::NotFound, &format!("no route for {method} {raw_path}"))
        }
        _ => Response::error(
            405,
            ErrorCode::MethodNotAllowed,
            &format!("method {method} not supported"),
        ),
    }
}

fn post_jobs(
    body: &str,
    forwarded: bool,
    scheduler: &Scheduler,
    cluster: Option<&Cluster>,
) -> Response {
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, ErrorCode::BadRequest, &e.to_string()),
    };
    let request = match parse_request(&doc) {
        Ok(r) => r,
        Err(e) => return Response::error(400, ErrorCode::BadRequest, &e),
    };
    let wait = doc.get("wait").and_then(Value::as_bool).unwrap_or(true);
    let mut opts = SubmitOptions::default();
    if let Some(v) = doc.get("deadline_ms") {
        let Some(ms) = v.as_u64() else {
            return Response::error(
                400,
                ErrorCode::BadRequest,
                "`deadline_ms` must be a non-negative integer",
            );
        };
        opts.deadline_ms = Some(ms);
    }
    if let Some(v) = doc.get("tenant") {
        let Some(tenant) = v.as_str() else {
            return Response::error(400, ErrorCode::BadRequest, "`tenant` must be a string");
        };
        opts.tenant = Some(tenant.to_owned());
    }
    if let Some(v) = doc.get("priority") {
        let Some(lane) = v.as_str().and_then(Lane::from_name) else {
            return Response::error(
                400,
                ErrorCode::BadRequest,
                "`priority` must be \"interactive\" or \"batch\"",
            );
        };
        opts.lane = lane;
    }

    // Owner-aware routing. A forwarded submit is already one hop deep
    // and always serves locally — two nodes with briefly divergent
    // liveness views must not bounce a job between each other.
    if let Some(cluster) = cluster {
        if let Ok(key) = crate::key::job_key(&request) {
            if !forwarded {
                for step in cluster.route_chain(&key) {
                    match step {
                        RouteStep::Local => break,
                        RouteStep::Peer(label, addr) => {
                            match cluster.forward_submit(&addr, &doc) {
                                Ok((status, retry_after, body)) => {
                                    cluster.membership().mark_up(&label);
                                    cluster.metrics().cluster_proxied_jobs.inc();
                                    return Response::relayed(status, retry_after, body);
                                }
                                // The owner is unreachable: mark it down
                                // and fall through to the next-ranked
                                // candidate (possibly ourselves).
                                Err(_) => cluster.membership().mark_down(&label),
                            }
                        }
                    }
                }
            }
            // Serving locally: before computing a miss, ask peers for
            // the entry (admits straight into our cache on a hit, so
            // the submit below answers from it).
            if scheduler.cached_result(&key).is_none() {
                cluster.peer_fetch(&key);
            }
        }
    }

    let submission = match scheduler.submit_opts(request, opts) {
        Ok(s) => s,
        Err(SubmitError::Invalid(m)) => return Response::error(400, ErrorCode::BadRequest, &m),
        Err(SubmitError::QueueFull) => {
            return Response::backpressure(429, ErrorCode::QueueFull, "job queue is full", 1)
        }
        Err(SubmitError::QuotaExceeded(q)) => {
            return Response::backpressure(429, ErrorCode::QuotaExceeded, &q.to_string(), 1)
        }
        Err(SubmitError::Draining) => {
            return Response::backpressure(503, ErrorCode::Draining, "service is draining", 1)
        }
        Err(error @ SubmitError::Overloaded(_)) => {
            return Response::backpressure(503, ErrorCode::Overloaded, &error.to_string(), 2)
        }
    };

    let status = if wait && !submission.status.state.is_terminal() {
        scheduler
            .wait_for(submission.status.id, scheduler.job_timeout())
            .unwrap_or(submission.status.clone())
    } else {
        submission.status.clone()
    };

    let mut doc = status_json(&status);
    if let Value::Obj(fields) = &mut doc {
        fields.push(("coalesced".to_owned(), Value::Bool(submission.coalesced)));
    }
    let code = if status.state.is_terminal() { 200 } else { 202 };
    Response { status: code, body: Body::Json(doc), retry_after: None }
}

/// Serves `GET /v1/jobs/:id/events`: the job's progress stream as SSE
/// frames, one per HTTP chunk. The cursor resumes from the
/// `Last-Event-ID` header (or the `?last_event_id=` query for clients
/// that cannot set headers): the reply carries exactly the events after
/// it, or an explicit `dropped` gap frame when the ring has already
/// evicted them. The stream ends (zero-length chunk) when the job's
/// channel closes — at its terminal state or its record's eviction — so
/// subscribers never wedge.
fn stream_events(
    out: &mut TcpStream,
    id_text: &str,
    params: &[(&str, &str)],
    header_cursor: Option<u64>,
    scheduler: &Scheduler,
) {
    let Ok(id) = id_text.parse::<u64>() else {
        let _ = out.write_all(
            &Response::error(400, ErrorCode::BadRequest, "job id must be an integer").to_bytes(),
        );
        return;
    };
    let Some(channel) = scheduler.event_channel(id) else {
        let _ = out.write_all(
            &Response::error(404, ErrorCode::NotFound, "no such job (ids expire after eviction)")
                .to_bytes(),
        );
        return;
    };
    let mut cursor = header_cursor
        .or_else(|| {
            params.iter().find(|(k, _)| *k == "last_event_id").and_then(|(_, v)| v.parse().ok())
        })
        .unwrap_or(0);
    let _ = out.set_write_timeout(Some(Duration::from_secs(10)));
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\n\
                Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if out.write_all(head.as_bytes()).is_err() {
        return;
    }
    loop {
        match channel.next_after(cursor, Duration::from_secs(10)) {
            Poll::Event(event) => {
                cursor = event.seq;
                let frame = sse::encode_frame(&sse::SseEvent {
                    id: event.seq,
                    event: event.kind.name().to_owned(),
                    data: event.kind.data().to_json(),
                });
                if out.write_all(&sse::encode_chunk(frame.as_bytes())).is_err()
                    || out.flush().is_err()
                {
                    return; // subscriber went away
                }
            }
            Poll::Closed => {
                let _ = out.write_all(sse::END_CHUNK);
                let _ = out.flush();
                return;
            }
            // A quiet stretch (long-running stage, no new events): keep
            // waiting. The job deadline bounds how long that can last.
            Poll::Timeout => {}
        }
    }
}

fn delete_job(id_text: &str, scheduler: &Scheduler) -> Response {
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, ErrorCode::BadRequest, "job id must be an integer");
    };
    match scheduler.cancel(id) {
        None => {
            Response::error(404, ErrorCode::NotFound, "no such job (ids expire after eviction)")
        }
        Some(status) => {
            // 200 = already settled (including "cancelled just now");
            // 202 = cancellation requested, the job is still winding
            // down cooperatively.
            let code = if status.state.is_terminal() { 200 } else { 202 };
            Response { status: code, body: Body::Json(status_json(&status)), retry_after: None }
        }
    }
}

fn get_job(id_text: &str, wait: bool, scheduler: &Scheduler) -> Response {
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, ErrorCode::BadRequest, "job id must be an integer");
    };
    let status = match scheduler.status(id) {
        Some(status) => status,
        None => {
            return Response::error(
                404,
                ErrorCode::NotFound,
                "no such job (ids expire after eviction)",
            )
        }
    };
    // Server-side long-poll: block on the scheduler's completion condvar
    // instead of making clients sleep-and-retry. Bounded by the job
    // deadline, after which the job is terminal anyway.
    let status = if wait && !status.state.is_terminal() {
        scheduler.wait_for(id, scheduler.job_timeout()).unwrap_or(status)
    } else {
        status
    };
    Response::ok(status_json(&status))
}

fn get_result(key_text: &str, scheduler: &Scheduler, cluster: Option<&Cluster>) -> Response {
    let Some(key) = JobKey::from_hex(key_text) else {
        return Response::error(
            400,
            ErrorCode::BadRequest,
            "result key must be 64 lowercase hex characters",
        );
    };
    // On a local miss, a clustered node asks its peers before giving
    // up, so any node answers for any replicated key. The fetch path
    // (`/v1/cluster/entry/:key`) only ever reads local caches — no
    // recursion.
    let result = scheduler
        .cached_result(&key)
        .or_else(|| cluster.and_then(|cluster| cluster.peer_fetch(&key)));
    match result {
        Some(result) => Response::ok(Value::obj(vec![
            ("key", Value::Str(key.as_hex().to_owned())),
            ("experiment", Value::Str(result.experiment)),
            ("output", Value::Str(result.output)),
        ])),
        // A quarantined key will never produce a result; tell the
        // client why instead of an indistinguishable 404.
        None => match scheduler.quarantine_error(&key) {
            Some(error) => Response::error(503, ErrorCode::Quarantined, &error),
            None => Response::error(404, ErrorCode::NotFound, "no cached result for this key"),
        },
    }
}

fn get_cluster_entry(key_text: &str, cluster: Option<&Cluster>) -> Response {
    let Some(cluster) = cluster else {
        return Response::error(404, ErrorCode::NotFound, "this node is not clustered");
    };
    let Some(key) = JobKey::from_hex(key_text) else {
        return Response::error(
            400,
            ErrorCode::BadRequest,
            "entry key must be 64 lowercase hex characters",
        );
    };
    match cluster.entry_frame(&key) {
        Some(frame) => Response::bytes(frame),
        None => Response::error(404, ErrorCode::NotFound, "no cached entry for this key"),
    }
}

/// Serves `GET /v1/jobs?tenant=&state=&limit=&cursor=`: a stable,
/// id-ordered page of job snapshots with an opaque `next` cursor, so
/// loadgen/chaos drivers stop tracking job ids out-of-band.
fn list_jobs(params: &[(&str, &str)], scheduler: &Scheduler) -> Response {
    let find = |name: &str| params.iter().find(|(k, _)| *k == name).map(|(_, v)| *v);
    let tenant = find("tenant");
    let state = match find("state") {
        None => None,
        Some(text) => match crate::scheduler::JobState::from_name(text) {
            Some(state) => Some(state),
            None => {
                return Response::error(
                    400,
                    ErrorCode::BadRequest,
                    &format!("unknown state `{text}`"),
                )
            }
        },
    };
    let limit = match find("limit") {
        None => 100,
        Some(text) => match text.parse::<usize>() {
            Ok(n) if (1..=1000).contains(&n) => n,
            _ => {
                return Response::error(
                    400,
                    ErrorCode::BadRequest,
                    "`limit` must be an integer in 1..=1000",
                )
            }
        },
    };
    let after = match find("cursor") {
        None => None,
        Some(text) => match decode_cursor(text) {
            Some(id) => Some(id),
            None => return Response::error(400, ErrorCode::BadRequest, "malformed `cursor`"),
        },
    };
    let (page, next) = scheduler.list_jobs(tenant, state, after, limit);
    let mut fields = vec![("jobs", Value::Arr(page.iter().map(status_json).collect()))];
    if let Some(id) = next {
        fields.push(("next", Value::Str(encode_cursor(id))));
    }
    Response::ok(Value::obj(fields))
}

/// The listing cursor is opaque on the wire: a fixed-width hex encoding
/// of the last-returned job id. Clients must echo it verbatim.
fn encode_cursor(id: u64) -> String {
    format!("{id:016x}")
}

fn decode_cursor(text: &str) -> Option<u64> {
    (text.len() == 16).then(|| u64::from_str_radix(text, 16).ok()).flatten()
}

/// Serves `GET /v1/archs`: every architecture graph the process-global
/// store has built, digest-sorted, with build/hit stats.
fn list_archs() -> Response {
    let entries = nemfpga_arch::GraphStore::global().entries();
    Response::ok(Value::obj(vec![(
        "archs",
        Value::Arr(entries.iter().map(|e| arch_json(e, false)).collect()),
    )]))
}

/// Serves `GET /v1/archs/:digest`: one store entry with the full
/// parameter echo.
fn get_arch(digest: &str) -> Response {
    match nemfpga_arch::GraphStore::global().entry(digest) {
        Some(entry) => Response::ok(arch_json(&entry, true)),
        None => Response::error(404, ErrorCode::NotFound, "no architecture graph for this digest"),
    }
}

fn arch_json(entry: &nemfpga_arch::GraphStoreEntry, detail: bool) -> Value {
    let mut fields = vec![
        ("digest", Value::Str(entry.digest.clone())),
        ("channel_width", Value::U64(entry.channel_width as u64)),
        ("nodes", Value::U64(entry.nodes as u64)),
        ("edges", Value::U64(entry.edges as u64)),
        ("hits", Value::U64(entry.hits)),
        ("from_snapshot", Value::Bool(entry.from_snapshot)),
        ("snapshot_bytes", Value::U64(entry.snapshot_bytes)),
    ];
    if detail {
        fields.push((
            "params",
            Value::obj(vec![
                ("cluster_size", Value::U64(entry.params.cluster_size as u64)),
                ("lut_inputs", Value::U64(entry.params.lut_inputs as u64)),
                ("lb_inputs", Value::U64(entry.params.lb_inputs as u64)),
                ("segment_length", Value::U64(entry.params.segment_length as u64)),
                ("fc_in", Value::F64(entry.params.fc_in)),
                ("fc_out", Value::F64(entry.params.fc_out)),
                ("fs", Value::U64(entry.params.fs as u64)),
                ("io_rate", Value::U64(entry.params.io_rate as u64)),
            ]),
        ));
        fields.push((
            "grid",
            Value::obj(vec![
                ("width", Value::U64(entry.grid.width as u64)),
                ("height", Value::U64(entry.grid.height as u64)),
                ("io_rate", Value::U64(entry.grid.io_rate as u64)),
            ]),
        ));
    }
    Value::obj(fields)
}

/// Decodes the `POST /v1/jobs` body into a request. Unknown fields are
/// rejected so typos (`"sacle"`) fail loudly instead of hashing to a
/// surprising cache key.
fn parse_request(doc: &Value) -> Result<ExperimentRequest, String> {
    let Value::Obj(fields) = doc else {
        return Err("body must be a JSON object".to_owned());
    };
    for (name, _) in fields {
        if !matches!(
            name.as_str(),
            "experiment"
                | "scale"
                | "benchmarks"
                | "seed"
                | "wait"
                | "deadline_ms"
                | "tenant"
                | "priority"
        ) {
            return Err(format!("unknown field `{name}`"));
        }
    }
    let name = doc.get("experiment").and_then(Value::as_str).ok_or("missing `experiment` field")?;
    let experiment =
        ExperimentKind::from_name(name).ok_or_else(|| format!("unknown experiment `{name}`"))?;
    let mut request = ExperimentRequest::new(experiment);
    if let Some(v) = doc.get("scale") {
        request.scale = v.as_f64().ok_or("`scale` must be a number")?;
    }
    if let Some(v) = doc.get("benchmarks") {
        request.benchmarks =
            v.as_u64().ok_or("`benchmarks` must be a non-negative integer")? as usize;
    }
    if let Some(v) = doc.get("seed") {
        request.seed = v.as_u64().ok_or("`seed` must be a non-negative integer")?;
    }
    Ok(request)
}

fn status_json(status: &JobStatus) -> Value {
    let mut fields = vec![
        ("job", Value::U64(status.id)),
        ("key", Value::Str(status.key.as_hex().to_owned())),
        ("experiment", Value::Str(status.request.experiment.name().to_owned())),
        ("state", Value::Str(status.state.name().to_owned())),
        ("cached", Value::Bool(status.cached)),
        ("coalesced_submissions", Value::U64(status.coalesced_submissions)),
        ("tenant", Value::Str(status.tenant.clone())),
        ("priority", Value::Str(status.lane.name().to_owned())),
    ];
    if let Some(output) = &status.output {
        fields.push(("output", Value::Str(output.clone())));
    }
    if let Some(error) = &status.error {
        fields.push(("error", Value::Str(error.clone())));
    }
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

// --------------------------------------------------------------------
// Minimal wire client (the typed ServiceClient wraps this)
// --------------------------------------------------------------------

/// One client response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Parsed JSON body.
    pub body: Value,
    /// `Retry-After` header in seconds, when the server sent one
    /// (backpressure: 429 and 503).
    pub retry_after: Option<u64>,
}

/// A raw response before any body interpretation. The body stays bytes
/// so binary peer transfers (`/v1/cluster/entry/:key`) share this path.
pub(crate) struct RawResponse {
    pub status: u16,
    pub retry_after: Option<u64>,
    pub body: Vec<u8>,
}

impl RawResponse {
    /// The body as UTF-8 text (JSON and Prometheus responses).
    pub(crate) fn text(self) -> Result<String, String> {
        String::from_utf8(self.body).map_err(|_| "response is not UTF-8".to_owned())
    }
}

/// Issues one HTTP request and returns the raw response text. Opens a
/// fresh connection per call, matching the server's
/// one-request-per-connection policy.
pub(crate) fn raw_request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Value>,
    timeout: Duration,
) -> Result<RawResponse, String> {
    let stream = TcpStream::connect_timeout(addr, timeout).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    let mut stream = stream;

    let payload = body.map(Value::to_json).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: nemfpga\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| e.to_string())?;
    stream.write_all(payload.as_bytes()).map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| e.to_string())?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;

    let mut content_length = None;
    let mut retry_after = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse::<u64>().ok();
            }
        }
    }
    let mut body_bytes = Vec::new();
    match content_length {
        Some(n) => {
            body_bytes.resize(n, 0);
            reader.read_exact(&mut body_bytes).map_err(|e| e.to_string())?;
        }
        None => {
            reader.read_to_end(&mut body_bytes).map_err(|e| e.to_string())?;
        }
    }
    Ok(RawResponse { status, retry_after, body: body_bytes })
}

/// Issues one HTTP request (`body = None` for GET) and parses the JSON
/// response. This is the low-level wire primitive — kept public for
/// raw-protocol tests (malformed bodies, legacy paths) and the chaos
/// driver; application code should use [`crate::client::ServiceClient`].
///
/// # Errors
///
/// Returns a human-readable message on connection, protocol, or JSON
/// failures.
pub fn http_request<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&Value>,
    timeout: Duration,
) -> Result<ClientResponse, String> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| e.to_string())?
        .next()
        .ok_or("address resolves to nothing")?;
    let raw = raw_request(&addr, method, path, body, timeout)?;
    let status = raw.status;
    let retry_after = raw.retry_after;
    let text = raw.text()?;
    let body = json::parse(&text).map_err(|e| format!("{e} in body {text:?}"))?;
    Ok(ClientResponse { status, body, retry_after })
}
