//! Canonical job keys: the content address of an experiment request.
//!
//! Two requests that denote the same computation must map to the same
//! key, and every request field that can change output bytes must be in
//! the key. The encoding is a fixed-order, newline-separated field list
//! with floats spelled as their exact IEEE-754 bit patterns — no decimal
//! formatting, no locale, no precision loss. Thread count never enters
//! the key: the engine's determinism contract makes results independent
//! of it.
//!
//! Floats that break `x == y ⇔ bits(x) == bits(y)` are rejected up
//! front: NaN (many bit patterns, never equal to itself) and `-0.0`
//! (compares equal to `+0.0` with different bits). Rejection rather than
//! silent normalization keeps the key a pure function of what the caller
//! actually sent.

use nemfpga::request::ExperimentRequest;

use crate::sha::sha256_hex;

/// Version prefix baked into every canonical encoding, so a future field
/// change invalidates old cache entries instead of aliasing them.
const KEY_VERSION: u32 = 1;

/// A content address: the lowercase-hex SHA-256 of the canonical request
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(String);

impl JobKey {
    /// The 64-character hex digest.
    pub fn as_hex(&self) -> &str {
        &self.0
    }

    /// Parses a client-supplied key (e.g. a `GET /results/:key` path
    /// segment). Accepts exactly 64 lowercase hex characters.
    pub fn from_hex(hex: &str) -> Option<Self> {
        (hex.len() == 64 && hex.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
            .then(|| Self(hex.to_owned()))
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Why a request has no canonical form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// A float field was NaN.
    NotANumber {
        /// Field name.
        field: &'static str,
    },
    /// A float field was +∞/−∞.
    Infinite {
        /// Field name.
        field: &'static str,
    },
    /// A float field was the IEEE negative zero.
    NegativeZero {
        /// Field name.
        field: &'static str,
    },
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotANumber { field } => write!(f, "field `{field}` is NaN"),
            Self::Infinite { field } => write!(f, "field `{field}` is infinite"),
            Self::NegativeZero { field } => write!(f, "field `{field}` is negative zero"),
        }
    }
}

impl std::error::Error for KeyError {}

/// Canonicalizes one float field: rejects NaN/±∞/−0.0, otherwise returns
/// the exact bit pattern. Total — never panics, for any input bits.
///
/// # Errors
///
/// [`KeyError`] naming the field for every rejected class.
pub fn canonical_f64(field: &'static str, x: f64) -> Result<u64, KeyError> {
    if x.is_nan() {
        return Err(KeyError::NotANumber { field });
    }
    if x.is_infinite() {
        return Err(KeyError::Infinite { field });
    }
    if x == 0.0 && x.is_sign_negative() {
        return Err(KeyError::NegativeZero { field });
    }
    Ok(x.to_bits())
}

/// The canonical byte encoding the key hashes. Exposed so tests (and
/// humans debugging cache entries) can see exactly what is addressed.
///
/// # Errors
///
/// [`KeyError`] when a float field has no canonical form.
pub fn canonical_encoding(request: &ExperimentRequest) -> Result<String, KeyError> {
    let scale_bits = canonical_f64("scale", request.scale)?;
    Ok(format!(
        "nemfpga-job v{KEY_VERSION}\nexperiment={}\nscale_bits={scale_bits:016x}\nbenchmarks={}\nseed={}\n",
        request.experiment.name(),
        request.benchmarks,
        request.seed,
    ))
}

/// Computes the content address of `request`.
///
/// # Errors
///
/// [`KeyError`] when a float field has no canonical form.
pub fn job_key(request: &ExperimentRequest) -> Result<JobKey, KeyError> {
    Ok(JobKey(sha256_hex(canonical_encoding(request)?.as_bytes())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga::request::ExperimentKind;

    #[test]
    fn equal_requests_equal_keys() {
        let a = ExperimentRequest::new(ExperimentKind::Fig12);
        let b = ExperimentRequest::new(ExperimentKind::Fig12);
        assert_eq!(job_key(&a).unwrap(), job_key(&b).unwrap());
    }

    #[test]
    fn every_field_feeds_the_key() {
        let base = ExperimentRequest::new(ExperimentKind::Fig12);
        let k = job_key(&base).unwrap();
        let variants = [
            ExperimentRequest { experiment: ExperimentKind::Wmin, ..base },
            ExperimentRequest { scale: 0.1, ..base },
            ExperimentRequest { benchmarks: 8, ..base },
            ExperimentRequest { seed: 43, ..base },
        ];
        for v in variants {
            assert_ne!(job_key(&v).unwrap(), k, "{v:?}");
        }
    }

    #[test]
    fn key_format_is_pinned() {
        // Guards against accidental canonical-encoding drift, which would
        // silently orphan every existing on-disk cache entry.
        let r = ExperimentRequest::new(ExperimentKind::Fig4);
        assert_eq!(
            canonical_encoding(&r).unwrap(),
            "nemfpga-job v1\nexperiment=fig4\nscale_bits=3fa999999999999a\nbenchmarks=24\nseed=42\n"
        );
        assert_eq!(
            job_key(&r).unwrap().as_hex(),
            sha256_hex(canonical_encoding(&r).unwrap().as_bytes())
        );
    }

    #[test]
    fn rejects_non_canonical_floats() {
        let base = ExperimentRequest::new(ExperimentKind::Fig4);
        for (scale, want) in [
            (f64::NAN, KeyError::NotANumber { field: "scale" }),
            (f64::INFINITY, KeyError::Infinite { field: "scale" }),
            (f64::NEG_INFINITY, KeyError::Infinite { field: "scale" }),
            (-0.0, KeyError::NegativeZero { field: "scale" }),
        ] {
            let r = ExperimentRequest { scale, ..base };
            assert_eq!(job_key(&r).unwrap_err(), want);
        }
        // Positive zero is canonical (validation rejects it separately on
        // range grounds; the key layer is about bit-stability only).
        assert!(job_key(&ExperimentRequest { scale: 0.0, ..base }).is_ok());
    }

    #[test]
    fn hex_parsing_round_trips() {
        let k = job_key(&ExperimentRequest::new(ExperimentKind::Table1)).unwrap();
        assert_eq!(JobKey::from_hex(k.as_hex()), Some(k.clone()));
        assert_eq!(JobKey::from_hex("xyz"), None);
        assert_eq!(JobKey::from_hex(&k.as_hex().to_uppercase()), None);
    }
}
