//! Differential driver: the CAD equivalence matrix, with shrinking.
//!
//! Runs `--cases N` seeded differential cases (round-robining the
//! families in [`nemfpga_testkit::differential::ALL_KINDS`]) and, if any
//! case diverges, shrinks it to a minimal reproducer before exiting
//! non-zero.
//!
//! `--inject-divergence T` plants a deliberate perturbation in the
//! `ParallelSum` family's parallel path at index threshold `T` and
//! inverts the exit code: success means the harness found the
//! divergence AND shrank it to the provably minimal case
//! (`size == T + 1`, 2 threads) with a ≤ 10-line reproducer.

use std::process::ExitCode;

use nemfpga_testkit::differential::{
    case_matrix, clear_divergence, inject_divergence, reproducer, run_case, shrink_case,
};

const USAGE: &str =
    "usage: differential [--cases N] [--seed0 N] [--threads N] [--inject-divergence T]";

struct Args {
    cases: usize,
    seed0: u64,
    threads: usize,
    inject: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { cases: 56, seed0: 0, threads: 4, inject: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--cases" => args.cases = value("--cases")?.parse().map_err(|_| "bad --cases")?,
            "--seed0" => args.seed0 = value("--seed0")?.parse().map_err(|_| "bad --seed0")?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            "--inject-divergence" => {
                args.inject = Some(
                    value("--inject-divergence")?.parse().map_err(|_| "bad --inject-divergence")?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("differential: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(threshold) = args.inject {
        return demonstrate_shrinking(threshold, args.threads);
    }

    clear_divergence();
    let cases = case_matrix(args.cases, args.seed0, args.threads);
    let mut divergences = 0usize;
    for (i, case) in cases.iter().enumerate() {
        match run_case(case) {
            None => {
                println!("[{:>3}/{}] {:?} seed {} OK", i + 1, cases.len(), case.kind, case.seed)
            }
            Some(d) => {
                divergences += 1;
                println!(
                    "[{:>3}/{}] {:?} seed {} DIVERGED: {}",
                    i + 1,
                    cases.len(),
                    case.kind,
                    case.seed,
                    d.detail
                );
                let (minimal, shrunk) = shrink_case(case);
                if let Some(shrunk) = shrunk {
                    println!("shrunk to {minimal:?}: {}", shrunk.detail);
                    println!("--- minimal reproducer ---\n{}", reproducer(&minimal));
                }
            }
        }
    }
    if divergences == 0 {
        println!("{} cases, all equivalences held at {} threads", cases.len(), args.threads);
        ExitCode::SUCCESS
    } else {
        println!("{divergences} divergences");
        ExitCode::FAILURE
    }
}

/// The `--inject-divergence` demonstration: the shrinker must reduce a
/// large perturbed case to exactly `size == threshold + 1` at 2 threads.
fn demonstrate_shrinking(threshold: u64, threads: usize) -> ExitCode {
    inject_divergence(threshold);
    let start = nemfpga_testkit::DiffCase {
        kind: nemfpga_testkit::differential::DiffKind::ParallelSum,
        seed: 1,
        size: (threshold as u32 + 1).max(8) * 8,
        threads: threads.max(3),
    };
    println!("injected perturbation at index threshold {threshold}; starting from {start:?}");
    let (minimal, divergence) = shrink_case(&start);
    clear_divergence();
    let Some(divergence) = divergence else {
        println!("injected divergence was NOT detected");
        return ExitCode::FAILURE;
    };
    let text = reproducer(&minimal);
    println!("shrunk to {minimal:?}: {}", divergence.detail);
    println!("--- minimal reproducer ({} lines) ---\n{text}", text.lines().count());
    let expected_size = threshold as u32 + 1;
    if minimal.size == expected_size && minimal.threads == 2 && text.lines().count() <= 10 {
        println!("minimal case proven: size {expected_size} (= threshold + 1), 2 threads");
        ExitCode::SUCCESS
    } else {
        println!("shrink did not reach the provably minimal case (expected size {expected_size})");
        ExitCode::FAILURE
    }
}
