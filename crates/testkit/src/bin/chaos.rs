//! Chaos driver: seeded fault plans against a live serve loop.
//!
//! Normal mode runs one randomized-but-seeded [`FaultPlan`] per seed
//! against a fresh `Service` and exits non-zero if any invariant broke —
//! reprint the failing seed with `--seed N` to replay it exactly.
//!
//! `--with-bug <name>` deliberately reintroduces a guarded bug
//! (`skip-double-check` drops the scheduler's under-lock cache
//! double-check; `leak-inflight` leaks the in-flight table entry on
//! completion) and *inverts* the exit code: success means the chaos
//! invariants caught the bug. This is the evidence that the invariants
//! have teeth.
//!
//! `--restart` switches to the kill-and-restart scenario: each seed
//! stages a crash mid-load (journal and cache disks die at seeded
//! ordinals), restarts on the same state directories, and checks the
//! recovery invariants (no durable job lost, byte-identical results,
//! single compute per process, reconciled metrics).
//!
//! `--tenants` switches to the multi-tenant QoS scenario: a seeded
//! tenant flood (weighted tenants, both lanes, real quotas) under a
//! randomized fault plan, checking quota exactness, no cross-tenant
//! result leakage, and the per-tenant metrics ledger.
//!
//! `--crash-loop` switches to the poison-job quarantine scenario: a
//! request whose executor always panics is resubmitted across repeated
//! process restarts on the same journal, and the run proves the
//! journal-persisted attempt tally pins the key after exactly the
//! quarantine threshold's worth of executor runs — with live journal
//! compaction forced mid-run and normal traffic byte-identical.
//!
//! `--cluster` switches to the multi-node scenario: a 3-node in-process
//! cluster floods unique keys in waves while one seeded node is killed
//! and another partitioned, then heals and rejoins. Invariants: zero
//! lost jobs, at most one compute per key cluster-wide, digest
//! convergence after heal, byte-identical results from every node.

use std::process::ExitCode;
use std::time::Duration;

use nemfpga_testkit::chaos::{double_check_race_plan, BugSwitch};
use nemfpga_testkit::{
    run_chaos, run_cluster, run_crash_loop, run_restart, run_tenants, ChaosConfig, ClusterConfig,
    CrashLoopConfig, FaultPlan, RestartConfig, TenantsConfig,
};

const USAGE: &str = "usage: chaos [--seeds A..B | --seed N] [--clients N] [--requests N] \
                     [--with-bug skip-double-check|leak-inflight] [--restart] [--cluster] \
                     [--tenants] [--crash-loop]";

struct Args {
    seeds: std::ops::Range<u64>,
    clients: usize,
    requests: usize,
    bug: Option<BugSwitch>,
    restart: bool,
    cluster: bool,
    tenants: bool,
    crash_loop: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 0..20,
        clients: 4,
        requests: 12,
        bug: None,
        restart: false,
        cluster: false,
        tenants: false,
        crash_loop: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--seeds" => {
                let spec = value("--seeds")?;
                let (a, b) = spec.split_once("..").ok_or("--seeds wants A..B")?;
                let a = a.parse().map_err(|_| "bad --seeds start")?;
                let b = b.parse().map_err(|_| "bad --seeds end")?;
                args.seeds = a..b;
            }
            "--seed" => {
                let n: u64 = value("--seed")?.parse().map_err(|_| "bad --seed")?;
                args.seeds = n..n + 1;
            }
            "--clients" => {
                args.clients = value("--clients")?.parse().map_err(|_| "bad --clients")?;
            }
            "--requests" => {
                args.requests = value("--requests")?.parse().map_err(|_| "bad --requests")?;
            }
            "--with-bug" => {
                let name = value("--with-bug")?;
                args.bug =
                    Some(BugSwitch::from_name(&name).ok_or(format!("unknown bug `{name}`"))?);
            }
            "--restart" => args.restart = true,
            "--cluster" => args.cluster = true,
            "--tenants" => args.tenants = true,
            "--crash-loop" => args.crash_loop = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.seeds.is_empty() {
        return Err("empty seed range".to_owned());
    }
    if (args.restart || args.cluster || args.tenants || args.crash_loop) && args.bug.is_some() {
        return Err(
            "--restart/--cluster/--tenants/--crash-loop and --with-bug are separate scenarios"
                .to_owned(),
        );
    }
    let scenarios = usize::from(args.restart)
        + usize::from(args.cluster)
        + usize::from(args.tenants)
        + usize::from(args.crash_loop);
    if scenarios > 1 {
        return Err(
            "--restart, --cluster, --tenants, and --crash-loop are separate scenarios".to_owned()
        );
    }
    Ok(args)
}

/// The multi-node scenario: kill + partition + rejoin per seed.
fn run_cluster_mode(args: &Args) -> ExitCode {
    let mut total_violations = 0usize;
    for seed in args.seeds.clone() {
        let cfg = ClusterConfig { seed, ..ClusterConfig::default() };
        let report = run_cluster(&cfg);
        println!("[cluster kill+partition] {}", report.summary());
        for violation in &report.violations {
            println!("    VIOLATION: {violation}");
        }
        total_violations += report.violations.len();
    }
    if total_violations == 0 {
        println!("all cluster schedules held every invariant");
        ExitCode::SUCCESS
    } else {
        println!(
            "{total_violations} cluster violations — replay a failing seed with \
             `chaos --cluster --seed N`"
        );
        ExitCode::FAILURE
    }
}

/// The multi-tenant QoS scenario: a weighted tenant flood per seed.
fn run_tenants_mode(args: &Args) -> ExitCode {
    let mut total_violations = 0usize;
    for seed in args.seeds.clone() {
        let plan = FaultPlan::randomized(seed);
        let cfg = TenantsConfig {
            seed,
            clients: args.clients.max(2),
            requests_per_client: args.requests,
            ..TenantsConfig::default()
        };
        let report = run_tenants(&cfg, &plan);
        println!("[tenants {}] {}", plan.describe(), report.summary());
        for violation in &report.violations {
            println!("    VIOLATION: {violation}");
        }
        total_violations += report.violations.len();
    }
    if total_violations == 0 {
        println!("all tenant floods held every QoS invariant");
        ExitCode::SUCCESS
    } else {
        println!(
            "{total_violations} QoS violations — replay a failing seed with \
             `chaos --tenants --seed N`"
        );
        ExitCode::FAILURE
    }
}

/// The poison-job quarantine scenario: one crash loop per seed.
fn run_crash_loop_mode(args: &Args) -> ExitCode {
    let mut total_violations = 0usize;
    for seed in args.seeds.clone() {
        let cfg = CrashLoopConfig { seed, ..CrashLoopConfig::default() };
        let report = run_crash_loop(&cfg);
        println!("[crash-loop quarantine] {}", report.summary());
        for violation in &report.violations {
            println!("    VIOLATION: {violation}");
        }
        total_violations += report.violations.len();
    }
    if total_violations == 0 {
        println!("all crash loops quarantined their poison key on schedule");
        ExitCode::SUCCESS
    } else {
        println!(
            "{total_violations} quarantine violations — replay a failing seed with \
             `chaos --crash-loop --seed N`"
        );
        ExitCode::FAILURE
    }
}

/// The kill-and-restart scenario: one staged crash + recovery per seed.
fn run_restart_mode(args: &Args) -> ExitCode {
    let mut total_violations = 0usize;
    for seed in args.seeds.clone() {
        let cfg = RestartConfig {
            seed,
            jobs: args.clients * args.requests / 2,
            ..RestartConfig::default()
        };
        let report = run_restart(&cfg);
        println!("[crash plan `{}`] {}", report.plan, report.summary());
        for violation in &report.violations {
            println!("    VIOLATION: {violation}");
        }
        total_violations += report.violations.len();
    }
    if total_violations == 0 {
        println!("all crash/restart plans held every recovery invariant");
        ExitCode::SUCCESS
    } else {
        println!(
            "{total_violations} recovery violations — replay a failing seed with \
             `chaos --restart --seed N`"
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.restart {
        return run_restart_mode(&args);
    }
    if args.cluster {
        return run_cluster_mode(&args);
    }
    if args.tenants {
        return run_tenants_mode(&args);
    }
    if args.crash_loop {
        return run_crash_loop_mode(&args);
    }

    let mut total_violations = 0usize;
    for seed in args.seeds.clone() {
        // The crafted race plan gives the skip-double-check bug a
        // deterministic window; every other run uses the seeded
        // randomized plan.
        let plan = match args.bug {
            Some(BugSwitch::SkipCacheDoubleCheck) => double_check_race_plan(),
            _ => FaultPlan::randomized(seed),
        };
        let cfg = ChaosConfig {
            seed,
            clients: args.clients,
            requests_per_client: args.requests,
            job_timeout: Duration::from_secs(5),
            bug: args.bug,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg, &plan);
        println!("[{}] {}", plan.describe(), report.summary());
        for violation in &report.violations {
            println!("    VIOLATION: {violation}");
        }
        total_violations += report.violations.len();
    }

    match args.bug {
        None if total_violations == 0 => {
            println!("all plans held every invariant");
            ExitCode::SUCCESS
        }
        None => {
            println!(
                "{total_violations} invariant violations — replay a failing seed with \
                 `chaos --seed N`"
            );
            ExitCode::FAILURE
        }
        Some(bug) if total_violations > 0 => {
            println!(
                "bug `{}` caught: {total_violations} violations (expected — the guard matters)",
                bug.name()
            );
            ExitCode::SUCCESS
        }
        Some(bug) => {
            println!("bug `{}` was NOT caught by any plan — invariants are too weak", bug.name());
            ExitCode::FAILURE
        }
    }
}
