//! # nemfpga-testkit
//!
//! Deterministic fault-injection and adversarial testing for the
//! nemfpga workspace. Two headline subsystems came out of PRs 1 and 2 —
//! the parallel CAD engine and the caching/coalescing serving stack —
//! and both were tested only when sunny. This crate tests them under
//! storm, without giving up reproducibility:
//!
//! * [`plan`] — the `FaultPlan` DSL: seeded, replayable schedules of
//!   injectable faults (disk I/O errors, corrupt/short reads, delayed or
//!   panicking jobs, clock skew) armed onto the named
//!   [`nemfpga_runtime::faults`] points that production code threads
//!   through its hard paths. A [`plan::FaultScope`] guard owns the
//!   process-global registry for the duration of a test.
//! * [`sync`] — deterministic notification primitives ([`sync::Gate`],
//!   [`sync::Probe`]) that replace sleep-based test waits: a probe
//!   hangs a counter off a fault point and a test blocks on "the site
//!   fired N times", not on wall-clock guesses.
//! * [`chaos`] — the chaos engine: runs the full HTTP serve loop
//!   (`Service::start` + real TCP clients) under a fault plan and
//!   checks the invariants that must survive *any* fault sequence.
//! * [`cluster`] — the cluster chaos scenario: a 3-node in-process
//!   cluster under a seeded kill + partition + rejoin schedule, with
//!   zero-loss, single-compute, convergence, and byte-identity
//!   invariants checked at every stage.
//! * [`hardening`] — the crash-loop scenario: a poison request that
//!   panics every run, resubmitted across repeated process restarts,
//!   proving the journal-persisted attempt tally quarantines the key
//!   after exactly N executor runs while normal traffic stays
//!   byte-identical — with live journal compaction forced mid-run.
//! * [`sim`] — the deterministic scheduler simulator: drives the live
//!   scheduler's exact fair-share policy object
//!   (`nemfpga_service::FairQueue`) under an injected virtual clock
//!   with scripted arrivals, so weighted-share convergence, batch
//!   non-starvation, quota exactness, per-class FIFO, and
//!   work conservation are property-tested with zero wall time.
//! * [`differential`] — the CAD differential harness: incremental
//!   PathFinder vs full rerouting, 1-vs-N-thread sweeps / Monte Carlo /
//!   population sampling, across seeded random architectures, with an
//!   automatic shrinker that reduces any divergence to a minimal
//!   reproducer.
//!
//! Binaries: `chaos` (seeded fault plans against a live serve loop, and
//! `--with-bug` runs that prove the guarded bugs are actually guarded)
//! and `differential` (the bit-identity matrix plus `--inject-divergence`
//! to demonstrate shrinking). `scripts/check.sh --chaos` drives both;
//! TESTING.md documents replay.

pub mod chaos;
pub mod cluster;
pub mod differential;
pub mod hardening;
pub mod plan;
pub mod restart;
pub mod sim;
pub mod sync;
pub mod tenants;

pub use chaos::{run_chaos, BugSwitch, ChaosConfig, ChaosReport};
pub use cluster::{run_cluster, ClusterConfig, ClusterReport};
pub use differential::{case_matrix, run_case, run_matrix, shrink_case, DiffCase, Divergence};
pub use hardening::{run_crash_loop, CrashLoopConfig, CrashLoopReport};
pub use plan::{FaultPlan, FaultRule, FaultScope, FaultSpec, FireRule};
pub use restart::{crash_plan, run_restart, RestartConfig, RestartReport};
pub use sim::{simulate, SimCompletion, SimConfig, SimDispatch, SimJob, SimRejection, SimReport};
pub use sync::{Gate, Probe};
pub use tenants::{run_tenants, TenantsConfig, TenantsReport};
