//! Deterministic test synchronization: gates and fault-point probes.
//!
//! Sleep-based waits ("sleep 200 ms and hope the other thread got
//! there") are the classic source of flaky integration tests. These two
//! primitives replace them with explicit happens-before edges:
//!
//! * a [`Gate`] blocks executors until the test opens it — "hold all
//!   jobs here" without guessing how long submission takes;
//! * a [`Probe`] counts firings of one or more fault points (installed
//!   via [`crate::plan::FaultScope::probe`]) and lets the test block on
//!   "site X fired N times" — the event itself, not elapsed time.
//!
//! Both are cheap condvar wrappers; `Clone` shares the underlying state.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A reusable open/closed barrier. Starts closed; [`Gate::open`] is
/// sticky (everyone waiting is released and later waiters pass through).
#[derive(Clone, Default)]
pub struct Gate {
    inner: Arc<(Mutex<bool>, Condvar)>,
}

impl Gate {
    /// A closed gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the gate, waking every waiter.
    pub fn open(&self) {
        let (lock, cv) = &*self.inner;
        *lock.lock().expect("gate lock poisoned") = true;
        cv.notify_all();
    }

    /// Whether the gate is open.
    pub fn is_open(&self) -> bool {
        *self.inner.0.lock().expect("gate lock poisoned")
    }

    /// Blocks until the gate opens or `timeout` elapses; returns whether
    /// it opened. The timeout is a liveness backstop for broken tests,
    /// not a synchronization mechanism — correct tests always open the
    /// gate.
    pub fn wait_open(&self, timeout: Duration) -> bool {
        let (lock, cv) = &*self.inner;
        let deadline = Instant::now() + timeout;
        let mut open = lock.lock().expect("gate lock poisoned");
        while !*open {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = cv.wait_timeout(open, deadline - now).expect("gate lock poisoned");
            open = guard;
        }
        true
    }
}

/// A shared counter with condvar notification. Installed on fault
/// points by [`crate::plan::FaultScope::probe`]; each firing calls
/// [`Probe::bump`].
#[derive(Clone, Default)]
pub struct Probe {
    inner: Arc<(Mutex<u64>, Condvar)>,
}

impl Probe {
    /// A zeroed probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter and wakes waiters.
    pub fn bump(&self) {
        let (lock, cv) = &*self.inner;
        *lock.lock().expect("probe lock poisoned") += 1;
        cv.notify_all();
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        *self.inner.0.lock().expect("probe lock poisoned")
    }

    /// Blocks until the count reaches `target` or `timeout` elapses;
    /// returns whether the target was reached.
    pub fn wait_until(&self, target: u64, timeout: Duration) -> bool {
        let (lock, cv) = &*self.inner;
        let deadline = Instant::now() + timeout;
        let mut count = lock.lock().expect("probe lock poisoned");
        while *count < target {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = cv.wait_timeout(count, deadline - now).expect("probe lock poisoned");
            count = guard;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_releases_all_waiters_and_stays_open() {
        let gate = Gate::new();
        assert!(!gate.is_open());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let g = gate.clone();
                std::thread::spawn(move || g.wait_open(Duration::from_secs(10)))
            })
            .collect();
        gate.open();
        for w in waiters {
            assert!(w.join().unwrap());
        }
        // Sticky: a late waiter passes straight through.
        assert!(gate.wait_open(Duration::from_millis(1)));
    }

    #[test]
    fn gate_wait_times_out_when_never_opened() {
        let gate = Gate::new();
        assert!(!gate.wait_open(Duration::from_millis(10)));
    }

    #[test]
    fn probe_wakes_the_waiter_at_the_target() {
        let probe = Probe::new();
        let p = probe.clone();
        let waiter = std::thread::spawn(move || p.wait_until(3, Duration::from_secs(10)));
        for _ in 0..3 {
            probe.bump();
        }
        assert!(waiter.join().unwrap());
        assert_eq!(probe.count(), 3);
        assert!(!probe.wait_until(4, Duration::from_millis(10)));
    }
}
