//! The chaos engine: a live serve loop under a seeded fault plan.
//!
//! One chaos run stands up a real [`Service`] (scheduler + cache + HTTP
//! over TCP), arms a [`FaultPlan`], fires a seeded mix of concurrent
//! clients at it — valid jobs over a small keyspace (to force cache hits
//! and coalescing), invalid jobs, polls, result fetches, metrics — then
//! drains and checks the invariants that must survive *any* fault
//! sequence:
//!
//! 1. **Protocol sanity** — every response is well-formed with a status
//!    the request could legally produce.
//! 2. **Byte identity** — every output served (inline or via
//!    `/results/:key`) equals the executor's deterministic output for
//!    that request; corruption degrades to a miss, never a wrong answer.
//! 3. **No wedged state** — after every job reaches a terminal state,
//!    the in-flight table and queue are empty.
//! 4. **Coalescing coherence** — all responses naming one job id agree
//!    on its terminal outcome.
//! 5. **Metrics honesty** — counters reconcile exactly with the
//!    responses the clients observed.
//! 6. **Single compute per key** — unless the plan injects faults that
//!    legitimately force recomputation ([`FaultPlan::allows_recompute`]).
//!
//! Thread interleavings vary between runs; the invariants are
//! interleaving-independent, and the request schedule + plan replay
//! exactly from the seed.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nemfpga::request::{ExperimentKind, ExperimentRequest};
use nemfpga_runtime::{mix_seed, ParallelConfig};
use nemfpga_service::json::Value;
use nemfpga_service::{http_request, job_key, ClientResponse, Service, ServiceConfig};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::plan::{FaultPlan, FaultScope, FaultSpec, FireRule};

/// Guarded bugs the chaos driver can deliberately reintroduce, to prove
/// the chaos invariants would catch their removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugSwitch {
    /// Drop the under-lock cache double-check in `Scheduler::submit`
    /// (the completion-race guard): identical concurrent submissions can
    /// then compute twice.
    SkipCacheDoubleCheck,
    /// Leak the in-flight table entry when a job completes: the
    /// in-flight table wedges.
    LeakInflight,
}

impl BugSwitch {
    /// The `bug.*` fault point implementing the switch.
    pub fn site(self) -> &'static str {
        match self {
            Self::SkipCacheDoubleCheck => "bug.skip_cache_double_check",
            Self::LeakInflight => "bug.leak_inflight",
        }
    }

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Self::SkipCacheDoubleCheck => "skip-double-check",
            Self::LeakInflight => "leak-inflight",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "skip-double-check" => Some(Self::SkipCacheDoubleCheck),
            "leak-inflight" => Some(Self::LeakInflight),
            _ => None,
        }
    }
}

/// One chaos run's shape. The seed drives both the per-client request
/// streams and (via [`FaultPlan::randomized`]) usually the plan.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the request schedule.
    pub seed: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Distinct request seeds (small keyspace → hits + coalescing).
    pub distinct_seeds: u64,
    /// Scheduler queue bound (small → exercises 429).
    pub queue_capacity: usize,
    /// Worker threads.
    pub worker_threads: usize,
    /// Per-job deadline.
    pub job_timeout: Duration,
    /// Disk-tier root; each run uses `<root>/plan-<seed>` and removes it
    /// afterwards. `None` disables the disk tier (and its fault sites).
    pub cache_root: Option<PathBuf>,
    /// Reintroduce a guarded bug for this run.
    pub bug: Option<BugSwitch>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            clients: 4,
            requests_per_client: 12,
            distinct_seeds: 3,
            queue_capacity: 16,
            worker_threads: 2,
            job_timeout: Duration::from_secs(5),
            cache_root: Some(
                std::env::temp_dir().join(format!("nemfpga-chaos-{}", std::process::id())),
            ),
            bug: None,
        }
    }
}

/// What one run did and every invariant it broke (empty = survived).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The armed plan's name.
    pub plan: String,
    /// Schedule seed.
    pub seed: u64,
    /// Requests issued across all clients.
    pub requests: usize,
    /// Responses per HTTP status.
    pub responses_by_status: BTreeMap<u16, usize>,
    /// Executor invocations per job key.
    pub computes_per_key: BTreeMap<String, u64>,
    /// Invariant violations (empty means the stack survived the storm).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Total executor invocations.
    pub fn computes(&self) -> u64 {
        self.computes_per_key.values().sum()
    }

    /// One summary line for driver output.
    pub fn summary(&self) -> String {
        let statuses: Vec<String> =
            self.responses_by_status.iter().map(|(s, n)| format!("{n}×{s}")).collect();
        format!(
            "seed {:>3}  {:>3} requests [{}]  {} computes / {} keys  {}",
            self.seed,
            self.requests,
            statuses.join(" "),
            self.computes(),
            self.computes_per_key.len(),
            if self.violations.is_empty() {
                "OK".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// The deterministic output the chaos executor produces for a request —
/// the reference for every byte-identity check.
pub fn expected_output(request: &ExperimentRequest) -> String {
    format!(
        "chaos experiment {}\nscale {:.6}\nbenchmarks {}\nseed {}\nend\n",
        request.experiment.name(),
        request.scale,
        request.benchmarks,
        request.seed
    )
}

/// The plan the `--with-bug skip-double-check` demonstration arms: a
/// deterministic widening of the first-cache-miss → table-lock race.
/// Every 2nd submission sleeps in the window while the executor runs a
/// few ms, so with the double-check disabled the sleeper reliably
/// recomputes a result that was published while it slept.
pub fn double_check_race_plan() -> FaultPlan {
    FaultPlan::named("double-check-race")
        .with_rule("scheduler.pre_table_lock", FireRule::EveryNth(2), FaultSpec::DelayMillis(30))
        .with_rule("scheduler.execute", FireRule::Always, FaultSpec::DelayMillis(3))
}

enum Action {
    /// A `POST /v1/jobs`; `expect_valid` records whether the body passes
    /// validation (driving the legal-status check).
    Post {
        body: Value,
        request: Option<ExperimentRequest>,
    },
    GetJob(u64),
    GetResult(String),
    GetMetrics,
    Healthz,
}

fn random_request(rng: &mut ChaCha8Rng, distinct_seeds: u64) -> ExperimentRequest {
    let kinds = [ExperimentKind::Fig4, ExperimentKind::Table1, ExperimentKind::Fig6];
    let mut request = ExperimentRequest::new(*kinds.choose(rng).expect("non-empty"));
    request.seed = rng.gen_range(0..distinct_seeds.max(1));
    request
}

fn request_body(request: &ExperimentRequest, wait: bool) -> Value {
    Value::obj(vec![
        ("experiment", Value::Str(request.experiment.name().to_owned())),
        ("seed", Value::U64(request.seed)),
        ("wait", Value::Bool(wait)),
    ])
}

fn random_action(rng: &mut ChaCha8Rng, cfg: &ChaosConfig) -> Action {
    let roll = rng.gen_range(0u32..1000);
    if roll < 650 {
        let request = random_request(rng, cfg.distinct_seeds);
        let body = request_body(&request, rng.gen_bool(0.7));
        Action::Post { body, request: Some(request) }
    } else if roll < 750 {
        // Invalid submissions: each fails validation or decoding, so the
        // server must answer 400 and count nothing as submitted.
        let body = match rng.gen_range(0u32..3) {
            0 => Value::obj(vec![
                ("experiment", Value::Str("fig4".to_owned())),
                ("scale", Value::F64(2.0)),
            ]),
            1 => Value::obj(vec![
                ("experiment", Value::Str("fig4".to_owned())),
                ("benchmarks", Value::U64(0)),
            ]),
            _ => Value::obj(vec![("experiment", Value::Str("no-such-experiment".to_owned()))]),
        };
        Action::Post { body, request: None }
    } else if roll < 820 {
        Action::GetJob(rng.gen_range(1u64..60))
    } else if roll < 890 {
        let request = random_request(rng, cfg.distinct_seeds);
        let key = job_key(&request).expect("valid request has a key");
        Action::GetResult(key.as_hex().to_owned())
    } else if roll < 950 {
        Action::GetMetrics
    } else {
        Action::Healthz
    }
}

struct Observation {
    /// What was asked.
    action: Action,
    /// What came back (or the transport failure).
    outcome: Result<ClientResponse, String>,
}

/// Runs one chaos experiment. See the module docs for the invariants.
pub fn run_chaos(cfg: &ChaosConfig, plan: &FaultPlan) -> ChaosReport {
    let scope = FaultScope::begin();
    scope.arm_plan(plan);
    if let Some(bug) = cfg.bug {
        scope.arm_trigger(bug.site());
    }

    let computes: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let counter = Arc::clone(&computes);
    let executor: nemfpga_service::Executor = Arc::new(move |req: &ExperimentRequest| {
        let key = job_key(req).map_err(|e| e.to_string())?;
        *counter
            .lock()
            .expect("compute counter poisoned")
            .entry(key.as_hex().to_owned())
            .or_insert(0) += 1;
        Ok(expected_output(req))
    });

    let cache_dir = cfg.cache_root.as_ref().map(|root| root.join(format!("plan-{}", cfg.seed)));
    if let Some(dir) = &cache_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    let service = Service::start(
        &ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            parallel: ParallelConfig::with_threads(cfg.worker_threads.max(1)),
            queue_capacity: cfg.queue_capacity,
            job_timeout: cfg.job_timeout,
            cache_capacity: 64,
            cache_dir: cache_dir.clone(),
            journal_path: None,
            cluster: None,
            qos: Default::default(),
            // Default hardening: quarantine + watchdog armed. Plans that
            // panic `scheduler.execute` repeatedly on one key drive real
            // quarantines mid-storm, and the invariants below must hold
            // through them.
            hardening: Default::default(),
            journal_compact_bytes: 0,
        },
        executor,
    )
    .expect("bind chaos service");
    let addr = service.addr();

    // Storm phase: seeded concurrent clients.
    let observations: Vec<Observation> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                s.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(cfg.seed, client as u64));
                    let mut seen: Vec<Observation> = Vec::new();
                    for _ in 0..cfg.requests_per_client {
                        let action = random_action(&mut rng, cfg);
                        let timeout = cfg.job_timeout + Duration::from_secs(30);
                        let outcome = match &action {
                            Action::Post { body, .. } => {
                                http_request(addr, "POST", "/v1/jobs", Some(body), timeout)
                            }
                            Action::GetJob(id) => {
                                http_request(addr, "GET", &format!("/v1/jobs/{id}"), None, timeout)
                            }
                            Action::GetResult(key) => http_request(
                                addr,
                                "GET",
                                &format!("/v1/results/{key}"),
                                None,
                                timeout,
                            ),
                            Action::GetMetrics => {
                                http_request(addr, "GET", "/v1/metrics", None, timeout)
                            }
                            Action::Healthz => {
                                http_request(addr, "GET", "/v1/healthz", None, timeout)
                            }
                        };
                        seen.push(Observation { action, outcome });
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("chaos client panicked")).collect()
    });

    let mut violations: Vec<String> = Vec::new();
    let mut responses_by_status: BTreeMap<u16, usize> = BTreeMap::new();

    // Drain phase: every job named in a response must reach a terminal
    // state. wait_for blocks on the scheduler's condvar — no polling.
    let drain_budget = cfg.job_timeout + Duration::from_secs(30);
    let mut job_ids: Vec<u64> = Vec::new();
    for obs in &observations {
        if let (Action::Post { request: Some(_), .. }, Ok(resp)) = (&obs.action, &obs.outcome) {
            if let Some(id) = resp.body.get("job").and_then(Value::as_u64) {
                job_ids.push(id);
            }
        }
    }
    job_ids.sort_unstable();
    job_ids.dedup();
    for &id in &job_ids {
        // None = the record was evicted from the finished ring, which is
        // itself terminal; a live non-terminal record is a wedge.
        if let Some(status) = service.scheduler().wait_for(id, drain_budget) {
            if !status.state.is_terminal() {
                violations
                    .push(format!("job {id} still {:?} after the drain budget", status.state));
            }
        }
    }

    // Invariant checks.
    let mut by_job: HashMap<u64, Vec<(String, Option<String>)>> = HashMap::new();
    let mut coalesced_responses = 0u64;
    let mut accepted_posts = 0u64;
    let mut rejected_posts = 0u64;
    for obs in &observations {
        let resp = match &obs.outcome {
            Ok(resp) => resp,
            Err(e) => {
                violations.push(format!("transport failure: {e}"));
                continue;
            }
        };
        *responses_by_status.entry(resp.status).or_insert(0) += 1;
        let legal: &[u16] = match &obs.action {
            Action::Post { request: Some(_), .. } => &[200, 202, 429],
            Action::Post { request: None, .. } => &[400],
            Action::GetJob(_) => &[200, 404],
            // 503: the key was quarantined mid-storm; the structured
            // `quarantined` error replaces an indistinguishable 404.
            Action::GetResult(_) => &[200, 404, 503],
            Action::GetMetrics | Action::Healthz => &[200],
        };
        if !legal.contains(&resp.status) {
            violations.push(format!("illegal status {} for {}", resp.status, obs.describe()));
        }
        match &obs.action {
            Action::Post { request: Some(request), .. } => {
                match resp.status {
                    200 | 202 => accepted_posts += 1,
                    429 => {
                        accepted_posts += 1;
                        rejected_posts += 1;
                    }
                    _ => {}
                }
                if resp.body.get("coalesced").and_then(Value::as_bool) == Some(true) {
                    coalesced_responses += 1;
                }
                let state = resp.body.get("state").and_then(Value::as_str);
                let output = resp.body.get("output").and_then(Value::as_str).map(str::to_owned);
                if state == Some("done") {
                    match &output {
                        None => violations
                            .push(format!("done response without output: {}", obs.describe())),
                        Some(out) if *out != expected_output(request) => violations.push(format!(
                            "served bytes diverge from the executor's for {}",
                            obs.describe()
                        )),
                        Some(_) => {}
                    }
                }
                if let (Some(id), Some(state)) =
                    (resp.body.get("job").and_then(Value::as_u64), state)
                {
                    if matches!(state, "done" | "failed" | "timed_out" | "quarantined") {
                        by_job.entry(id).or_default().push((state.to_owned(), output));
                    }
                }
            }
            Action::GetResult(key) if resp.status == 200 => {
                let served = resp.body.get("output").and_then(Value::as_str);
                let expected = expected_for_key(key, cfg);
                if served.map(str::to_owned) != expected {
                    violations.push(format!("/v1/results/{key} served non-canonical bytes"));
                }
            }
            _ => {}
        }
    }

    // 4. Coalescing coherence: one terminal outcome per job id.
    for (id, outcomes) in &by_job {
        let first = &outcomes[0];
        if outcomes.iter().any(|o| o != first) {
            violations.push(format!("job {id} reported conflicting terminal outcomes"));
        }
    }

    // 3. No wedged state at quiescence.
    let inflight = service.scheduler().inflight_len();
    if inflight != 0 {
        violations.push(format!("{inflight} in-flight entries wedged after drain"));
    }
    let queued = service.scheduler().queue_depth();
    if queued != 0 {
        violations.push(format!("{queued} jobs still queued after drain"));
    }

    // 5. Metrics honesty (read before shutdown). The typed handles and
    // the `/v1/metrics` exporters share one registry, so reconciling
    // against the handles reconciles the wire too.
    let m = service.metrics();
    let submitted = m.jobs_submitted.get();
    let misses = m.cache_misses.get();
    let hits = m.cache_hits();
    let coalesced = m.coalesced.get();
    let quarantine_hits = m.quarantine_hits.get();
    let settled = m.jobs_completed.get()
        + m.jobs_failed.get()
        + m.jobs_timed_out.get()
        + m.jobs_rejected.get()
        + m.jobs_quarantined.get();
    if submitted != accepted_posts {
        violations.push(format!(
            "jobs_submitted = {submitted} but clients saw {accepted_posts} accepted posts"
        ));
    }
    // A quarantine-pinned submission is none of hit/coalesce/miss: it is
    // answered from the pin, and counts in `quarantine_hits`.
    if submitted != hits + coalesced + misses + quarantine_hits {
        violations.push(format!(
            "submission ledger leaks: {submitted} submitted != {hits} hits + {coalesced} coalesced + {misses} misses + {quarantine_hits} quarantine hits"
        ));
    }
    // A miss that ends pinned settles as `jobs_quarantined`, not failed.
    if misses != settled {
        violations.push(format!(
            "miss ledger leaks: {misses} misses != {settled} completed+failed+timed_out+rejected+quarantined"
        ));
    }
    if m.jobs_rejected.get() != rejected_posts {
        violations.push(format!(
            "jobs_rejected = {} but clients saw {rejected_posts} 429s",
            m.jobs_rejected.get()
        ));
    }
    if coalesced != coalesced_responses {
        violations.push(format!(
            "coalesced = {coalesced} but clients saw {coalesced_responses} coalesced responses"
        ));
    }

    // 6. Single compute per key, when the plan permits no recomputation.
    let computes_per_key: BTreeMap<String, u64> =
        computes.lock().expect("compute counter poisoned").clone().into_iter().collect();
    if !plan.allows_recompute() && cfg.bug != Some(BugSwitch::LeakInflight) {
        for (key, n) in &computes_per_key {
            if *n > 1 {
                violations.push(format!(
                    "key {}… computed {n} times under a plan that permits one",
                    &key[..12.min(key.len())]
                ));
            }
        }
    }

    service.shutdown();
    if let Some(dir) = &cache_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    drop(scope);

    ChaosReport {
        plan: plan.name.clone(),
        seed: cfg.seed,
        requests: cfg.clients * cfg.requests_per_client,
        responses_by_status,
        computes_per_key,
        violations,
    }
}

fn expected_for_key(key_hex: &str, cfg: &ChaosConfig) -> Option<String> {
    // Reconstruct the request space the clients draw from and find the
    // one hashing to this key (the space is tiny by construction).
    for kind in [ExperimentKind::Fig4, ExperimentKind::Table1, ExperimentKind::Fig6] {
        for seed in 0..cfg.distinct_seeds.max(1) {
            let mut request = ExperimentRequest::new(kind);
            request.seed = seed;
            if let Ok(key) = job_key(&request) {
                if key.as_hex() == key_hex {
                    return Some(expected_output(&request));
                }
            }
        }
    }
    None
}

impl Observation {
    fn describe(&self) -> String {
        match &self.action {
            Action::Post { request: Some(r), .. } => {
                format!("POST /v1/jobs ({} seed {})", r.experiment.name(), r.seed)
            }
            Action::Post { request: None, .. } => "POST /v1/jobs (invalid)".to_owned(),
            Action::GetJob(id) => format!("GET /v1/jobs/{id}"),
            Action::GetResult(key) => format!("GET /v1/results/{}…", &key[..12.min(key.len())]),
            Action::GetMetrics => "GET /v1/metrics".to_owned(),
            Action::Healthz => "GET /v1/healthz".to_owned(),
        }
    }
}
