//! The `FaultPlan` DSL: seeded, replayable fault schedules.
//!
//! A plan is data — a list of [`FaultRule`]s, each naming a fault point
//! (see `nemfpga_runtime::faults`), a firing condition over the site's
//! hit ordinal, and the fault to inject. Plans print themselves
//! ([`FaultPlan::describe`]) so a CI failure is replayable from its log,
//! and [`FaultPlan::randomized`] derives a whole plan from one seed so a
//! chaos sweep is just a seed range.
//!
//! Arming mutates a process-global registry, so arming is guarded:
//! [`FaultScope`] holds a global lock for its lifetime and disarms
//! everything on drop. Tests in one binary that touch fault points are
//! thereby serialized instead of cross-talking.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use nemfpga_runtime::faults::{self, FaultAction};
use nemfpga_runtime::mix_seed;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::sync::Probe;

/// The injectable faults, by intent (each lowers to a
/// [`FaultAction`]; sites interpret actions they understand and ignore
/// the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Fail a disk operation (`cache.read_disk` / `cache.write_disk`).
    IoError,
    /// Flip a byte in the bytes the operation handles.
    CorruptBytes,
    /// Truncate the bytes the operation handles (torn write).
    ShortRead,
    /// Sleep this many milliseconds at the site.
    DelayMillis(u64),
    /// Panic at the site.
    Panic,
    /// Make the executor return an error (`scheduler.execute`).
    ExecError,
    /// Pull a deadline earlier by this many ms (`scheduler.deadline`).
    SkewMillis(u64),
    /// Generic "take the guarded branch" switch (`bug.*` sites).
    Trigger,
}

impl FaultSpec {
    /// Lowers the spec to the runtime-level action.
    pub fn action(self) -> FaultAction {
        match self {
            Self::IoError => FaultAction::Err("injected i/o error".to_owned()),
            Self::CorruptBytes => FaultAction::Corrupt,
            Self::ShortRead => FaultAction::ShortRead,
            Self::DelayMillis(ms) => FaultAction::Delay(Duration::from_millis(ms)),
            Self::Panic => FaultAction::Panic("injected panic".to_owned()),
            Self::ExecError => FaultAction::Err("injected executor error".to_owned()),
            Self::SkewMillis(ms) => FaultAction::SkewMillis(ms),
            Self::Trigger => FaultAction::Trigger,
        }
    }
}

/// When a rule fires, as a predicate over the site's 1-based hit
/// ordinal. Ordinal-based conditions make schedules independent of
/// wall-clock time, so replays see the same faults in the same places.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireRule {
    /// Every hit.
    Always,
    /// Exactly the `n`-th hit.
    Nth(u64),
    /// The first `n` hits.
    FirstN(u64),
    /// Hits `n, 2n, 3n, …`.
    EveryNth(u64),
    /// Every hit strictly after the `n`-th — "the disk dies at ordinal
    /// `n` and stays dead", the crash-freeze shape restart scenarios
    /// use. Not in the randomized menu: a frozen site makes most plans'
    /// invariants vacuous.
    AfterN(u64),
    /// Deterministically pseudo-random: fires when
    /// `mix_seed(salt, ordinal) % 1000 < permille`.
    Permille { permille: u16, salt: u64 },
}

impl FireRule {
    /// Does the rule fire on this hit?
    pub fn fires(&self, ordinal: u64) -> bool {
        match *self {
            Self::Always => true,
            Self::Nth(n) => ordinal == n,
            Self::FirstN(n) => ordinal <= n,
            Self::EveryNth(n) => n > 0 && ordinal.is_multiple_of(n),
            Self::AfterN(n) => ordinal > n,
            Self::Permille { permille, salt } => {
                mix_seed(salt, ordinal) % 1000 < u64::from(permille)
            }
        }
    }
}

/// One armed behavior: at `site`, when `when` fires, inject `fault`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Fault-point name (e.g. `"cache.read_disk"`).
    pub site: String,
    /// Firing condition over the site's hit ordinal.
    pub when: FireRule,
    /// The fault to inject.
    pub fault: FaultSpec,
}

/// A seeded, self-describing schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Human-readable name (`randomized(seed)` encodes the seed here).
    pub name: String,
    /// Rules; several rules may target one site (first match wins).
    pub rules: Vec<FaultRule>,
}

/// The sites [`FaultPlan::randomized`] draws from, with the fault menu
/// each supports. `bug.*` switches and `Panic` on `workers.job` are
/// deliberately excluded: the former are for guard-verification runs,
/// the latter loses jobs by design (a worker dying *between* dequeue and
/// the scheduler's own panic guard strands the job record), which is a
/// pool-level property tested directly, not a serving invariant.
const RANDOM_MENU: &[(&str, &[FaultSpec])] = &[
    ("cache.read_disk", &[FaultSpec::IoError, FaultSpec::CorruptBytes, FaultSpec::ShortRead]),
    ("cache.write_disk", &[FaultSpec::IoError, FaultSpec::CorruptBytes, FaultSpec::ShortRead]),
    // Architecture graph snapshots are a derived cache: every fault
    // here degrades to an in-memory rebuild, never a changed result,
    // so the site does not widen `allows_recompute`.
    ("graph.store", &[FaultSpec::IoError, FaultSpec::CorruptBytes, FaultSpec::ShortRead]),
    ("scheduler.execute", &[FaultSpec::DelayMillis(0), FaultSpec::Panic, FaultSpec::ExecError]),
    ("scheduler.pre_table_lock", &[FaultSpec::DelayMillis(0)]),
    ("scheduler.deadline", &[FaultSpec::SkewMillis(0)]),
    ("workers.job", &[FaultSpec::DelayMillis(0)]),
];

impl FaultPlan {
    /// An empty plan (useful as a no-fault baseline).
    pub fn named(name: &str) -> Self {
        Self { name: name.to_owned(), rules: Vec::new() }
    }

    /// Builder: appends a rule.
    #[must_use]
    pub fn with_rule(mut self, site: &str, when: FireRule, fault: FaultSpec) -> Self {
        self.rules.push(FaultRule { site: site.to_owned(), when, fault });
        self
    }

    /// Derives a whole plan from one seed: 1–4 rules over the safe
    /// site/fault menu, with seeded firing conditions and magnitudes.
    /// Same seed → same plan, always.
    pub fn randomized(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(seed, 0xC4A05));
        let mut plan = Self::named(&format!("randomized-{seed}"));
        let n_rules = rng.gen_range(1usize..5);
        for rule_idx in 0..n_rules {
            let &(site, menu) = RANDOM_MENU.choose(&mut rng).expect("menu is non-empty");
            let fault = match *menu.choose(&mut rng).expect("site menu is non-empty") {
                FaultSpec::DelayMillis(_) => FaultSpec::DelayMillis(rng.gen_range(1u64..40)),
                // Sometimes beyond the job timeout, to force queue-side
                // timeouts; sometimes harmless.
                FaultSpec::SkewMillis(_) => FaultSpec::SkewMillis(rng.gen_range(0u64..5_000)),
                other => other,
            };
            let when = match rng.gen_range(0u32..4) {
                0 => FireRule::Always,
                1 => FireRule::EveryNth(rng.gen_range(2u64..5)),
                2 => FireRule::FirstN(rng.gen_range(1u64..4)),
                _ => FireRule::Permille {
                    permille: rng.gen_range(100u16..700),
                    salt: mix_seed(seed, rule_idx as u64),
                },
            };
            plan.rules.push(FaultRule { site: site.to_owned(), when, fault });
        }
        plan
    }

    /// True when any rule targets `site`.
    pub fn targets(&self, site: &str) -> bool {
        self.rules.iter().any(|r| r.site == site)
    }

    /// Whether this plan legitimately allows a key to be computed more
    /// than once: cache faults turn hits into misses, executor
    /// panics/errors produce Failed jobs that don't cache, and deadline
    /// skew times jobs out before they produce output. A plan with none
    /// of these must see **at most one compute per key** — that is the
    /// coalescing + double-check guarantee the chaos suite enforces.
    pub fn allows_recompute(&self) -> bool {
        self.rules.iter().any(|r| {
            r.site.starts_with("cache.")
                || r.site == "scheduler.deadline"
                || (r.site == "scheduler.execute"
                    && matches!(r.fault, FaultSpec::Panic | FaultSpec::ExecError))
        })
    }

    /// One line per rule, replayable from a CI log.
    pub fn describe(&self) -> String {
        let mut out = format!("plan `{}`:", self.name);
        if self.rules.is_empty() {
            out.push_str(" (no faults)");
        }
        for r in &self.rules {
            out.push_str(&format!("\n  at {:<26} when {:?} inject {:?}", r.site, r.when, r.fault));
        }
        out
    }

    /// Arms the plan on the global registry and returns the guard that
    /// keeps it armed. Dropping the guard disarms everything.
    pub fn arm(&self) -> FaultScope {
        let scope = FaultScope::begin();
        scope.arm_plan(self);
        scope
    }
}

fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A test that panicked mid-scope poisons the lock; the Drop impl
    // already reset the registry, so recovery is safe.
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Exclusive ownership of the process-global fault registry.
///
/// All arming — plans, bug switches, probes — goes through a scope, so
/// concurrently running tests cannot observe each other's faults; they
/// queue on the scope lock instead.
pub struct FaultScope {
    _guard: MutexGuard<'static, ()>,
}

impl FaultScope {
    /// Acquires the registry (blocking other scopes) and clears it.
    pub fn begin() -> Self {
        let guard = registry_lock();
        faults::reset();
        Self { _guard: guard }
    }

    /// Installs every rule of `plan`. Rules targeting the same site are
    /// merged into one hook; the first rule whose condition fires wins.
    pub fn arm_plan(&self, plan: &FaultPlan) {
        let mut by_site: Vec<(String, Vec<(FireRule, FaultAction)>)> = Vec::new();
        for rule in &plan.rules {
            let lowered = (rule.when, rule.fault.action());
            match by_site.iter_mut().find(|(s, _)| *s == rule.site) {
                Some((_, actions)) => actions.push(lowered),
                None => by_site.push((rule.site.clone(), vec![lowered])),
            }
        }
        for (site, actions) in by_site {
            faults::install(
                &site,
                Arc::new(move |ordinal| {
                    actions
                        .iter()
                        .find(|(when, _)| when.fires(ordinal))
                        .map_or(FaultAction::None, |(_, action)| action.clone())
                }),
            );
        }
    }

    /// Arms `site` to fire [`FaultAction::Trigger`] on every hit — the
    /// shape every `bug.*` reintroduction switch expects.
    pub fn arm_trigger(&self, site: &str) {
        faults::install(site, Arc::new(|_| FaultAction::Trigger));
    }

    /// Installs a counting [`Probe`] on each of `sites` (sharing one
    /// counter), replacing any hook armed there. The probe injects
    /// nothing; it exists so tests can block on "these sites fired N
    /// times in total" instead of sleeping.
    pub fn probe(&self, sites: &[&str]) -> Probe {
        let probe = Probe::new();
        for site in sites {
            let p = probe.clone();
            faults::install(
                site,
                Arc::new(move |_| {
                    p.bump();
                    FaultAction::None
                }),
            );
        }
        probe
    }

    /// Times `site` fired while armed (plans, triggers, and probes all
    /// count).
    pub fn hits(&self, site: &str) -> u64 {
        faults::hits(site)
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        faults::reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_rules_are_deterministic_predicates() {
        assert!(FireRule::Always.fires(1) && FireRule::Always.fires(999));
        assert!(FireRule::Nth(3).fires(3) && !FireRule::Nth(3).fires(2));
        assert!(FireRule::FirstN(2).fires(2) && !FireRule::FirstN(2).fires(3));
        assert!(FireRule::EveryNth(2).fires(4) && !FireRule::EveryNth(2).fires(5));
        assert!(FireRule::AfterN(2).fires(3) && !FireRule::AfterN(2).fires(2));
        let p = FireRule::Permille { permille: 500, salt: 7 };
        let first: Vec<bool> = (1..100).map(|n| p.fires(n)).collect();
        let second: Vec<bool> = (1..100).map(|n| p.fires(n)).collect();
        assert_eq!(first, second, "permille firing must replay identically");
        assert!(first.iter().any(|&b| b) && !first.iter().all(|&b| b));
    }

    #[test]
    fn randomized_plans_replay_from_their_seed() {
        for seed in 0..32 {
            let a = FaultPlan::randomized(seed);
            let b = FaultPlan::randomized(seed);
            assert_eq!(a, b, "seed {seed} must regenerate the same plan");
            assert!(!a.rules.is_empty() && a.rules.len() <= 4);
        }
        assert_ne!(FaultPlan::randomized(1), FaultPlan::randomized(2));
    }

    #[test]
    fn armed_plan_drives_fault_points_and_disarms_on_drop() {
        let plan = FaultPlan::named("unit")
            .with_rule("test.plan_site", FireRule::Nth(2), FaultSpec::IoError)
            .with_rule("test.plan_site", FireRule::Nth(3), FaultSpec::CorruptBytes);
        {
            let _scope = plan.arm();
            assert!(faults::hit("test.plan_site").is_none());
            assert!(matches!(faults::hit("test.plan_site"), FaultAction::Err(_)));
            assert_eq!(faults::hit("test.plan_site"), FaultAction::Corrupt);
            assert!(faults::hit("test.plan_site").is_none());
        }
        assert!(faults::hit("test.plan_site").is_none(), "scope drop must disarm");
        assert_eq!(faults::hits("test.plan_site"), 0);
    }

    #[test]
    fn recompute_classification_matches_fault_semantics() {
        assert!(!FaultPlan::named("benign")
            .with_rule("scheduler.execute", FireRule::Always, FaultSpec::DelayMillis(5))
            .allows_recompute());
        assert!(FaultPlan::named("diskless")
            .with_rule("cache.read_disk", FireRule::Always, FaultSpec::IoError)
            .allows_recompute());
        assert!(FaultPlan::named("panics")
            .with_rule("scheduler.execute", FireRule::EveryNth(2), FaultSpec::Panic)
            .allows_recompute());
        assert!(FaultPlan::named("skewed")
            .with_rule("scheduler.deadline", FireRule::Always, FaultSpec::SkewMillis(9_999))
            .allows_recompute());
    }

    #[test]
    fn describe_names_every_rule() {
        let plan = FaultPlan::randomized(5);
        let text = plan.describe();
        for rule in &plan.rules {
            assert!(text.contains(&rule.site), "describe() must mention {}", rule.site);
        }
    }
}
