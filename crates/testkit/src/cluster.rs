//! The cluster chaos scenario: a 3-node in-process cluster under a
//! seeded kill + partition schedule.
//!
//! Three real [`Service`] instances (each with its own cache disk,
//! journal, and counting executor) form a rendezvous-sharded cluster. A
//! cluster-routing [`nemfpga_service::ServiceClient`] floods unique
//! keys in waves; between waves the driver kills one seeded node,
//! partitions another (severing its peer links in both directions), then
//! heals everything — rejoining the killed node on its original state
//! directories. Anti-entropy runs only when the driver calls
//! `sync_now`, so convergence points are deterministic and the
//! invariants are sharp:
//!
//! 1. **Zero lost jobs** — every accepted submission reaches `done`
//!    with the executor's exact bytes, through every fault.
//! 2. **≤ 1 compute per key cluster-wide** — faults land at wave
//!    boundaries after convergence, so nothing ever recomputes; the
//!    per-node executor counters prove it across kill, partition, and
//!    rejoin.
//! 3. **Convergence after heal** — all three nodes advertise identical
//!    digests once links are restored and sync rounds run.
//! 4. **Byte identity everywhere** — after heal, every node serves
//!    every key from `/v1/results/:key` with identical canonical bytes.

use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nemfpga::request::{ExperimentKind, ExperimentRequest};
use nemfpga_runtime::ParallelConfig;
use nemfpga_service::json::Value;
use nemfpga_service::{
    http_request, job_key, ClusterSettings, JobState, Service, ServiceClient, ServiceConfig,
};

use crate::chaos::expected_output;

/// One cluster run's shape.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Drives which node dies and which is partitioned.
    pub seed: u64,
    /// Unique keys submitted per wave (three waves).
    pub keys_per_wave: usize,
    /// Worker threads per node.
    pub worker_threads: usize,
    /// Per-job deadline.
    pub job_timeout: Duration,
    /// Root for per-node cache/journal state; each run uses
    /// `<root>/cluster-<seed>` and removes it afterwards.
    pub state_root: PathBuf,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            keys_per_wave: 6,
            worker_threads: 2,
            job_timeout: Duration::from_secs(5),
            state_root: std::env::temp_dir()
                .join(format!("nemfpga-cluster-{}", std::process::id())),
        }
    }
}

/// What one cluster run did and every invariant it broke.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Schedule seed.
    pub seed: u64,
    /// Unique keys submitted across all waves.
    pub keys: usize,
    /// Executor invocations per key, summed across all nodes.
    pub computes_per_key: BTreeMap<String, u64>,
    /// Invariant violations (empty means the cluster survived).
    pub violations: Vec<String>,
}

impl ClusterReport {
    /// Total executor invocations cluster-wide.
    pub fn computes(&self) -> u64 {
        self.computes_per_key.values().sum()
    }

    /// One summary line for driver output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>3}  {:>3} keys  {} computes  {}",
            self.seed,
            self.keys,
            self.computes(),
            if self.violations.is_empty() {
                "OK".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// Per-key executor-invocation counters, shared across a node's
/// incarnations so a rejoin cannot reset the compute ledger.
type ComputeLedger = Arc<Mutex<HashMap<String, u64>>>;

struct Node {
    label: String,
    addr: SocketAddr,
    service: Option<Service>,
    computes: ComputeLedger,
    cache_dir: PathBuf,
    journal_path: PathBuf,
}

/// Reserves an ephemeral port by binding and immediately releasing it —
/// cluster labels must be known before `Service::start` binds, and a
/// label must equal the address peers dial.
fn reserve_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve ephemeral port");
    listener.local_addr().expect("reserved port has an address")
}

fn counting_executor(ledger: &ComputeLedger) -> nemfpga_service::Executor {
    let ledger = Arc::clone(ledger);
    Arc::new(move |request: &ExperimentRequest| {
        let key = job_key(request).map_err(|e| e.to_string())?;
        *ledger
            .lock()
            .expect("compute ledger poisoned")
            .entry(key.as_hex().to_owned())
            .or_insert(0) += 1;
        Ok(expected_output(request))
    })
}

fn start_node(node: &mut Node, peers: &[String], cfg: &ClusterConfig, node_seed: u64) {
    let mut settings = ClusterSettings::new(node.label.clone(), peers.to_vec());
    // The driver owns convergence via sync_now; park the background
    // thread far beyond the run so rounds never race the schedule.
    settings.sync_interval = Duration::from_secs(3600);
    settings.seed = node_seed;
    settings.max_pull_per_round = 1024;
    let config = ServiceConfig {
        addr: node.addr.to_string(),
        parallel: ParallelConfig::with_threads(cfg.worker_threads.max(1)),
        queue_capacity: 64,
        job_timeout: cfg.job_timeout,
        cache_capacity: 256,
        cache_dir: Some(node.cache_dir.clone()),
        journal_path: Some(node.journal_path.clone()),
        cluster: Some(settings),
        qos: Default::default(),
        hardening: Default::default(),
        journal_compact_bytes: 0,
    };
    let service =
        Service::start(&config, counting_executor(&node.computes)).expect("bind cluster node");
    node.service = Some(service);
}

/// The `i`-th unique request of the run (tiny keyspace, distinct keys).
fn request_for(i: usize) -> ExperimentRequest {
    let kinds = [ExperimentKind::Fig4, ExperimentKind::Table1, ExperimentKind::Fig6];
    let mut request = ExperimentRequest::new(kinds[i % kinds.len()]);
    request.seed = i as u64;
    request
}

/// Builds a cluster-routing client over the given labels.
fn cluster_client(labels: &[String], cfg: &ClusterConfig) -> ServiceClient {
    ServiceClient::new(labels[0].as_str())
        .expect("resolve node label")
        .with_timeout(cfg.job_timeout + Duration::from_secs(30))
        .with_peers(labels)
        .expect("arm cluster routing")
}

/// Submits `requests` through the cluster client, recording violations
/// for anything short of `done` + exact bytes.
fn flood(
    client: &ServiceClient,
    requests: &[ExperimentRequest],
    wave: &str,
    violations: &mut Vec<String>,
) {
    for request in requests {
        match client.submit(request, true) {
            Ok(job) => {
                if job.state != JobState::Done {
                    violations.push(format!(
                        "{wave}: job for seed {} ended {:?}, not done",
                        request.seed, job.state
                    ));
                } else if job.output.as_deref() != Some(expected_output(request).as_str()) {
                    violations.push(format!(
                        "{wave}: served bytes diverge from the executor's for seed {}",
                        request.seed
                    ));
                }
            }
            Err(error) => {
                violations
                    .push(format!("{wave}: submission lost for seed {}: {error}", request.seed));
            }
        }
    }
}

/// Drives every live node through `rounds` anti-entropy rounds.
fn converge(nodes: &[Node], rounds: usize) {
    for _ in 0..rounds {
        for node in nodes {
            if let Some(service) = &node.service {
                let cluster = service.cluster().expect("node is clustered");
                cluster.sync_now();
            }
        }
    }
}

/// Fetches a node's digest entries (`/v1/cluster/digest` minus the
/// node-specific `node` field).
fn digest_entries(node: &Node, cfg: &ClusterConfig) -> Result<Value, String> {
    let resp = http_request(
        node.addr,
        "GET",
        "/v1/cluster/digest",
        None,
        cfg.job_timeout + Duration::from_secs(30),
    )?;
    if resp.status != 200 {
        return Err(format!("digest answered {}", resp.status));
    }
    resp.body.get("entries").cloned().ok_or_else(|| "digest body missing `entries`".to_owned())
}

/// Asserts all live nodes advertise byte-identical digests.
fn check_converged(nodes: &[Node], cfg: &ClusterConfig, stage: &str, violations: &mut Vec<String>) {
    let live: Vec<&Node> = nodes.iter().filter(|n| n.service.is_some()).collect();
    let mut digests = Vec::with_capacity(live.len());
    for node in &live {
        match digest_entries(node, cfg) {
            Ok(entries) => digests.push((node.label.clone(), entries)),
            Err(error) => violations.push(format!("{stage}: digest from {}: {error}", node.label)),
        }
    }
    for pair in digests.windows(2) {
        if pair[0].1 != pair[1].1 {
            violations
                .push(format!("{stage}: digests diverge between {} and {}", pair[0].0, pair[1].0));
        }
    }
}

/// Runs one cluster chaos experiment. See the module docs for the
/// schedule and invariants.
pub fn run_cluster(cfg: &ClusterConfig) -> ClusterReport {
    let state = cfg.state_root.join(format!("cluster-{}", cfg.seed));
    let _ = std::fs::remove_dir_all(&state);

    let mut nodes: Vec<Node> = (0..3)
        .map(|i| {
            let addr = reserve_addr();
            Node {
                label: addr.to_string(),
                addr,
                service: None,
                computes: Arc::new(Mutex::new(HashMap::new())),
                cache_dir: state.join(format!("node-{i}/cache")),
                journal_path: state.join(format!("node-{i}/journal.log")),
            }
        })
        .collect();
    let labels: Vec<String> = nodes.iter().map(|n| n.label.clone()).collect();
    for (i, node) in nodes.iter_mut().enumerate() {
        start_node(node, &labels, cfg, cfg.seed.wrapping_add(i as u64));
    }

    let mut violations: Vec<String> = Vec::new();
    let client = cluster_client(&labels, cfg);
    let requests: Vec<ExperimentRequest> = (0..cfg.keys_per_wave * 3).map(request_for).collect();
    let (wave1, rest) = requests.split_at(cfg.keys_per_wave);
    let (wave2, wave3) = rest.split_at(cfg.keys_per_wave);

    // ── Wave 1: all nodes alive; replicate and verify convergence. ──
    flood(&client, wave1, "wave 1", &mut violations);
    converge(&nodes, 2);
    check_converged(&nodes, cfg, "after wave 1", &mut violations);

    // ── Kill one seeded node, then flood fresh keys through failover. ──
    let killed = (cfg.seed % 3) as usize;
    let partitioned = ((cfg.seed + 1) % 3) as usize;
    if let Some(service) = nodes[killed].service.take() {
        service.shutdown();
    }
    flood(&client, wave2, "wave 2 (one node down)", &mut violations);
    // Both survivors converge before the next fault lands, keeping the
    // single-compute invariant strict across the partition.
    converge(&nodes, 2);
    check_converged(&nodes, cfg, "after wave 2", &mut violations);

    // ── Partition the next node: sever links in both directions. ──
    for (i, node) in nodes.iter().enumerate() {
        let Some(service) = &node.service else { continue };
        let cluster = service.cluster().expect("node is clustered");
        if i == partitioned {
            for (j, peer) in labels.iter().enumerate() {
                if j != i {
                    cluster.set_peer_enabled(peer, false);
                }
            }
        } else {
            cluster.set_peer_enabled(&labels[partitioned], false);
        }
    }
    flood(&client, wave3, "wave 3 (partitioned)", &mut violations);

    // ── Heal: restore links, rejoin the killed node on its old state. ──
    for node in &nodes {
        let Some(service) = &node.service else { continue };
        let cluster = service.cluster().expect("node is clustered");
        for peer in &labels {
            if peer != &node.label {
                cluster.set_peer_enabled(peer, true);
            }
        }
    }
    // The rejoining node binds a fresh port (its old one may linger in
    // TIME_WAIT); everyone — including the client — learns the new list.
    let rejoin_addr = reserve_addr();
    nodes[killed].addr = rejoin_addr;
    nodes[killed].label = rejoin_addr.to_string();
    let labels: Vec<String> = nodes.iter().map(|n| n.label.clone()).collect();
    {
        let (node, seed) = (&mut nodes[killed], cfg.seed.wrapping_add(killed as u64));
        start_node(node, &labels, cfg, seed);
    }
    for node in &nodes {
        if let Some(service) = &node.service {
            service.cluster().expect("node is clustered").set_peers(&labels);
        }
    }
    converge(&nodes, 3);
    check_converged(&nodes, cfg, "after heal", &mut violations);

    // ── Phase 3: every key answers everywhere, with zero new computes. ──
    let computes_before = total_computes(&nodes);
    let healed_client = cluster_client(&labels, cfg);
    flood(&healed_client, &requests, "post-heal resubmit", &mut violations);
    let computes_after = total_computes(&nodes);
    if computes_after != computes_before {
        violations.push(format!(
            "post-heal resubmits recomputed: {} executor calls grew to {}",
            sum(&computes_before),
            sum(&computes_after),
        ));
    }
    for request in &requests {
        let key = job_key(request).expect("valid request has a key");
        let expected = expected_output(request);
        for node in &nodes {
            let resp = http_request(
                node.addr,
                "GET",
                &format!("/v1/results/{}", key.as_hex()),
                None,
                cfg.job_timeout + Duration::from_secs(30),
            );
            match resp {
                Ok(resp) if resp.status == 200 => {
                    if resp.body.get("output").and_then(Value::as_str) != Some(expected.as_str()) {
                        violations.push(format!(
                            "{} serves non-canonical bytes for seed {}",
                            node.label, request.seed
                        ));
                    }
                }
                Ok(resp) => violations.push(format!(
                    "{} answered {} for converged key (seed {})",
                    node.label, resp.status, request.seed
                )),
                Err(error) => {
                    violations.push(format!("{}: result fetch failed: {error}", node.label))
                }
            }
        }
    }

    // ── Single compute per key, cluster-wide, across all incarnations. ──
    let computes_per_key: BTreeMap<String, u64> =
        computes_after.iter().map(|(key, n)| (key.clone(), *n)).collect();
    for (key, n) in &computes_per_key {
        if *n > 1 {
            violations.push(format!(
                "key {}… computed {n} times cluster-wide",
                &key[..12.min(key.len())]
            ));
        }
    }

    for node in &mut nodes {
        if let Some(service) = node.service.take() {
            service.shutdown();
        }
    }
    let _ = std::fs::remove_dir_all(&state);

    ClusterReport { seed: cfg.seed, keys: requests.len(), computes_per_key, violations }
}

fn total_computes(nodes: &[Node]) -> BTreeMap<String, u64> {
    let mut total: BTreeMap<String, u64> = BTreeMap::new();
    for node in nodes {
        for (key, n) in node.computes.lock().expect("compute ledger poisoned").iter() {
            *total.entry(key.clone()).or_insert(0) += n;
        }
    }
    total
}

fn sum(computes: &BTreeMap<String, u64>) -> u64 {
    computes.values().sum()
}
