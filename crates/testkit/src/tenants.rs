//! The multi-tenant chaos scenario: a seeded tenant flood under a fault
//! plan, with QoS-specific invariants.
//!
//! Where [`crate::chaos`] storms one anonymous population at the
//! serving stack, this scenario partitions the storm into named tenants
//! with distinct weights and disjoint request keyspaces, runs it
//! against a service with real quotas armed, and checks what must hold
//! for *any* interleaving and any fault schedule:
//!
//! 1. **Quota exactness** — the scheduler's own high-water marks never
//!    exceed `max_queued` / `max_inflight`, and every 429 the clients
//!    saw is matched by the per-tenant `rejected` counter.
//! 2. **No cross-tenant leakage** — each tenant's keyspace is disjoint
//!    by construction, every response echoes the submitting tenant, and
//!    every `done` output is byte-identical to the executor's output
//!    for that exact request. A result served across tenants would
//!    surface as a byte divergence or a tenant-echo mismatch.
//! 3. **Per-tenant ledger** — at quiescence, for every tenant:
//!    `submitted == rejected + cache_hits + coalesced + completed +
//!    errored`. Nothing double-billed, nothing unaccounted.
//! 4. **Protocol sanity and no wedged state**, as in the base scenario.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use nemfpga::request::{ExperimentKind, ExperimentRequest};
use nemfpga_runtime::{mix_seed, ParallelConfig};
use nemfpga_service::json::Value;
use nemfpga_service::{http_request, Lane, QosPolicy, Service, ServiceConfig, TenantStats};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::chaos::expected_output;
use crate::plan::{FaultPlan, FaultScope};

/// One multi-tenant chaos run's shape.
#[derive(Debug, Clone)]
pub struct TenantsConfig {
    /// Seed for the request schedule.
    pub seed: u64,
    /// Tenants and their fair-share weights.
    pub tenants: Vec<(String, u32)>,
    /// Concurrent client threads (each sticks to one tenant,
    /// round-robin over `tenants`).
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Distinct request seeds per tenant (disjoint keyspaces).
    pub distinct_seeds: u64,
    /// Per-tenant `max_queued` quota (0 = unlimited).
    pub max_queued: usize,
    /// Per-tenant `max_inflight` quota (0 = unlimited).
    pub max_inflight: usize,
    /// Scheduler queue bound.
    pub queue_capacity: usize,
    /// Worker threads.
    pub worker_threads: usize,
    /// Per-job deadline.
    pub job_timeout: Duration,
}

impl Default for TenantsConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            tenants: vec![("alpha".to_owned(), 3), ("beta".to_owned(), 2), ("gamma".to_owned(), 1)],
            clients: 6,
            requests_per_client: 10,
            distinct_seeds: 12,
            max_queued: 4,
            max_inflight: 2,
            queue_capacity: 64,
            worker_threads: 2,
            job_timeout: Duration::from_secs(5),
        }
    }
}

/// What one run did and every invariant it broke (empty = survived).
#[derive(Debug, Clone)]
pub struct TenantsReport {
    /// The armed plan's name.
    pub plan: String,
    /// Schedule seed.
    pub seed: u64,
    /// Requests issued across all clients.
    pub requests: usize,
    /// Responses per HTTP status.
    pub responses_by_status: BTreeMap<u16, usize>,
    /// The scheduler's per-tenant accounting at quiescence.
    pub stats: Vec<TenantStats>,
    /// Invariant violations (empty means the stack survived).
    pub violations: Vec<String>,
}

impl TenantsReport {
    /// One summary line for driver output.
    pub fn summary(&self) -> String {
        let statuses: Vec<String> =
            self.responses_by_status.iter().map(|(s, n)| format!("{n}×{s}")).collect();
        let shares: Vec<String> =
            self.stats.iter().map(|t| format!("{}:{}", t.tenant, t.dequeued)).collect();
        format!(
            "seed {:>3}  {:>3} requests [{}]  dequeues {{{}}}  {}",
            self.seed,
            self.requests,
            statuses.join(" "),
            shares.join(" "),
            if self.violations.is_empty() {
                "OK".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// A request in `tenant_index`'s disjoint keyspace: the seed band
/// `[index * 1000, index * 1000 + distinct_seeds)` is unique to the
/// tenant, so identical bytes can never legitimately serve two tenants.
fn tenant_request(
    rng: &mut ChaCha8Rng,
    tenant_index: usize,
    distinct_seeds: u64,
) -> ExperimentRequest {
    let mut request = ExperimentRequest::new(ExperimentKind::Fig4);
    request.seed = tenant_index as u64 * 1000 + rng.gen_range(0..distinct_seeds.max(1));
    request
}

struct Seen {
    tenant: String,
    request: ExperimentRequest,
    status: u16,
    body: Value,
    retry_after: Option<u64>,
}

/// Runs one multi-tenant chaos experiment under `plan`. See the module
/// docs for the invariants.
pub fn run_tenants(cfg: &TenantsConfig, plan: &FaultPlan) -> TenantsReport {
    let scope = FaultScope::begin();
    scope.arm_plan(plan);

    let executor: nemfpga_service::Executor = Arc::new(move |req: &ExperimentRequest| {
        // A few ms of service time so queues actually build under the
        // flood and the quota/fairness machinery gets exercised.
        std::thread::sleep(Duration::from_millis(3));
        Ok(expected_output(req))
    });

    let qos = QosPolicy {
        weights: cfg.tenants.clone(),
        max_queued: cfg.max_queued,
        max_inflight: cfg.max_inflight,
        ..QosPolicy::default()
    };
    let service = Service::start(
        &ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            parallel: ParallelConfig::with_threads(cfg.worker_threads.max(1)),
            queue_capacity: cfg.queue_capacity,
            job_timeout: cfg.job_timeout,
            cache_capacity: 64,
            cache_dir: None,
            journal_path: None,
            cluster: None,
            qos,
            hardening: Default::default(),
            journal_compact_bytes: 0,
        },
        executor,
    )
    .expect("bind tenants service");
    let addr = service.addr();

    // Storm phase: each client floods on behalf of one tenant.
    let observations: Vec<Result<Seen, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let tenants = &cfg.tenants;
                s.spawn(move || {
                    let tenant_index = client % tenants.len();
                    let tenant = tenants[tenant_index].0.clone();
                    let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(cfg.seed, client as u64));
                    let timeout = cfg.job_timeout + Duration::from_secs(30);
                    let mut seen = Vec::new();
                    for _ in 0..cfg.requests_per_client {
                        let request = tenant_request(&mut rng, tenant_index, cfg.distinct_seeds);
                        let lane = if rng.gen_bool(0.3) { Lane::Batch } else { Lane::Interactive };
                        let body = Value::obj(vec![
                            ("experiment", Value::Str(request.experiment.name().to_owned())),
                            ("seed", Value::U64(request.seed)),
                            // Mostly fire-and-forget so per-tenant
                            // queues actually build and quotas bite.
                            ("wait", Value::Bool(rng.gen_bool(0.3))),
                            ("tenant", Value::Str(tenant.clone())),
                            ("priority", Value::Str(lane.name().to_owned())),
                        ]);
                        let outcome = http_request(addr, "POST", "/v1/jobs", Some(&body), timeout)
                            .map(|resp| Seen {
                                tenant: tenant.clone(),
                                request,
                                status: resp.status,
                                body: resp.body,
                                retry_after: resp.retry_after,
                            });
                        seen.push(outcome);
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("tenant client panicked")).collect()
    });

    let mut violations: Vec<String> = Vec::new();
    let mut responses_by_status: BTreeMap<u16, usize> = BTreeMap::new();

    // Drain phase: every accepted job must reach a terminal state.
    let drain_budget = cfg.job_timeout + Duration::from_secs(30);
    let mut job_ids: Vec<u64> = observations
        .iter()
        .filter_map(|o| o.as_ref().ok())
        .filter_map(|seen| seen.body.get("job").and_then(Value::as_u64))
        .collect();
    job_ids.sort_unstable();
    job_ids.dedup();
    for &id in &job_ids {
        if let Some(status) = service.scheduler().wait_for(id, drain_budget) {
            if !status.state.is_terminal() {
                violations
                    .push(format!("job {id} still {:?} after the drain budget", status.state));
            }
        }
    }

    // Response checks: protocol sanity, tenant echo, byte identity.
    let mut rejected_429: BTreeMap<String, u64> = BTreeMap::new();
    for outcome in &observations {
        let seen = match outcome {
            Ok(seen) => seen,
            Err(e) => {
                violations.push(format!("transport failure: {e}"));
                continue;
            }
        };
        *responses_by_status.entry(seen.status).or_insert(0) += 1;
        match seen.status {
            200 | 202 => {
                let echoed = seen.body.get("tenant").and_then(Value::as_str);
                if echoed != Some(seen.tenant.as_str()) {
                    violations.push(format!(
                        "tenant `{}` submission echoed tenant {echoed:?}",
                        seen.tenant
                    ));
                }
                if seen.body.get("state").and_then(Value::as_str) == Some("done") {
                    let served = seen.body.get("output").and_then(Value::as_str);
                    if served != Some(expected_output(&seen.request).as_str()) {
                        violations.push(format!(
                            "cross-tenant leakage or corruption: tenant `{}` seed {} \
                             served non-canonical bytes",
                            seen.tenant, seen.request.seed
                        ));
                    }
                }
            }
            429 => {
                if seen.retry_after.is_none() {
                    violations.push("429 without a Retry-After header".to_owned());
                }
                *rejected_429.entry(seen.tenant.clone()).or_insert(0) += 1;
            }
            other => violations.push(format!("illegal status {other} for a tenant submission")),
        }
    }

    // 1. Quota exactness, from the scheduler's own high-water marks.
    let stats = service.scheduler().tenant_stats();
    for tenant in &stats {
        if cfg.max_queued > 0 && tenant.peak_queued > cfg.max_queued {
            violations.push(format!(
                "tenant `{}` peaked at {} queued (quota {})",
                tenant.tenant, tenant.peak_queued, cfg.max_queued
            ));
        }
        if cfg.max_inflight > 0 && tenant.peak_inflight > cfg.max_inflight {
            violations.push(format!(
                "tenant `{}` peaked at {} inflight (cap {})",
                tenant.tenant, tenant.peak_inflight, cfg.max_inflight
            ));
        }
    }

    // No wedged state at quiescence.
    let inflight = service.scheduler().inflight_len();
    if inflight != 0 {
        violations.push(format!("{inflight} in-flight entries wedged after drain"));
    }
    let queued = service.scheduler().queue_depth();
    if queued != 0 {
        violations.push(format!("{queued} jobs still queued after drain"));
    }

    // 3. Per-tenant metrics ledger, against the same registry the wire
    // exporters read.
    let metrics = service.metrics();
    for (name, _) in &cfg.tenants {
        let t = metrics.tenant(name);
        let submitted = t.submitted.get();
        let settled = t.rejected.get()
            + t.cache_hits.get()
            + t.coalesced.get()
            + t.completed.get()
            + t.errored.get();
        if submitted != settled {
            violations.push(format!(
                "tenant `{name}` ledger leaks: {submitted} submitted != {} rejected + {} hits \
                 + {} coalesced + {} completed + {} errored",
                t.rejected.get(),
                t.cache_hits.get(),
                t.coalesced.get(),
                t.completed.get(),
                t.errored.get()
            ));
        }
        // Client-observed 429s match the tenant's rejected counter.
        let observed = rejected_429.get(name).copied().unwrap_or(0);
        if t.rejected.get() != observed {
            violations.push(format!(
                "tenant `{name}`: rejected counter {} but clients saw {observed} 429s",
                t.rejected.get()
            ));
        }
    }

    service.shutdown();
    drop(scope);

    TenantsReport {
        plan: plan.name.clone(),
        seed: cfg.seed,
        requests: cfg.clients * cfg.requests_per_client,
        responses_by_status,
        stats,
        violations,
    }
}
