//! Kill-and-restart chaos: crash the serving stack mid-load, restart it
//! on the same cache and journal directories, and check that nothing
//! durably accepted was lost.
//!
//! A process can't un-spawn its own threads, so the "crash" is staged
//! with the fault registry instead of `kill -9`: at a seeded ordinal the
//! journal disk dies ([`FireRule::AfterN`] → every later append fails)
//! and on even seeds the final append lands torn ([`FaultSpec::ShortRead`]).
//! The cache disk dies at an independent ordinal. Everything the process
//! did after those points is exactly what a real crash would lose — it
//! never reached disk — and the abrupt [`Service::shutdown`] discards
//! the rest of the in-memory state.
//!
//! Ground truth is read straight from the journal file with
//! [`JournalRecord::decode_line`], independently of the recovery code
//! under test. The invariants a restart must satisfy:
//!
//! 1. **No durable job lost** — every key the journal shows as accepted,
//!    unfinished, and unexpired reaches `done` after restart, and both
//!    the scheduler and `GET /v1/results/:key` serve bytes identical to
//!    the executor's deterministic output.
//! 2. **Expired jobs shed, not run** — a durable pending job whose wall
//!    deadline passed while the process was down counts in
//!    `jobs_expired` and is never executed.
//! 3. **Single compute per key per process lifetime** — in both
//!    incarnations; and the restarted process computes only keys that
//!    recovery actually replayed.
//! 4. **Metrics reconcile** — `jobs_recovered` equals the durable
//!    pending count and the submission ledger balances.
//! 5. **Clean end state** — orphaned cache tempfiles are collected on
//!    restart, and after a graceful drain a third journal open finds no
//!    open jobs.

use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nemfpga::request::{ExperimentKind, ExperimentRequest};
use nemfpga_runtime::{mix_seed, ParallelConfig};
use nemfpga_service::journal::{now_unix_ms, Journal, JournalRecord};
use nemfpga_service::json::Value;
use nemfpga_service::{
    http_request, job_key, JobState, Service, ServiceConfig, SubmitError, SubmitOptions,
};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::chaos::expected_output;
use crate::plan::{FaultPlan, FaultScope, FaultSpec, FireRule};

/// One restart run's shape.
#[derive(Debug, Clone)]
pub struct RestartConfig {
    /// Seed for the request schedule and the crash ordinals.
    pub seed: u64,
    /// Submissions issued before the crash.
    pub jobs: usize,
    /// Distinct request seeds (with 3 experiment kinds: the keyspace).
    pub distinct_seeds: u64,
    /// Worker threads in both incarnations.
    pub worker_threads: usize,
    /// Scheduler queue bound.
    pub queue_capacity: usize,
    /// Per-job deadline.
    pub job_timeout: Duration,
    /// State root; each run uses `<root>/seed-<seed>` and removes it
    /// afterwards. `None` picks a per-process temp directory.
    pub root: Option<PathBuf>,
}

impl Default for RestartConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            jobs: 24,
            distinct_seeds: 4,
            worker_threads: 2,
            queue_capacity: 32,
            job_timeout: Duration::from_secs(5),
            root: None,
        }
    }
}

/// What one kill-and-restart run did (empty `violations` = survived).
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// Schedule seed.
    pub seed: u64,
    /// The armed crash plan's name.
    pub plan: String,
    /// Submissions accepted before the crash.
    pub submissions: usize,
    /// Keys the journal durably shows as accepted and unfinished.
    pub durable_pending: usize,
    /// Durable unfinished keys whose deadline passed while down.
    pub durable_expired: usize,
    /// `jobs_recovered` after restart.
    pub recovered: u64,
    /// Executor invocations in the restarted incarnation.
    pub recomputed: u64,
    /// Whether the crash left a torn record at the journal tail.
    pub torn_tail: bool,
    /// Invariant violations.
    pub violations: Vec<String>,
}

impl RestartReport {
    /// One summary line for driver output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>3}  {:>3} submitted  {} pending + {} expired durable{}  {} recovered  {} recomputed  {}",
            self.seed,
            self.submissions,
            self.durable_pending,
            self.durable_expired,
            if self.torn_tail { " (torn tail)" } else { "" },
            self.recovered,
            self.recomputed,
            if self.violations.is_empty() {
                "OK".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// The seeded crash plan: the journal disk dies after a seeded ordinal
/// (even seeds tear the final record first), the cache disk dies after
/// an independent one.
pub fn crash_plan(seed: u64) -> FaultPlan {
    let journal_dies = 4 + mix_seed(seed, 1) % 10;
    let cache_dies = 2 + mix_seed(seed, 2) % 8;
    let mut plan = FaultPlan::named(&format!("crash-j{journal_dies}-c{cache_dies}"))
        .with_rule("journal.append", FireRule::AfterN(journal_dies), FaultSpec::IoError)
        .with_rule("cache.write_disk", FireRule::AfterN(cache_dies), FaultSpec::IoError);
    if seed.is_multiple_of(2) {
        plan = plan.with_rule("journal.append", FireRule::Nth(journal_dies), FaultSpec::ShortRead);
    }
    plan
}

/// A job the journal file durably records as accepted but unfinished.
struct DurableJob {
    request: ExperimentRequest,
    expired: bool,
}

/// Reads ground truth from the journal file with the same fold the
/// recovery scan uses — but implemented here, against the public
/// [`JournalRecord::decode_line`], so the scenario does not trust the
/// code it is checking. Returns (key → job, torn_tail).
fn ground_truth(path: &Path, now_ms: u64) -> (BTreeMap<String, DurableJob>, bool) {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut torn = false;
    let mut submitted: BTreeMap<String, (ExperimentRequest, Option<u64>)> = BTreeMap::new();
    let mut done: Vec<String> = Vec::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        let Some(record) = JournalRecord::decode_line(line) else {
            torn = true;
            break;
        };
        match record {
            JournalRecord::Submitted {
                key,
                experiment,
                scale_bits,
                benchmarks,
                seed,
                deadline_unix_ms,
                ..
            } => {
                let Some(kind) = ExperimentKind::from_name(&experiment) else { continue };
                let mut request = ExperimentRequest::new(kind);
                request.scale = f64::from_bits(scale_bits);
                request.benchmarks = benchmarks as usize;
                request.seed = seed;
                submitted.insert(key, (request, deadline_unix_ms));
            }
            JournalRecord::Started { .. } | JournalRecord::Attempt { .. } => {}
            // A pinned key never executes again; drop it from ground
            // truth the same way a `done` record would.
            JournalRecord::Quarantined { key, .. } => done.push(key),
            JournalRecord::Done { key, .. } => done.push(key),
        }
    }
    for key in done {
        submitted.remove(&key);
    }
    let jobs = submitted
        .into_iter()
        .map(|(key, (request, deadline))| {
            let expired = deadline.is_some_and(|d| d <= now_ms);
            (key, DurableJob { request, expired })
        })
        .collect();
    (jobs, torn)
}

fn counting_executor() -> (Arc<Mutex<HashMap<String, u64>>>, nemfpga_service::Executor) {
    let computes: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let counter = Arc::clone(&computes);
    let executor: nemfpga_service::Executor = Arc::new(move |req: &ExperimentRequest| {
        let key = job_key(req).map_err(|e| e.to_string())?;
        *counter
            .lock()
            .expect("compute counter poisoned")
            .entry(key.as_hex().to_owned())
            .or_insert(0) += 1;
        Ok(expected_output(req))
    });
    (computes, executor)
}

/// Runs one kill-and-restart experiment. See the module docs for the
/// staged-crash mechanics and the invariants.
pub fn run_restart(cfg: &RestartConfig) -> RestartReport {
    let plan = crash_plan(cfg.seed);
    let root = cfg.root.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("nemfpga-restart-{}", std::process::id()))
    });
    let dir = root.join(format!("seed-{}", cfg.seed));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_dir = dir.join("cache");
    let journal_path = dir.join("journal.log");
    let config = ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        parallel: ParallelConfig::with_threads(cfg.worker_threads.max(1)),
        queue_capacity: cfg.queue_capacity,
        job_timeout: cfg.job_timeout,
        cache_capacity: 64,
        cache_dir: Some(cache_dir.clone()),
        journal_path: Some(journal_path.clone()),
        cluster: None,
        qos: Default::default(),
        hardening: Default::default(),
        journal_compact_bytes: 0,
    };
    let budget = cfg.job_timeout + Duration::from_secs(30);
    let mut violations: Vec<String> = Vec::new();

    // ── Incarnation 1: load, then crash ────────────────────────────────
    let (computes, executor) = counting_executor();
    let scope = FaultScope::begin();
    scope.arm_plan(&plan);
    let service = Service::start(&config, executor).expect("bind restart service");

    let kinds = [ExperimentKind::Fig4, ExperimentKind::Table1, ExperimentKind::Fig6];
    let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(cfg.seed, 0xC4A54));
    let mut ids: Vec<u64> = Vec::new();
    for _ in 0..cfg.jobs {
        let mut request = ExperimentRequest::new(*kinds.choose(&mut rng).expect("non-empty"));
        request.seed = rng.gen_range(0..cfg.distinct_seeds.max(1));
        let opts = SubmitOptions { deadline_ms: Some(60_000), ..SubmitOptions::default() };
        match service.scheduler().submit_opts(request, opts) {
            Ok(submission) => ids.push(submission.status.id),
            Err(SubmitError::QueueFull) => {}
            Err(error) => violations.push(format!("pre-crash submit failed: {error}")),
        }
    }
    let submissions = ids.len();
    for &id in &ids {
        if let Some(status) = service.scheduler().wait_for(id, budget) {
            if !status.state.is_terminal() {
                violations.push(format!("pre-crash job {id} never reached a terminal state"));
            }
        }
    }
    let computes_before: BTreeMap<String, u64> =
        computes.lock().expect("compute counter poisoned").clone().into_iter().collect();
    // The crash: no drain, no flush — whatever the frozen disks dropped
    // stays dropped.
    service.shutdown();
    drop(scope);

    // A job a previous incarnation accepted whose deadline passed while
    // everything was down: durable, and outside the live keyspace so any
    // execution of it is unmistakable.
    let mut stale = ExperimentRequest::new(ExperimentKind::Table1);
    stale.seed = cfg.distinct_seeds + 17;
    let stale_key = job_key(&stale).expect("valid request").as_hex().to_owned();
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&journal_path)
            .expect("append stale record");
        let record = JournalRecord::submitted(
            &stale_key,
            &stale,
            Some(now_unix_ms().saturating_sub(10_000)),
        );
        writeln!(file, "{}", record.encode_line()).expect("write stale record");
    }
    // And a half-written cache tempfile the crash stranded.
    let orphan = cache_dir.join(".orphan.json.tmp-12345");
    let _ = std::fs::create_dir_all(&cache_dir);
    std::fs::write(&orphan, b"half-written").expect("plant orphan tempfile");

    // Ground truth, read from the bytes on disk.
    let (durable, torn_tail) = ground_truth(&journal_path, now_unix_ms());
    let pending: Vec<(&String, &DurableJob)> = durable.iter().filter(|(_, j)| !j.expired).collect();
    let expired: Vec<&String> = durable.iter().filter(|(_, j)| j.expired).map(|(k, _)| k).collect();

    // ── Incarnation 2: restart on the same directories ─────────────────
    let (computes, executor) = counting_executor();
    let service = Service::start(&config, executor).expect("restart on the same state");
    let metrics = service.metrics();

    // 4. jobs_recovered must equal the durable pending count.
    let recovered = metrics.jobs_recovered.get();
    if recovered != pending.len() as u64 {
        violations.push(format!(
            "jobs_recovered = {recovered} but the journal holds {} pending job(s)",
            pending.len()
        ));
    }
    // 2. Deadlines that passed while down expire without running.
    if metrics.jobs_expired.get() != expired.len() as u64 {
        violations.push(format!(
            "jobs_expired = {} but the journal holds {} expired job(s)",
            metrics.jobs_expired.get(),
            expired.len()
        ));
    }
    // 5. Startup GC collects crash-stranded cache tempfiles.
    if orphan.exists() {
        violations.push("orphaned cache tempfile survived restart GC".to_owned());
    }

    // 1. Every durable pending job lands, byte-identical, on both the
    // scheduler and the wire. Resubmitting the same request coalesces
    // onto the recovered job (or hits its cached result) — it never
    // computes again — and hands us an id to block on.
    let addr = service.addr();
    for (key, job) in &pending {
        match service.scheduler().submit(job.request) {
            Ok(submission) => match service.scheduler().wait_for(submission.status.id, budget) {
                Some(status) if status.state == JobState::Done => {
                    if status.output.as_deref() != Some(expected_output(&job.request).as_str()) {
                        violations.push(format!(
                            "recovered job {}… diverged from the executor's bytes",
                            &key[..12]
                        ));
                    }
                }
                other => violations.push(format!(
                    "recovered job {}… ended as {:?}, not done",
                    &key[..12],
                    other.map(|s| s.state)
                )),
            },
            Err(error) => {
                violations.push(format!("post-restart submit of {}… failed: {error}", &key[..12]));
            }
        }
        match http_request(addr, "GET", &format!("/v1/results/{key}"), None, budget) {
            Ok(resp) if resp.status == 200 => {
                if resp.body.get("output").and_then(Value::as_str)
                    != Some(expected_output(&job.request).as_str())
                {
                    violations
                        .push(format!("/v1/results/{}… served non-canonical bytes", &key[..12]));
                }
            }
            Ok(resp) => violations.push(format!(
                "/v1/results/{}… answered {} for a recovered job",
                &key[..12],
                resp.status
            )),
            Err(error) => violations.push(format!("transport failure fetching results: {error}")),
        }
    }

    // 3. Single compute per key per process lifetime, and the restarted
    // process computes nothing recovery didn't replay.
    let computes_after: BTreeMap<String, u64> =
        computes.lock().expect("compute counter poisoned").clone().into_iter().collect();
    for (phase, per_key) in [("pre-crash", &computes_before), ("post-restart", &computes_after)] {
        for (key, count) in per_key {
            if *count > 1 {
                violations.push(format!(
                    "{phase}: key {}… computed {count} times in one process lifetime",
                    &key[..12]
                ));
            }
        }
    }
    for key in computes_after.keys() {
        if durable.get(key).is_none_or(|j| j.expired) {
            violations.push(format!(
                "post-restart computed {}…, which recovery never replayed",
                &key[..12]
            ));
        }
    }
    if computes_after.contains_key(&stale_key) {
        violations.push("the expired job was executed after restart".to_owned());
    }

    // 4b. The submission ledger balances in the restarted incarnation.
    let submitted = metrics.jobs_submitted.get();
    let ledger = metrics.cache_hits() + metrics.coalesced.get() + metrics.cache_misses.get();
    if submitted != ledger {
        violations.push(format!(
            "post-restart submission ledger leaks: {submitted} submitted != {ledger} hits+coalesced+misses"
        ));
    }
    let recomputed = computes_after.values().sum();

    // 5b. Graceful exit this time; a third open finds a quiet journal.
    if !service.drain(Duration::from_secs(10)) {
        violations.push("post-restart drain did not quiesce".to_owned());
    }
    match Journal::open(&journal_path) {
        Ok((_journal, report)) => {
            if !report.pending.is_empty() || !report.expired.is_empty() {
                violations.push(format!(
                    "journal still holds {} open job(s) after a clean drain",
                    report.pending.len() + report.expired.len()
                ));
            }
        }
        Err(error) => violations.push(format!("third journal open failed: {error}")),
    }

    let report = RestartReport {
        seed: cfg.seed,
        plan: plan.name.clone(),
        submissions,
        durable_pending: pending.len(),
        durable_expired: expired.len(),
        recovered,
        recomputed,
        torn_tail,
        violations,
    };
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> RestartConfig {
        RestartConfig {
            seed,
            root: Some(
                std::env::temp_dir().join(format!("nemfpga-restart-test-{}", std::process::id())),
            ),
            ..RestartConfig::default()
        }
    }

    #[test]
    fn crash_plans_replay_from_their_seed() {
        for seed in 0..8 {
            assert_eq!(crash_plan(seed), crash_plan(seed));
        }
        // Even seeds tear the tail, odd seeds freeze cleanly.
        assert_eq!(crash_plan(2).rules.len(), 3);
        assert_eq!(crash_plan(3).rules.len(), 2);
    }

    #[test]
    fn restart_recovers_a_torn_tail_crash() {
        let report = run_restart(&config(2));
        assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        assert_eq!(report.durable_expired, if report.torn_tail { 0 } else { 1 });
    }

    #[test]
    fn restart_recovers_a_clean_freeze_crash() {
        let report = run_restart(&config(3));
        assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        assert!(!report.torn_tail, "odd seeds freeze without tearing");
        assert_eq!(report.durable_expired, 1, "the stale record must surface as expired");
    }
}
