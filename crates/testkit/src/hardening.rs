//! Crash-loop hardening: prove poison-job quarantine is durable.
//!
//! One request is poison — its executor run always panics. A client
//! that does not know that keeps resubmitting it, and the process
//! restarts between every attempt, so nothing about the failure
//! history survives in memory. The only way the service can stop
//! burning compute on the key is the journal's `attempt` records.
//!
//! Each incarnation submits the poison request once plus a batch of
//! normal requests, then shuts down abruptly (no drain). The scenario
//! runs `threshold + 1` incarnations and checks:
//!
//! 1. **Exactly-N computes** — the poison executor body runs exactly
//!    `quarantine_threshold` times across ALL incarnations; the pin is
//!    recovered from the journal, never re-derived by re-executing.
//! 2. **Attempt counts persist** — incarnation `i < N` ends the poison
//!    job `failed`; incarnation `N` ends it `quarantined` with the
//!    structured error naming all `N` attempts; incarnation `N + 1`
//!    short-circuits at submit (a `quarantine_hits` tick, zero
//!    executor runs) and `/v1/results/:key` serves 503 `quarantined`.
//! 3. **Blast radius is one key** — every normal job completes `done`
//!    in every incarnation with byte-identical output.
//! 4. **Compaction is survivable** — a tiny `journal_compact_bytes`
//!    forces live compactions mid-run (`journal_compactions > 0`), and
//!    the attempt tally and pin still recover afterwards.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nemfpga::request::{ExperimentKind, ExperimentRequest};
use nemfpga_runtime::ParallelConfig;
use nemfpga_service::json::Value;
use nemfpga_service::{http_request, job_key, HardeningConfig, JobState, Service, ServiceConfig};

use crate::chaos::expected_output;

/// Request seed reserved for the poison job; normal jobs use seeds
/// below this, so the marker can never collide.
const POISON_SEED: u64 = 0xDEAD;

/// One crash-loop run's shape.
#[derive(Debug, Clone)]
pub struct CrashLoopConfig {
    /// Seed for the normal-job schedule (the poison job is fixed).
    pub seed: u64,
    /// Abnormal failures before the key is pinned.
    pub quarantine_threshold: u32,
    /// Normal requests submitted per incarnation.
    pub normal_jobs: usize,
    /// Live-compaction byte threshold (small, to force compactions).
    pub journal_compact_bytes: u64,
    /// State root; each run uses `<root>/seed-<seed>` and removes it
    /// afterwards. `None` picks a per-process temp directory.
    pub root: Option<PathBuf>,
}

impl Default for CrashLoopConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            quarantine_threshold: 3,
            normal_jobs: 6,
            journal_compact_bytes: 2048,
            root: None,
        }
    }
}

/// What one crash-loop run did (empty `violations` = survived).
#[derive(Debug, Clone)]
pub struct CrashLoopReport {
    /// Schedule seed.
    pub seed: u64,
    /// Incarnations driven (`quarantine_threshold + 1`).
    pub incarnations: u32,
    /// Executor runs the poison request actually got.
    pub poison_computes: u64,
    /// Live journal compactions observed across all incarnations.
    pub compactions: u64,
    /// Invariant violations.
    pub violations: Vec<String>,
}

impl CrashLoopReport {
    /// One summary line for driver output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>3}  {} incarnations  {} poison computes  {} compactions  {}",
            self.seed,
            self.incarnations,
            self.poison_computes,
            self.compactions,
            if self.violations.is_empty() {
                "OK".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// Runs one crash-loop experiment. See the module docs for the
/// incarnation schedule and the invariants.
pub fn run_crash_loop(cfg: &CrashLoopConfig) -> CrashLoopReport {
    let threshold = cfg.quarantine_threshold.max(1);
    let root = cfg.root.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("nemfpga-crash-loop-{}", std::process::id()))
    });
    let dir = root.join(format!("seed-{}", cfg.seed));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        parallel: ParallelConfig::with_threads(2),
        cache_dir: Some(dir.join("cache")),
        journal_path: Some(dir.join("journal.log")),
        journal_compact_bytes: cfg.journal_compact_bytes,
        hardening: HardeningConfig {
            quarantine_threshold: threshold,
            ..HardeningConfig::default()
        },
        ..ServiceConfig::default()
    };
    let budget = config.job_timeout + Duration::from_secs(30);
    let mut violations: Vec<String> = Vec::new();

    let mut poison = ExperimentRequest::new(ExperimentKind::Fig4);
    poison.seed = POISON_SEED;
    let poison_key = job_key(&poison).expect("valid request").as_hex().to_owned();

    // One executor-run counter shared across every incarnation: the
    // poison body bumps it and then panics, so the count is exactly the
    // number of times quarantine FAILED to protect the key.
    let computes: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut compactions = 0u64;

    for incarnation in 1..=threshold + 1 {
        let counter = Arc::clone(&computes);
        let executor: nemfpga_service::Executor = Arc::new(move |req: &ExperimentRequest| {
            let key = job_key(req).map_err(|e| e.to_string())?;
            *counter
                .lock()
                .expect("compute counter poisoned")
                .entry(key.as_hex().to_owned())
                .or_insert(0) += 1;
            if req.seed == POISON_SEED {
                panic!("poison marker request");
            }
            Ok(expected_output(req))
        });
        let service = Service::start(&config, executor).expect("bind crash-loop service");

        // The client that never learns: resubmit the poison key.
        let expected_state =
            if incarnation < threshold { JobState::Failed } else { JobState::Quarantined };
        match service.scheduler().submit(poison) {
            Ok(submission) => {
                let status = service.scheduler().wait_for(submission.status.id, budget);
                match status {
                    Some(status) if status.state == expected_state => {
                        if status.state == JobState::Quarantined {
                            let error = status.error.unwrap_or_default();
                            let want = format!("quarantined after {threshold} failed attempts");
                            if !error.contains(&want) {
                                violations.push(format!(
                                    "incarnation {incarnation}: quarantine error `{error}` does \
                                     not carry the attempt tally"
                                ));
                            }
                        }
                    }
                    other => violations.push(format!(
                        "incarnation {incarnation}: poison job ended as {:?}, expected {:?}",
                        other.map(|s| s.state),
                        expected_state
                    )),
                }
            }
            Err(error) => {
                violations.push(format!("incarnation {incarnation}: poison submit failed: {error}"))
            }
        }

        // Past the threshold the key must be refused at submit time —
        // zero queue slots, zero executor runs, a quarantine_hits tick,
        // and a 503 `quarantined` envelope on the results route.
        if incarnation == threshold + 1 {
            if service.metrics().quarantine_hits.get() == 0 {
                violations
                    .push("final incarnation: submit did not short-circuit on the pin".to_owned());
            }
            let path = format!("/v1/results/{poison_key}");
            match http_request(service.addr(), "GET", &path, None, budget) {
                Ok(resp) => {
                    let code = resp
                        .body
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_owned();
                    if resp.status != 503 || code != "quarantined" {
                        violations.push(format!(
                            "results route answered {} `{code}` for a quarantined key",
                            resp.status
                        ));
                    }
                }
                Err(error) => {
                    violations.push(format!("transport failure fetching results: {error}"))
                }
            }
        }

        // Normal traffic rides along untouched: same seeds every
        // incarnation, so byte-identity across restarts is checked too.
        for job in 0..cfg.normal_jobs {
            let kinds = [ExperimentKind::Fig4, ExperimentKind::Table1, ExperimentKind::Fig6];
            let mut request = ExperimentRequest::new(kinds[job % kinds.len()]);
            request.seed = cfg.seed * 1000 + job as u64;
            match service.scheduler().submit(request) {
                Ok(submission) => {
                    match service.scheduler().wait_for(submission.status.id, budget) {
                        Some(status) if status.state == JobState::Done => {
                            if status.output.as_deref() != Some(expected_output(&request).as_str())
                            {
                                violations.push(format!(
                                    "incarnation {incarnation}: normal job {job} diverged from \
                                     the executor's bytes"
                                ));
                            }
                        }
                        other => violations.push(format!(
                            "incarnation {incarnation}: normal job {job} ended as {:?}",
                            other.map(|s| s.state)
                        )),
                    }
                }
                Err(error) => violations.push(format!(
                    "incarnation {incarnation}: normal job {job} submit failed: {error}"
                )),
            }
        }

        compactions += service.metrics().journal_compactions.get();
        // The crash: abrupt shutdown, no drain — only the journal's
        // bytes carry the failure history into the next incarnation.
        service.shutdown();
    }

    // 1. Exactly-N computes for the poison key, full tallies elsewhere.
    let per_key = computes.lock().expect("compute counter poisoned").clone();
    let poison_computes = per_key.get(&poison_key).copied().unwrap_or(0);
    if poison_computes != u64::from(threshold) {
        violations.push(format!(
            "poison key computed {poison_computes} times; the quarantine threshold is {threshold}"
        ));
    }
    // 4. The tiny compaction threshold must actually have fired.
    if compactions == 0 {
        violations.push(format!(
            "no live compaction fired despite a {}-byte threshold",
            cfg.journal_compact_bytes
        ));
    }

    let report = CrashLoopReport {
        seed: cfg.seed,
        incarnations: threshold + 1,
        poison_computes,
        compactions,
        violations,
    };
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_loop_quarantines_in_exactly_threshold_attempts() {
        let report = run_crash_loop(&CrashLoopConfig {
            seed: 7,
            root: Some(
                std::env::temp_dir()
                    .join(format!("nemfpga-crash-loop-test-{}", std::process::id())),
            ),
            ..CrashLoopConfig::default()
        });
        assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        assert_eq!(report.poison_computes, 3);
        assert!(report.compactions > 0);
    }
}
