//! Deterministic scheduler simulator: the QoS policy under a virtual
//! clock.
//!
//! The live scheduler's fairness logic is one pure object —
//! [`nemfpga_service::FairQueue`] — deliberately free of clocks,
//! threads, and atomics. This module drives that *exact* policy object
//! through an event-driven simulation with an injected `u64` virtual
//! clock and scripted arrivals, so the fair-share invariants can be
//! property-tested over thousands of schedules with zero wall time and
//! bit-reproducible results: same jobs in, byte-identical
//! [`SimReport`] out, every run, every machine.
//!
//! Mechanics (all ties broken deterministically):
//!
//! 1. The clock jumps to the next event time — the earliest of the next
//!    job completion and the next scripted arrival.
//! 2. Completions at that instant are applied first (in job-id order),
//!    freeing workers and inflight-quota slots; then arrivals are
//!    admitted in submission order (quota rejections are recorded, not
//!    fatal).
//! 3. Free workers then greedily dispatch from the fair queue. Because
//!    dispatch runs to fixpoint after every event batch, a worker can
//!    only be idle while eligible work waits if the policy object
//!    itself misreports eligibility — which [`simulate`] records as a
//!    work-conservation violation.
//!
//! The simulator reports everything the property tests need: the full
//! dispatch order (for share and FIFO analysis), per-job completion
//! records, quota rejections, the queue's own per-tenant accounting,
//! and any invariant violations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nemfpga_service::{FairQueue, Lane, QosPolicy, TenantStats};

/// One scripted job: arrives at a virtual instant, is billed to a
/// tenant's lane, and occupies a worker for `service` ticks once
/// dispatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimJob {
    /// Virtual arrival instant.
    pub arrival: u64,
    /// Tenant the job is billed to.
    pub tenant: String,
    /// Scheduling lane.
    pub lane: Lane,
    /// Service time in virtual ticks (clamped to ≥ 1).
    pub service: u64,
}

/// Simulation parameters: the policy under test and the worker count.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The fair-share policy to drive.
    pub policy: QosPolicy,
    /// Concurrent workers (clamped to ≥ 1).
    pub workers: usize,
}

/// One dispatch decision, in the order the queue made them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimDispatch {
    /// Index of the job in the input slice.
    pub job: u64,
    /// Tenant it was billed to.
    pub tenant: String,
    /// Lane it waited in.
    pub lane: Lane,
    /// Virtual instant it started running.
    pub start: u64,
}

/// One finished job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimCompletion {
    /// Index of the job in the input slice.
    pub job: u64,
    /// Tenant it was billed to.
    pub tenant: String,
    /// Lane it waited in.
    pub lane: Lane,
    /// Scripted arrival instant.
    pub arrival: u64,
    /// Dispatch instant.
    pub start: u64,
    /// Completion instant.
    pub finish: u64,
}

/// One submission rejected by the per-tenant queue quota.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRejection {
    /// Index of the job in the input slice.
    pub job: u64,
    /// Tenant that was over quota.
    pub tenant: String,
    /// Rejection instant.
    pub at: u64,
}

/// Everything a run produced. Two runs of the same `(config, jobs)`
/// compare equal — that *is* the reproducibility property.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Dispatch decisions in queue order.
    pub dispatches: Vec<SimDispatch>,
    /// Completions in completion order (ties by job index).
    pub completions: Vec<SimCompletion>,
    /// Quota rejections in arrival order.
    pub rejections: Vec<SimRejection>,
    /// The queue's own per-tenant accounting at quiescence.
    pub stats: Vec<TenantStats>,
    /// Invariant violations observed during the run (empty on a
    /// healthy policy).
    pub violations: Vec<String>,
    /// The virtual instant the last event happened.
    pub makespan: u64,
}

impl SimReport {
    /// Completed-job counts per tenant, in tenant-name order.
    pub fn completed_by_tenant(&self) -> Vec<(String, u64)> {
        let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for completion in &self.completions {
            *counts.entry(completion.tenant.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Runs the scripted jobs through the policy to quiescence. See the
/// module docs for the event-ordering rules.
pub fn simulate(config: &SimConfig, jobs: &[SimJob]) -> SimReport {
    let mut queue = FairQueue::new(&config.policy);
    let workers = config.workers.max(1);
    let mut free = workers;

    // Arrival schedule, stably ordered by (instant, submission index).
    let mut arrivals: Vec<(u64, u64)> =
        jobs.iter().enumerate().map(|(index, job)| (job.arrival, index as u64)).collect();
    arrivals.sort_unstable();
    let mut next_arrival = 0usize;

    // Running jobs as a min-heap of (finish instant, job index).
    let mut running: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut starts: Vec<u64> = vec![0; jobs.len()];

    let mut report = SimReport {
        dispatches: Vec::new(),
        completions: Vec::new(),
        rejections: Vec::new(),
        stats: Vec::new(),
        violations: Vec::new(),
        makespan: 0,
    };

    while next_arrival < arrivals.len() || !running.is_empty() {
        let arrival_at = arrivals.get(next_arrival).map(|&(at, _)| at);
        let finish_at = running.peek().map(|Reverse((at, _))| *at);
        let now = match (finish_at, arrival_at) {
            (Some(f), Some(a)) => f.min(a),
            (Some(f), None) => f,
            (None, Some(a)) => a,
            (None, None) => unreachable!("loop condition guarantees an event"),
        };
        report.makespan = now;

        // Completions first: a worker freed at `now` can serve a job
        // arriving at `now`, matching the live scheduler where a
        // finishing worker loops straight into the next dequeue.
        while let Some(&Reverse((at, job))) = running.peek() {
            if at > now {
                break;
            }
            running.pop();
            free += 1;
            let spec = &jobs[job as usize];
            queue.finish(&spec.tenant);
            report.completions.push(SimCompletion {
                job,
                tenant: spec.tenant.clone(),
                lane: spec.lane,
                arrival: spec.arrival,
                start: starts[job as usize],
                finish: now,
            });
        }

        while next_arrival < arrivals.len() && arrivals[next_arrival].0 == now {
            let (_, job) = arrivals[next_arrival];
            next_arrival += 1;
            let spec = &jobs[job as usize];
            if queue.enqueue(&spec.tenant, spec.lane, job).is_err() {
                report.rejections.push(SimRejection { job, tenant: spec.tenant.clone(), at: now });
            }
        }

        // Greedy dispatch to fixpoint.
        while free > 0 {
            let Some(next) = queue.dequeue() else { break };
            free -= 1;
            starts[next.job as usize] = now;
            let service = jobs[next.job as usize].service.max(1);
            running.push(Reverse((now + service, next.job)));
            report.dispatches.push(SimDispatch {
                job: next.job,
                tenant: next.tenant,
                lane: next.lane,
                start: now,
            });
        }
        if free > 0 && queue.has_eligible() {
            report.violations.push(format!(
                "work conservation: {free} idle worker(s) at t={now} with eligible work queued"
            ));
        }
    }

    // Every admitted job must have completed: accepted = completed.
    let admitted = jobs.len() - report.rejections.len();
    if report.completions.len() != admitted {
        report.violations.push(format!(
            "work conservation: {admitted} jobs admitted but {} completed",
            report.completions.len()
        ));
    }
    if queue.queued_len() != 0 {
        report.violations.push(format!("{} job(s) still queued at quiescence", queue.queued_len()));
    }

    report.stats = queue.tenant_stats();
    report
}
