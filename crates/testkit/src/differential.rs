//! Differential testing for the CAD engine, with automatic shrinking.
//!
//! PR 1's determinism tests pin a handful of hand-picked cases. This
//! harness generalizes them to *seeded families*: every [`DiffCase`]
//! derives a random architecture/netlist from its seed and checks one
//! equivalence the engine promises —
//!
//! * **Repeat** / **Scratch**: routing is a pure function of its inputs
//!   — a second run, or a run through a warmed [`RouterScratch`] arena
//!   carrying stale epochs, is bit-identical.
//! * **IncrVsFull**: the incremental PathFinder schedule succeeds and
//!   produces a *legal* routing wherever the classic full-reroute
//!   schedule does. The two are bit-identical when both converge in one
//!   iteration (identical first-iteration work lists); on congested
//!   multi-iteration cases their rip-up schedules legitimately differ,
//!   so there the contract is legality + success, not identity. See
//!   TESTING.md.
//! * **RouteNetParallel**: the wavefront net-parallel PathFinder (nets
//!   within an iteration routed across threads in window-disjoint
//!   waves) is bit-identical to the serial reference schedule — full
//!   `Routing` equality at any thread count.
//! * **SweepThreads** / **ComplianceThreads** / **PopulationThreads** /
//!   **ParallelSum**: every parallel fan-out is bit-identical to its
//!   serial schedule at any thread count.
//!
//! When a case diverges, [`shrink_case`] greedily minimizes it (smaller
//! problem, fewer threads) while the divergence persists, and
//! [`reproducer`] prints a standalone snippet (≤ 10 lines) that replays
//! the minimal case. [`inject_divergence`] plants a deliberate
//! index-dependent perturbation in the `ParallelSum` family's parallel
//! path so the shrinker itself can be tested end to end.

use std::sync::atomic::{AtomicU64, Ordering};

use nemfpga::flow::EvaluationConfig;
use nemfpga::sweep::{tradeoff_sweep, PAPER_DIVISORS};
use nemfpga_arch::build_rr_graph;
use nemfpga_arch::grid::Grid;
use nemfpga_arch::params::ArchParams;
use nemfpga_crossbar::levels::ProgrammingLevels;
use nemfpga_crossbar::yield_analysis::estimate_compliance_with;
use nemfpga_device::relay::NemRelayDevice;
use nemfpga_device::variation::VariationModel;
use nemfpga_netlist::synth::SynthConfig;
use nemfpga_pnr::channel::find_min_channel_width;
use nemfpga_pnr::pack::{pack, PackedDesign};
use nemfpga_pnr::place::{place, PlaceConfig, Placement};
use nemfpga_pnr::route::{check_routing, route, route_with_scratch, RouteConfig, RouterScratch};
use nemfpga_runtime::{mix_seed, parallel_map_cfg, ParallelConfig};

/// One differential family (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// Same inputs, two runs: bit-identical.
    RouteRepeat,
    /// Fresh scratch arena vs one warmed on another width: bit-identical.
    RouteScratch,
    /// Incremental vs full-reroute PathFinder: both succeed and are
    /// legal; bit-identical when both converge in one iteration.
    RouteIncrementalVsFull,
    /// Serial router vs wavefront net-parallel router at N threads:
    /// bit-identical (the CSR + conflict-group scheduling contract).
    RouteNetParallel,
    /// Fig. 12 sweep, serial vs N threads: bit-identical.
    SweepThreads,
    /// Monte Carlo compliance, serial vs N threads: bit-identical.
    ComplianceThreads,
    /// Population sampling, serial vs N threads: bit-identical.
    PopulationThreads,
    /// Synthetic indexed fan-out, serial vs N threads: bit-identical.
    /// This is the family [`inject_divergence`] perturbs.
    ParallelSum,
}

/// All families, in matrix round-robin order.
pub const ALL_KINDS: [DiffKind; 8] = [
    DiffKind::RouteRepeat,
    DiffKind::RouteScratch,
    DiffKind::RouteIncrementalVsFull,
    DiffKind::RouteNetParallel,
    DiffKind::SweepThreads,
    DiffKind::ComplianceThreads,
    DiffKind::PopulationThreads,
    DiffKind::ParallelSum,
];

/// One seeded differential case. `size` scales the derived problem
/// (netlist size, sample count, …) per family; `threads` is the
/// parallel side's thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffCase {
    /// Which equivalence to check.
    pub kind: DiffKind,
    /// Seed for the derived architecture/netlist/samples.
    pub seed: u64,
    /// Problem-size knob (meaning is per-family).
    pub size: u32,
    /// Thread count for the parallel side.
    pub threads: usize,
}

/// A case whose two sides disagreed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The diverging case.
    pub case: DiffCase,
    /// What differed.
    pub detail: String,
}

/// The deliberate-divergence knob for the `ParallelSum` family: indices
/// `>= threshold` are perturbed *in the parallel path only*.
/// `u64::MAX` (the default) disables it. Unlike a fault-point hook,
/// this is index-deterministic under any thread schedule, so the
/// minimal diverging case is exactly `size == threshold + 1`.
static PERTURB_THRESHOLD: AtomicU64 = AtomicU64::new(u64::MAX);

/// Arms the deliberate `ParallelSum` divergence at `threshold`.
pub fn inject_divergence(threshold: u64) {
    PERTURB_THRESHOLD.store(threshold, Ordering::SeqCst);
}

/// Disarms [`inject_divergence`].
pub fn clear_divergence() {
    PERTURB_THRESHOLD.store(u64::MAX, Ordering::SeqCst);
}

fn placed(luts: usize, seed: u64) -> (ArchParams, PackedDesign, Placement) {
    let params = ArchParams::paper_table1();
    let design = pack(SynthConfig::tiny("diff", luts, seed).generate().unwrap(), &params).unwrap();
    let grid =
        Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate).unwrap();
    let placement = place(&design, grid, &PlaceConfig::fast(seed)).unwrap();
    (params, design, placement)
}

fn diverged(case: &DiffCase, detail: String) -> Option<Divergence> {
    Some(Divergence { case: case.clone(), detail })
}

/// Runs one case; `None` means the two sides agreed.
pub fn run_case(case: &DiffCase) -> Option<Divergence> {
    let threads = case.threads.max(2);
    match case.kind {
        DiffKind::RouteRepeat => {
            let luts = 24 + (case.size as usize % 12) * 2;
            let (params, design, placement) = placed(luts, case.seed);
            let rr = build_rr_graph(&params, placement.grid, 30).unwrap();
            let cfg = RouteConfig::new();
            let a = route(&rr, &design, &placement, &cfg);
            let b = route(&rr, &design, &placement, &cfg);
            if format!("{a:?}") != format!("{b:?}") {
                return diverged(case, "two identical route() runs disagreed".to_owned());
            }
            None
        }
        DiffKind::RouteScratch => {
            let luts = 24 + (case.size as usize % 12) * 2;
            let (params, design, placement) = placed(luts, case.seed);
            let rr = build_rr_graph(&params, placement.grid, 30).unwrap();
            let cfg = RouteConfig::new();
            let fresh = route(&rr, &design, &placement, &cfg);
            let mut scratch = RouterScratch::new();
            let rr_warm = build_rr_graph(&params, placement.grid, 34).unwrap();
            let _ = route_with_scratch(&rr_warm, &design, &placement, &cfg, &mut scratch);
            let reused = route_with_scratch(&rr, &design, &placement, &cfg, &mut scratch);
            if format!("{fresh:?}") != format!("{reused:?}") {
                return diverged(case, "warmed scratch arena changed the routing".to_owned());
            }
            None
        }
        DiffKind::RouteIncrementalVsFull => {
            let luts = 28 + (case.size as usize % 10) * 2;
            let (params, design, placement) = placed(luts, case.seed);
            let incr_cfg = RouteConfig::new();
            let mut full_cfg = RouteConfig::new();
            full_cfg.incremental = false;
            let search =
                match find_min_channel_width(&params, &design, &placement, &incr_cfg, 8, 256) {
                    Ok(s) => s,
                    Err(e) => {
                        return diverged(case, format!("width search failed outright: {e:?}"))
                    }
                };
            // Route at the certified W_min itself. Widths are not
            // interchangeable here — routability is non-monotonic across
            // track-count parities (e.g. W=9 can fail where W=8 and
            // W=10 route), so the only width the search vouches for is
            // W_min exactly.
            let rr = match build_rr_graph(&params, placement.grid, search.w_min) {
                Ok(rr) => rr,
                Err(e) => return diverged(case, format!("rr graph build failed: {e:?}")),
            };
            let incr = route(&rr, &design, &placement, &incr_cfg);
            let full = route(&rr, &design, &placement, &full_cfg);
            match (&incr, &full) {
                (Ok(incr), Ok(full)) => {
                    if let Err(e) = check_routing(&rr, &design, &placement, incr) {
                        return diverged(case, format!("incremental routing illegal: {e:?}"));
                    }
                    if let Err(e) = check_routing(&rr, &design, &placement, full) {
                        return diverged(case, format!("full routing illegal: {e:?}"));
                    }
                    if incr.iterations == 1 && full.iterations == 1 && incr != full {
                        return diverged(
                            case,
                            "both schedules converged in 1 iteration yet differ".to_owned(),
                        );
                    }
                    None
                }
                (a, b) => diverged(
                    case,
                    format!(
                        "success disagreement at W_min: incremental {} / full {}",
                        if a.is_ok() { "routed" } else { "failed" },
                        if b.is_ok() { "routed" } else { "failed" },
                    ),
                ),
            }
        }
        DiffKind::RouteNetParallel => {
            let luts = 24 + (case.size as usize % 12) * 2;
            let (params, design, placement) = placed(luts, case.seed);
            let rr = build_rr_graph(&params, placement.grid, 30).unwrap();
            let serial = route(&rr, &design, &placement, &RouteConfig::new());
            let mut par_cfg = RouteConfig::new();
            par_cfg.parallel = ParallelConfig::with_threads(threads);
            let par = route(&rr, &design, &placement, &par_cfg);
            match (&serial, &par) {
                (Ok(a), Ok(b)) => {
                    if a != b {
                        return diverged(
                            case,
                            format!("net-parallel routing at {threads} threads != serial"),
                        );
                    }
                    None
                }
                (Err(_), Err(_)) => None,
                (a, b) => diverged(
                    case,
                    format!(
                        "success disagreement: serial {} / {threads}-thread {}",
                        if a.is_ok() { "routed" } else { "failed" },
                        if b.is_ok() { "routed" } else { "failed" },
                    ),
                ),
            }
        }
        DiffKind::SweepThreads => {
            let luts = 40 + (case.size as usize % 4) * 5;
            let netlist = || SynthConfig::tiny("diff", luts, case.seed).generate().unwrap();
            let mut serial_cfg = EvaluationConfig::fast(case.seed);
            serial_cfg.parallel = ParallelConfig::serial();
            let mut par_cfg = EvaluationConfig::fast(case.seed);
            par_cfg.parallel = ParallelConfig::with_threads(threads);
            let serial = tradeoff_sweep(netlist(), &serial_cfg, &PAPER_DIVISORS);
            let par = tradeoff_sweep(netlist(), &par_cfg, &PAPER_DIVISORS);
            match (serial, par) {
                (Ok((curve_s, eval_s)), Ok((curve_p, eval_p))) => {
                    if curve_s != curve_p || eval_s.variants != eval_p.variants {
                        return diverged(
                            case,
                            format!("sweep diverged between 1 and {threads} threads"),
                        );
                    }
                    None
                }
                (s, p) => {
                    if s.is_ok() != p.is_ok() {
                        return diverged(
                            case,
                            format!("sweep success disagreement between 1 and {threads} threads"),
                        );
                    }
                    None
                }
            }
        }
        DiffKind::ComplianceThreads => {
            let n = 500 + (case.size as usize % 8) * 250;
            let nominal = NemRelayDevice::scaled_22nm();
            let variation = VariationModel::fabrication_default();
            let levels = ProgrammingLevels::paper_demo();
            let serial = estimate_compliance_with(
                &nominal,
                &variation,
                &levels,
                n,
                case.seed,
                &ParallelConfig::serial(),
            );
            let par = estimate_compliance_with(
                &nominal,
                &variation,
                &levels,
                n,
                case.seed,
                &ParallelConfig::with_threads(threads),
            );
            if serial != par {
                return diverged(
                    case,
                    format!("compliance over {n} samples diverged at {threads} threads"),
                );
            }
            None
        }
        DiffKind::PopulationThreads => {
            let n = 200 + (case.size as usize % 8) * 50;
            let nominal = NemRelayDevice::scaled_22nm();
            let variation = VariationModel::fabrication_default();
            let serial = variation.sample_population(&nominal, n, case.seed);
            let par = variation.sample_population_par(
                &nominal,
                n,
                case.seed,
                &ParallelConfig::with_threads(threads),
            );
            if serial != par {
                return diverged(case, format!("population of {n} diverged at {threads} threads"));
            }
            None
        }
        DiffKind::ParallelSum => {
            let n = case.size as usize;
            let serial: Vec<u64> = (0..n).map(|i| sample(case.seed, i, false)).collect();
            let par = parallel_map_cfg(&ParallelConfig::with_threads(threads), n, |i| {
                sample(case.seed, i, true)
            });
            if let Some(i) = (0..n).find(|&i| serial[i] != par[i]) {
                return diverged(
                    case,
                    format!("index {i} of {n}: serial {} != parallel {}", serial[i], par[i]),
                );
            }
            None
        }
    }
}

/// One indexed draw for the `ParallelSum` family; the parallel path
/// consults the injected threshold.
fn sample(seed: u64, index: usize, parallel: bool) -> u64 {
    let value = mix_seed(seed, index as u64);
    if parallel && (index as u64) >= PERTURB_THRESHOLD.load(Ordering::SeqCst) {
        value.wrapping_add(1)
    } else {
        value
    }
}

/// Builds `n` cases round-robining the families over consecutive seeds,
/// with seed-derived sizes.
pub fn case_matrix(n: usize, seed0: u64, threads: usize) -> Vec<DiffCase> {
    (0..n)
        .map(|i| {
            let kind = ALL_KINDS[i % ALL_KINDS.len()];
            let seed = seed0 + i as u64;
            let size = match kind {
                // The synthetic family gets real indices to cover.
                DiffKind::ParallelSum => 16 + (mix_seed(seed, 1) % 48) as u32,
                _ => (mix_seed(seed, 1) % 16) as u32,
            };
            DiffCase { kind, seed, size, threads }
        })
        .collect()
}

/// Runs every case; returns the divergences (empty = all agreed).
pub fn run_matrix(cases: &[DiffCase]) -> Vec<Divergence> {
    cases.iter().filter_map(run_case).collect()
}

/// Greedily minimizes a diverging case: halve then decrement `size`,
/// drop `threads` to 2, keeping each step only while the divergence
/// persists. Returns the minimal case and its divergence, or `None` if
/// `start` does not actually diverge.
pub fn shrink_case(start: &DiffCase) -> (DiffCase, Option<Divergence>) {
    let mut best = start.clone();
    let Some(mut divergence) = run_case(&best) else {
        return (best, None);
    };
    loop {
        let mut candidates: Vec<DiffCase> = Vec::new();
        if best.size > 0 {
            candidates.push(DiffCase { size: best.size / 2, ..best.clone() });
            candidates.push(DiffCase { size: best.size - 1, ..best.clone() });
        }
        if best.threads > 2 {
            candidates.push(DiffCase { threads: 2, ..best.clone() });
        }
        let mut improved = false;
        for candidate in candidates {
            if let Some(d) = run_case(&candidate) {
                best = candidate;
                divergence = d;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best, Some(divergence));
        }
    }
}

/// A standalone snippet (≤ 10 lines) replaying `case`.
pub fn reproducer(case: &DiffCase) -> String {
    format!(
        "use nemfpga_testkit::differential::{{run_case, DiffCase, DiffKind}};\n\
         let case = DiffCase {{\n\
         \x20   kind: DiffKind::{:?},\n\
         \x20   seed: {},\n\
         \x20   size: {},\n\
         \x20   threads: {},\n\
         }};\n\
         let divergence = run_case(&case).expect(\"case no longer diverges\");\n\
         panic!(\"divergence: {{}}\", divergence.detail);\n",
        case.kind, case.seed, case.size, case.threads
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sum_agrees_when_unperturbed() {
        clear_divergence();
        let case = DiffCase { kind: DiffKind::ParallelSum, seed: 3, size: 64, threads: 4 };
        assert!(run_case(&case).is_none());
    }

    #[test]
    fn route_net_parallel_family_agrees() {
        let case = DiffCase { kind: DiffKind::RouteNetParallel, seed: 9, size: 3, threads: 7 };
        assert!(run_case(&case).is_none());
    }

    #[test]
    fn reproducer_stays_within_ten_lines() {
        let case = DiffCase { kind: DiffKind::RouteRepeat, seed: 1, size: 5, threads: 2 };
        let text = reproducer(&case);
        assert!(text.lines().count() <= 10, "reproducer too long:\n{text}");
        assert!(text.contains("RouteRepeat"));
    }
}
