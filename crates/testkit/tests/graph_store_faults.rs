//! Fault-injection coverage for the `graph.store` site: snapshot-tier
//! failures must degrade the architecture graph store to an in-memory
//! rebuild — never a crash, never a wrong graph — and the build-once
//! coalescing guarantee must hold even while the disk tier is hostile.
//!
//! The store is exercised through isolated `GraphStore` instances (the
//! process-global one belongs to the serving stack), with firing
//! verified through the armed [`FaultScope`].

use std::path::PathBuf;
use std::sync::Arc;

use nemfpga_arch::{graph_digest, ArchParams, GraphStore, Grid};
use nemfpga_testkit::{FaultPlan, FaultSpec, FireRule};

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nemfpga-graph-faults-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn identity() -> (ArchParams, Grid) {
    (ArchParams::paper_table1(), Grid::new(3, 3, 2).expect("grid"))
}

/// One sequential test: the fault registry and the store's snapshot
/// files are shared state, so the scenarios run in a fixed order.
#[test]
fn snapshot_faults_degrade_to_rebuilds_and_builds_stay_coalesced() {
    let (params, grid) = identity();
    let digest = graph_digest(&params, grid, 7);

    // An injected I/O error drops the snapshot tier for that entry:
    // the build still succeeds and no snapshot file appears.
    let dir = temp_dir("io-error");
    {
        let plan =
            FaultPlan::named("io").with_rule("graph.store", FireRule::Always, FaultSpec::IoError);
        let scope = plan.arm();
        let store = GraphStore::new();
        store.set_snapshot_dir(Some(dir.clone()));
        let rr = store.get(&params, grid, 7).expect("build survives the fault");
        assert_eq!(rr.channel_width, 7);
        assert_eq!(scope.hits("graph.store"), 1, "the site must have fired");
        assert!(
            !dir.join(format!("{digest}.nemg")).exists(),
            "an errored snapshot tier must not leave a file behind"
        );
    }

    // Seed a valid snapshot, then corrupt it in flight: the load is a
    // miss, the graph is rebuilt, and a fresh valid frame replaces the
    // damaged one (the next faultless store loads it).
    let dir = temp_dir("corrupt");
    {
        let baseline = GraphStore::new();
        baseline.set_snapshot_dir(Some(dir.clone()));
        baseline.get(&params, grid, 7).expect("seed snapshot");
        let entry = baseline.entry(&digest).expect("entry");
        assert!(!entry.from_snapshot, "first build cannot come from disk");
        assert!(entry.snapshot_bytes > 0, "seeding must persist a frame");

        for spec in [FaultSpec::CorruptBytes, FaultSpec::ShortRead] {
            let plan = FaultPlan::named("damage").with_rule("graph.store", FireRule::Nth(1), spec);
            let _scope = plan.arm();
            let store = GraphStore::new();
            store.set_snapshot_dir(Some(dir.clone()));
            let rr = store.get(&params, grid, 7).expect("rebuild after damage");
            assert_eq!(rr.channel_width, 7);
            let entry = store.entry(&digest).expect("entry");
            assert!(!entry.from_snapshot, "{spec:?}: a damaged frame must read as a miss");
        }

        // The last faulted rebuild rewrote a valid frame.
        let recovered = GraphStore::new();
        recovered.set_snapshot_dir(Some(dir.clone()));
        recovered.get(&params, grid, 7).expect("load rewritten snapshot");
        let entry = recovered.entry(&digest).expect("entry");
        assert!(entry.from_snapshot, "the rewritten snapshot must load cleanly");
    }

    // N racing requests with the disk tier failing under them still
    // coalesce onto exactly one build.
    let dir = temp_dir("race");
    {
        let plan = FaultPlan::named("racing-io").with_rule(
            "graph.store",
            FireRule::Always,
            FaultSpec::IoError,
        );
        let _scope = plan.arm();
        let store = Arc::new(GraphStore::new());
        store.set_snapshot_dir(Some(dir.clone()));
        const RACERS: usize = 8;
        let graphs: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..RACERS)
                .map(|_| {
                    let store = Arc::clone(&store);
                    s.spawn(move || store.get(&params, grid, 7).expect("racing get"))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("racer")).collect()
        });
        for rr in &graphs[1..] {
            assert!(Arc::ptr_eq(&graphs[0], rr), "all racers must share one graph");
        }
        let entry = store.entry(&digest).expect("entry");
        assert_eq!(
            entry.hits,
            (RACERS - 1) as u64,
            "exactly one racer may build; the rest are hits"
        );
    }

    for name in ["io-error", "corrupt", "race"] {
        let _ = std::fs::remove_dir_all(temp_dir(name));
    }
}
