//! Property tests for the fair-share scheduling policy, run through the
//! deterministic simulator (`nemfpga_testkit::sim`). Every test here is
//! pure virtual time: no threads, no sleeps, no wall clock — the same
//! inputs produce the same [`SimReport`] bit-for-bit.

use nemfpga_service::{Lane, QosPolicy};
use nemfpga_testkit::{simulate, SimConfig, SimJob, SimReport};
use proptest::prelude::*;

fn weighted(weights: &[(&str, u32)]) -> QosPolicy {
    QosPolicy {
        weights: weights.iter().map(|(name, w)| ((*name).to_owned(), *w)).collect(),
        ..QosPolicy::default()
    }
}

/// A deterministic job list from an integer seed: arrivals, tenants,
/// lanes, and service times all derived by LCG, no RNG crate needed.
fn jobs_from(
    seed: u64,
    count: usize,
    tenants: &[&str],
    horizon: u64,
    max_service: u64,
) -> Vec<SimJob> {
    let mut state = seed | 1;
    let mut step = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..count)
        .map(|_| SimJob {
            arrival: step() % horizon.max(1),
            tenant: tenants[step() as usize % tenants.len()].to_owned(),
            lane: if step() % 3 == 0 { Lane::Batch } else { Lane::Interactive },
            service: 1 + step() % max_service.max(1),
        })
        .collect()
}

/// Saturating backlog: everyone arrives at t=0 with unit service, so
/// dispatch order is a pure function of the fairness policy.
fn backlog(tenants: &[(&str, usize)]) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for &(tenant, count) in tenants {
        for _ in 0..count {
            jobs.push(SimJob {
                arrival: 0,
                tenant: tenant.to_owned(),
                lane: Lane::Interactive,
                service: 1,
            });
        }
    }
    jobs
}

fn assert_healthy(report: &SimReport) {
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Work conservation and completeness hold for arbitrary schedules:
    /// every admitted job completes, no worker idles while eligible
    /// work waits, and nothing is left queued at quiescence.
    #[test]
    fn arbitrary_schedules_are_work_conserving(
        seed in any::<u64>(),
        count in 1usize..60,
        workers in 1usize..5,
        max_queued in 0usize..6,
        max_inflight in 0usize..4,
    ) {
        let policy = QosPolicy { max_queued, max_inflight, ..QosPolicy::default() };
        let jobs = jobs_from(seed, count, &["a", "b", "c"], 40, 7);
        let report = simulate(&SimConfig { policy, workers }, &jobs);
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        prop_assert_eq!(report.completions.len() + report.rejections.len(), jobs.len());
    }

    /// Under sustained backlog, 3:2:1 weights converge to 3:2:1
    /// completion shares within 10% over any window long enough to
    /// smooth the discretization.
    #[test]
    fn weighted_shares_converge_to_the_configured_ratio(
        per_tenant in 30usize..90,
        workers in 1usize..4,
    ) {
        let policy = weighted(&[("a", 3), ("b", 2), ("c", 1)]);
        let jobs = backlog(&[("a", per_tenant), ("b", per_tenant), ("c", per_tenant)]);
        let report = simulate(&SimConfig { policy, workers }, &jobs);
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);

        // Measure over the window where every tenant is still
        // backlogged: the first 6/10 of all dispatches (the lightest
        // tenant holds per_tenant jobs = 1/6 of the window).
        let window = report.dispatches.len() * 6 / 10;
        let mut counts = std::collections::BTreeMap::new();
        for dispatch in &report.dispatches[..window] {
            *counts.entry(dispatch.tenant.as_str()).or_insert(0usize) += 1;
        }
        let total = window as f64;
        for (tenant, expected) in [("a", 3.0 / 6.0), ("b", 2.0 / 6.0), ("c", 1.0 / 6.0)] {
            let got = *counts.get(tenant).unwrap_or(&0) as f64 / total;
            prop_assert!(
                (got - expected).abs() <= 0.10,
                "tenant {tenant}: share {got:.3}, expected {expected:.3} ± 0.10"
            );
        }
    }

    /// A flood of interactive work cannot starve the batch lane: with
    /// `batch_every = n`, every window of `n` consecutive dispatches
    /// contains a batch job while batch work is pending.
    #[test]
    fn batch_lane_is_never_starved(
        interactive in 20usize..60,
        batch in 4usize..12,
        batch_every in 2usize..6,
    ) {
        let policy = QosPolicy { batch_every, ..QosPolicy::default() };
        let mut jobs = backlog(&[("flood", interactive)]);
        for _ in 0..batch {
            jobs.push(SimJob {
                arrival: 0,
                tenant: "slow".to_owned(),
                lane: Lane::Batch,
                service: 1,
            });
        }
        let report = simulate(&SimConfig { policy, workers: 1 }, &jobs);
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);

        // While batch jobs remain pending, no `batch_every`-wide window
        // of dispatches is all-interactive.
        let batch_positions: Vec<usize> = report
            .dispatches
            .iter()
            .enumerate()
            .filter(|(_, d)| d.lane == Lane::Batch)
            .map(|(index, _)| index)
            .collect();
        prop_assert_eq!(batch_positions.len(), batch);
        let mut last = None;
        for &position in &batch_positions {
            let gap = position - last.map_or(0, |p: usize| p + 1);
            prop_assert!(
                gap < batch_every,
                "batch lane waited {gap} dispatches (batch_every = {batch_every})"
            );
            last = Some(position);
        }
    }

    /// Queue quotas are exact: a tenant's waiting depth never exceeds
    /// `max_queued` (checked against the queue's own high-water mark),
    /// and every submission beyond the cap is rejected, not dropped.
    #[test]
    fn queue_quota_is_exact_under_bursts(
        seed in any::<u64>(),
        count in 10usize..80,
        max_queued in 1usize..5,
    ) {
        let policy = QosPolicy { max_queued, ..QosPolicy::default() };
        // Single worker + bursty arrivals forces queue buildup.
        let jobs = jobs_from(seed, count, &["a", "b"], 10, 4);
        let report = simulate(&SimConfig { policy, workers: 1 }, &jobs);
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        for stats in &report.stats {
            prop_assert!(
                stats.peak_queued <= max_queued,
                "tenant {} peaked at {} queued (quota {})",
                stats.tenant, stats.peak_queued, max_queued
            );
        }
        let rejected: u64 = report.stats.iter().map(|s| s.rejected).sum();
        prop_assert_eq!(rejected as usize, report.rejections.len());
        prop_assert_eq!(report.completions.len() + report.rejections.len(), jobs.len());
    }

    /// Inflight caps hold at every instant: with `max_inflight = m`, a
    /// tenant never has more than `m` jobs running concurrently.
    #[test]
    fn inflight_cap_holds_at_every_instant(
        seed in any::<u64>(),
        count in 10usize..60,
        workers in 2usize..6,
        max_inflight in 1usize..3,
    ) {
        let policy = QosPolicy { max_inflight, ..QosPolicy::default() };
        let jobs = jobs_from(seed, count, &["a", "b"], 20, 6);
        let report = simulate(&SimConfig { policy, workers }, &jobs);
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        for stats in &report.stats {
            prop_assert!(
                stats.peak_inflight <= max_inflight,
                "tenant {} peaked at {} inflight (cap {})",
                stats.tenant, stats.peak_inflight, max_inflight
            );
        }
    }

    /// Within one (tenant, lane) class, dispatch order is FIFO by
    /// submission order — fairness reorders *across* classes only.
    #[test]
    fn dispatch_is_fifo_within_a_class(
        seed in any::<u64>(),
        count in 5usize..80,
        workers in 1usize..4,
    ) {
        let jobs = jobs_from(seed, count, &["a", "b", "c"], 1, 5); // all arrive at t=0
        let report = simulate(&SimConfig { policy: QosPolicy::default(), workers }, &jobs);
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        let mut last_in_class: std::collections::BTreeMap<(String, Lane), u64> =
            std::collections::BTreeMap::new();
        for dispatch in &report.dispatches {
            let class = (dispatch.tenant.clone(), dispatch.lane);
            if let Some(&previous) = last_in_class.get(&class) {
                prop_assert!(
                    previous < dispatch.job,
                    "class {class:?} dispatched job {} after job {previous}",
                    dispatch.job
                );
            }
            last_in_class.insert(class, dispatch.job);
        }
    }

    /// The whole simulation is bit-reproducible: identical inputs give
    /// identical reports — dispatch order, completions, rejections,
    /// stats, everything.
    #[test]
    fn reports_are_bit_reproducible_from_the_seed(
        seed in any::<u64>(),
        count in 1usize..60,
        workers in 1usize..5,
    ) {
        let policy = QosPolicy {
            weights: vec![("a".to_owned(), 3), ("b".to_owned(), 2)],
            max_queued: 4,
            max_inflight: 2,
            ..QosPolicy::default()
        };
        let jobs = jobs_from(seed, count, &["a", "b", "c"], 25, 6);
        let config = SimConfig { policy, workers };
        let first = simulate(&config, &jobs);
        let second = simulate(&config, &jobs);
        prop_assert_eq!(first, second);
    }
}

/// Pinned end-to-end example (not a property): 3:2:1 weights over a
/// three-tenant backlog on one worker give exactly 3:2:1 dispatches in
/// every aligned window of six — the discrete WFQ schedule is periodic.
#[test]
fn pinned_example_schedule_is_periodic() {
    let policy = weighted(&[("a", 3), ("b", 2), ("c", 1)]);
    let jobs = backlog(&[("a", 30), ("b", 20), ("c", 10)]);
    let report = simulate(&SimConfig { policy, workers: 1 }, &jobs);
    assert_healthy(&report);
    assert_eq!(report.completions.len(), 60);
    for window in report.dispatches[..60].chunks(6) {
        let a = window.iter().filter(|d| d.tenant == "a").count();
        let b = window.iter().filter(|d| d.tenant == "b").count();
        let c = window.iter().filter(|d| d.tenant == "c").count();
        assert_eq!((a, b, c), (3, 2, 1), "window {window:?}");
    }
}
