//! Differential suite: a small equivalence matrix must be divergence-
//! free, and an injected divergence must be found and shrunk to the
//! provably minimal reproducer.

use nemfpga_testkit::differential::{
    case_matrix, clear_divergence, inject_divergence, reproducer, run_matrix, shrink_case, DiffKind,
};
use nemfpga_testkit::DiffCase;

/// The perturbation threshold is process-global; tests touching the
/// `ParallelSum` family must not interleave with the injection test.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn small_matrix_has_no_divergences() {
    let _guard = exclusive();
    clear_divergence();
    let cases = case_matrix(14, 0, 4);
    let divergences = run_matrix(&cases);
    assert!(
        divergences.is_empty(),
        "divergences:\n{}",
        divergences
            .iter()
            .map(|d| format!("  {:?}: {}", d.case, d.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn matrix_is_invariant_across_thread_counts() {
    let _guard = exclusive();
    clear_divergence();
    // The thread-sensitive families only; the single-schedule route
    // families ignore `threads` and are covered above.
    let cases: Vec<DiffCase> = case_matrix(14, 20, 7)
        .into_iter()
        .filter(|c| {
            matches!(
                c.kind,
                DiffKind::RouteNetParallel
                    | DiffKind::SweepThreads
                    | DiffKind::ComplianceThreads
                    | DiffKind::PopulationThreads
                    | DiffKind::ParallelSum
            )
        })
        .collect();
    assert!(!cases.is_empty());
    assert!(run_matrix(&cases).is_empty(), "divergence at 7 threads");
}

#[test]
fn injected_divergence_shrinks_to_the_minimal_reproducer() {
    let _guard = exclusive();
    let threshold = 5u64;
    inject_divergence(threshold);
    let start = DiffCase { kind: DiffKind::ParallelSum, seed: 1, size: 64, threads: 6 };
    let (minimal, divergence) = shrink_case(&start);
    clear_divergence();

    let divergence = divergence.expect("injected divergence was not detected");
    assert_eq!(
        minimal.size,
        threshold as u32 + 1,
        "shrinker stopped early: {minimal:?} ({})",
        divergence.detail
    );
    assert_eq!(minimal.threads, 2, "shrinker left extra threads: {minimal:?}");

    let text = reproducer(&minimal);
    assert!(text.lines().count() <= 10, "reproducer exceeds 10 lines:\n{text}");
    assert!(text.contains("ParallelSum") && text.contains("size: 6"));
}

#[test]
fn shrink_refuses_a_case_that_does_not_diverge() {
    let _guard = exclusive();
    clear_divergence();
    let start = DiffCase { kind: DiffKind::ParallelSum, seed: 2, size: 32, threads: 4 };
    let (back, divergence) = shrink_case(&start);
    assert!(divergence.is_none());
    assert_eq!(back, start);
}
