//! Chaos suite: fixed and randomized fault plans against the live serve
//! loop, plus the proof that the guarded bugs are actually guarded.
//!
//! Every run here is seeded; a failure prints the plan description and
//! the seed, and `cargo run -p nemfpga-testkit --bin chaos -- --seed N`
//! replays it (see TESTING.md).

use std::time::Duration;

use nemfpga_testkit::chaos::{double_check_race_plan, BugSwitch};
use nemfpga_testkit::{
    run_chaos, run_tenants, ChaosConfig, ChaosReport, FaultPlan, FaultSpec, FireRule, TenantsConfig,
};

fn cfg(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        clients: 4,
        requests_per_client: 10,
        job_timeout: Duration::from_secs(5),
        ..ChaosConfig::default()
    }
}

fn assert_clean(report: &ChaosReport) {
    assert!(
        report.violations.is_empty(),
        "plan `{}` seed {} broke invariants:\n  {}",
        report.plan,
        report.seed,
        report.violations.join("\n  ")
    );
}

#[test]
fn clean_run_without_faults_holds_every_invariant() {
    let report = run_chaos(&cfg(100), &FaultPlan::named("no-faults"));
    assert_clean(&report);
    assert!(report.computes() > 0, "the storm never reached the executor");
}

#[test]
fn disk_corruption_degrades_to_recompute_not_wrong_bytes() {
    let plan = FaultPlan::named("corrupt-disk")
        .with_rule("cache.read_disk", FireRule::Always, FaultSpec::CorruptBytes)
        .with_rule("cache.write_disk", FireRule::EveryNth(2), FaultSpec::ShortRead);
    assert_clean(&run_chaos(&cfg(101), &plan));
}

#[test]
fn disk_io_errors_are_absorbed() {
    let plan = FaultPlan::named("disk-io-errors")
        .with_rule("cache.read_disk", FireRule::EveryNth(2), FaultSpec::IoError)
        .with_rule("cache.write_disk", FireRule::EveryNth(3), FaultSpec::IoError);
    assert_clean(&run_chaos(&cfg(102), &plan));
}

#[test]
fn panicking_and_failing_executors_settle_every_job() {
    let plan = FaultPlan::named("executor-mayhem")
        .with_rule("scheduler.execute", FireRule::EveryNth(3), FaultSpec::Panic)
        .with_rule("scheduler.execute", FireRule::EveryNth(4), FaultSpec::ExecError);
    assert_clean(&run_chaos(&cfg(103), &plan));
}

#[test]
fn deadline_skew_cannot_wedge_the_table() {
    let plan = FaultPlan::named("clock-skew")
        .with_rule("scheduler.deadline", FireRule::EveryNth(2), FaultSpec::SkewMillis(10_000))
        .with_rule("scheduler.execute", FireRule::Always, FaultSpec::DelayMillis(5));
    assert_clean(&run_chaos(&cfg(104), &plan));
}

#[test]
fn queue_pressure_bursts_reject_cleanly() {
    let plan = FaultPlan::named("queue-pressure").with_rule(
        "scheduler.execute",
        FireRule::FirstN(6),
        FaultSpec::DelayMillis(60),
    );
    let mut config = cfg(105);
    config.queue_capacity = 2;
    config.distinct_seeds = 12;
    config.worker_threads = 1;
    assert_clean(&run_chaos(&config, &plan));
}

#[test]
fn randomized_plans_hold_the_invariants() {
    for seed in 0..5 {
        let plan = FaultPlan::randomized(seed);
        assert_clean(&run_chaos(&cfg(seed), &plan));
    }
}

#[test]
fn skip_double_check_bug_is_caught_by_the_compute_invariant() {
    let plan = double_check_race_plan();
    let mut config = cfg(106);
    config.bug = Some(BugSwitch::SkipCacheDoubleCheck);
    config.clients = 6;
    config.distinct_seeds = 1;
    let report = run_chaos(&config, &plan);
    assert!(
        report.violations.iter().any(|v| v.contains("computed")),
        "dropping the under-lock double-check went unnoticed; violations: {:?}",
        report.violations
    );
    // And the guard, present, makes the same storm clean.
    config.bug = None;
    assert_clean(&run_chaos(&config, &plan));
}

#[test]
fn tenant_floods_hold_every_qos_invariant() {
    // One clean and one randomized-fault flood; the seeded sweep lives
    // in `chaos --tenants` (scripts/check.sh --chaos).
    for (seed, plan) in [(200, FaultPlan::named("no-faults")), (201, FaultPlan::randomized(201))] {
        let config = TenantsConfig { seed, ..TenantsConfig::default() };
        let report = run_tenants(&config, &plan);
        assert!(
            report.violations.is_empty(),
            "tenants plan `{}` seed {} broke QoS invariants:\n  {}",
            report.plan,
            report.seed,
            report.violations.join("\n  ")
        );
    }
}

#[test]
fn leak_inflight_bug_is_caught_by_the_drain_invariant() {
    let mut config = cfg(107);
    config.bug = Some(BugSwitch::LeakInflight);
    let report = run_chaos(&config, &FaultPlan::named("no-faults"));
    assert!(
        report.violations.iter().any(|v| v.contains("in-flight")),
        "leaked in-flight entries went unnoticed; violations: {:?}",
        report.violations
    );
}
