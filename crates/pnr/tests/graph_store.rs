//! Integration contract of the architecture graph store against the
//! routing flow: a full W_min binary search performs exactly one CSR
//! build per *distinct* `(params, grid, W)` identity — verified through
//! the `graph_builds` engine counter — and N racing requesters coalesce
//! onto a single build.
//!
//! Engine counters are process-global, so everything lives in one
//! sequential `#[test]` (Rust runs tests within a binary concurrently;
//! a second test would race the counter deltas).

use nemfpga_arch::store::{graph_digest, shared_rr_graph, GraphStore};
use nemfpga_arch::{ArchParams, Grid};
use nemfpga_netlist::synth::SynthConfig;
use nemfpga_obs::engine_registry;
use nemfpga_pnr::channel::find_min_channel_width;
use nemfpga_pnr::pack::pack;
use nemfpga_pnr::place::{place, PlaceConfig};
use nemfpga_pnr::route::RouteConfig;

#[test]
fn wmin_search_builds_each_distinct_graph_once() {
    let builds = engine_registry().counter("graph_builds");
    let hits = engine_registry().counter("graph_store_hits");

    // --- Part 1: N racing requesters, exactly one build. -------------
    let params = ArchParams::paper_table1();
    let race_grid = Grid::new(3, 3, 2).expect("grid builds");
    let before = builds.get();
    let hits_before = hits.get();
    const RACERS: usize = 8;
    let graphs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..RACERS)
            .map(|_| scope.spawn(|| shared_rr_graph(&params, race_grid, 7).expect("builds")))
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    assert_eq!(builds.get() - before, 1, "racing requesters must coalesce onto one build");
    assert_eq!(hits.get() - hits_before, RACERS as u64 - 1);
    for pair in graphs.windows(2) {
        assert!(std::sync::Arc::ptr_eq(&pair[0], &pair[1]), "all racers share one graph");
    }
    let entry = GraphStore::global()
        .entry(&graph_digest(&params, race_grid, 7))
        .expect("built graph is listed");
    assert_eq!(entry.hits, RACERS as u64 - 1);
    assert_eq!(entry.channel_width, 7);

    // --- Part 2: a full W_min search builds one graph per distinct W. -
    // Distinct segment length keeps these identities disjoint from the
    // race above (and from anything else this process touched).
    let mut params = ArchParams::paper_table1();
    params.segment_length = 3;
    let design =
        pack(SynthConfig::tiny("t", 60, 9).generate().expect("generates"), &params).expect("packs");
    let grid = Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)
        .expect("grid");
    let placement = place(&design, grid, &PlaceConfig::fast(9)).expect("places");

    let before = builds.get();
    let search = find_min_channel_width(&params, &design, &placement, &RouteConfig::new(), 8, 256)
        .expect("finds W_min");
    let distinct: std::collections::HashSet<usize> =
        search.attempts.iter().map(|&(w, _)| w).collect();
    assert_eq!(
        builds.get() - before,
        distinct.len() as u64,
        "one build per distinct probed width: attempts {:?}",
        search.attempts
    );

    // A second identical search is all hits — zero new builds.
    let before = builds.get();
    let hits_before = hits.get();
    let again = find_min_channel_width(&params, &design, &placement, &RouteConfig::new(), 8, 256)
        .expect("finds W_min again");
    assert_eq!(builds.get() - before, 0, "repeat search must not rebuild");
    assert_eq!(hits.get() - hits_before, again.attempts.len() as u64);
    assert_eq!(again.w_min, search.w_min);
}
