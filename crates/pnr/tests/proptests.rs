//! Property-based tests of the CAD substrate: packing limits, placement
//! legality, and routing validity hold for arbitrary small designs.

use nemfpga_arch::grid::Grid;
use nemfpga_arch::params::ArchParams;
use nemfpga_netlist::cell::CellKind;
use nemfpga_netlist::ids::NetId;
use nemfpga_netlist::synth::SynthConfig;
use nemfpga_pnr::pack::{pack, BlockKind};
use nemfpga_pnr::place::{check_legal, place, PlaceConfig};
use nemfpga_pnr::route::{check_routing, route, RouteConfig};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packing never violates the cluster-size or input-pin limits and
    /// never loses a cell.
    #[test]
    fn packing_respects_architecture_limits(
        luts in 5usize..120,
        seed in 0u64..500,
        latch_pct in 0u32..50,
    ) {
        let params = ArchParams::paper_table1();
        let mut cfg = SynthConfig::tiny("prop", luts, seed);
        cfg.latch_fraction = latch_pct as f64 / 100.0;
        let netlist = cfg.generate().expect("generates");
        let total_cells = netlist.cells().len();
        let design = pack(netlist, &params).expect("packs");

        let mut seen = HashSet::new();
        for block in design.blocks() {
            for c in &block.cells {
                prop_assert!(seen.insert(*c), "cell in two blocks");
            }
            if block.kind != BlockKind::Logic {
                prop_assert_eq!(block.cells.len(), 1);
                continue;
            }
            let luts_in = block
                .cells
                .iter()
                .filter(|c| matches!(design.netlist().cell(**c).kind, CellKind::Lut(_)))
                .count();
            prop_assert!(luts_in <= params.cluster_size);
            // Distinct external input nets within I.
            let inside: HashSet<_> = block.cells.iter().copied().collect();
            let mut ext: HashSet<NetId> = HashSet::new();
            for &c in &block.cells {
                for &input in &design.netlist().cell(c).inputs {
                    let driver = design.netlist().net(input).driver.expect("driven");
                    if !inside.contains(&driver) {
                        ext.insert(input);
                    }
                }
            }
            prop_assert!(ext.len() <= params.lb_inputs, "{} external inputs", ext.len());
        }
        prop_assert_eq!(seen.len(), total_cells);
    }

    /// Inter-block nets never list the driver as a sink and never repeat a
    /// sink.
    #[test]
    fn packed_nets_are_clean(luts in 5usize..100, seed in 0u64..500) {
        let params = ArchParams::paper_table1();
        let netlist = SynthConfig::tiny("prop", luts, seed).generate().expect("generates");
        let design = pack(netlist, &params).expect("packs");
        for pn in design.nets() {
            prop_assert!(!pn.sinks.is_empty());
            prop_assert!(!pn.sinks.contains(&pn.driver));
            let distinct: HashSet<_> = pn.sinks.iter().collect();
            prop_assert_eq!(distinct.len(), pn.sinks.len());
        }
    }

    /// Placement is always legal for any seed, and deterministic per seed.
    #[test]
    fn placement_always_legal(luts in 10usize..80, seed in 0u64..300) {
        let params = ArchParams::paper_table1();
        let netlist = SynthConfig::tiny("prop", luts, seed).generate().expect("generates");
        let design = pack(netlist, &params).expect("packs");
        let grid = Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)
            .expect("sizes");
        let a = place(&design, grid, &PlaceConfig::fast(seed)).expect("places");
        check_legal(&design, &a).expect("legal");
        let b = place(&design, grid, &PlaceConfig::fast(seed)).expect("places");
        prop_assert_eq!(a.locs, b.locs);
    }

    /// Incremental rerouting never leaves an overused node that the
    /// classic full-reroute schedule would resolve within the same
    /// iteration budget: wherever full rip-up succeeds, incremental
    /// succeeds too, with a legal routing and no more maze expansions.
    #[test]
    fn incremental_resolves_whatever_full_resolves(
        luts in 10usize..60,
        seed in 0u64..200,
        width in 10usize..28,
    ) {
        let params = ArchParams::paper_table1();
        let netlist = SynthConfig::tiny("prop", luts, seed).generate().expect("generates");
        let design = pack(netlist, &params).expect("packs");
        let grid = Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)
            .expect("sizes");
        let placement = place(&design, grid, &PlaceConfig::fast(seed)).expect("places");
        let rr = nemfpga_arch::build_rr_graph(&params, grid, width).expect("builds");

        let incr_cfg = RouteConfig::new();
        let mut full_cfg = RouteConfig::new();
        full_cfg.incremental = false;

        if let Ok(full) = route(&rr, &design, &placement, &full_cfg) {
            let incr = route(&rr, &design, &placement, &incr_cfg);
            prop_assert!(incr.is_ok(), "incremental failed where full succeeded");
            let incr = incr.expect("checked");
            check_routing(&rr, &design, &placement, &incr).expect("verifies");
            prop_assert!(
                incr.total_reroutes() <= full.total_reroutes(),
                "incremental did more work ({} > {})",
                incr.total_reroutes(),
                full.total_reroutes()
            );
        }
    }

    /// Whenever the router reports success, the routing withstands full
    /// verification (connectivity, tree shape, capacity).
    #[test]
    fn successful_routings_verify(luts in 10usize..60, seed in 0u64..200) {
        let params = ArchParams::paper_table1();
        let netlist = SynthConfig::tiny("prop", luts, seed).generate().expect("generates");
        let design = pack(netlist, &params).expect("packs");
        let grid = Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)
            .expect("sizes");
        let placement = place(&design, grid, &PlaceConfig::fast(seed)).expect("places");
        // A generous width so most cases route; failures are skipped (the
        // property is about soundness of success, not completeness).
        let rr = nemfpga_arch::build_rr_graph(&params, grid, 40).expect("builds");
        if let Ok(routing) = route(&rr, &design, &placement, &RouteConfig::new()) {
            check_routing(&rr, &design, &placement, &routing).expect("verifies");
            prop_assert!(routing.wirelength_tiles > 0 || design.nets().is_empty());
        }
    }
}
