//! Simulated-annealing placement (the VPR placer's adaptive schedule).
//!
//! Cost is the classic bounding-box wirelength: for each inter-block net,
//! `q(t)·(bb_x + bb_y)` where `q(t)` compensates for the bounding box
//! underestimating wiring of high-fanout nets. The annealing schedule
//! adapts `α` and the move range limit to the acceptance rate, following
//! Betz & Rose.

use crate::error::PnrError;
use crate::pack::{BlockId, BlockKind, PackedDesign};
use nemfpga_arch::grid::{Grid, TileKind};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Placement configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaceConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Moves per temperature = `inner_num · blocks^(4/3)`.
    pub inner_num: f64,
    /// Stop when `T < exit_factor · cost / nets`.
    pub exit_factor: f64,
}

impl PlaceConfig {
    /// The default VPR-like schedule.
    pub fn new(seed: u64) -> Self {
        Self { seed, inner_num: 10.0, exit_factor: 0.005 }
    }

    /// A faster, lower-quality schedule for tests and quick sweeps.
    pub fn fast(seed: u64) -> Self {
        Self { seed, inner_num: 1.0, exit_factor: 0.01 }
    }
}

/// A legal placement: one grid location per block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The grid placed onto.
    pub grid: Grid,
    /// Location of each block, indexed by [`BlockId`].
    pub locs: Vec<(usize, usize)>,
    /// Final bounding-box cost.
    pub cost: f64,
}

impl Placement {
    /// Location of `block`.
    #[inline]
    pub fn loc(&self, block: BlockId) -> (usize, usize) {
        self.locs[block.index()]
    }

    /// Total bounding-box wirelength of the placement under `design`.
    pub fn wirelength(&self, design: &PackedDesign) -> f64 {
        design.nets().iter().map(|n| net_cost(self, n)).sum()
    }
}

/// Per-connection timing weights for timing-driven placement.
///
/// `weight[net][k]` multiplies the estimated delay (Manhattan distance) of
/// the `k`-th sink of packed net `net`; VPR uses `criticality^e` here.
/// Build from a timing report with
/// [`crate::timing::connection_criticalities`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingWeights {
    /// Per-net, per-sink weights aligned with `PackedDesign::nets`.
    pub weight: Vec<Vec<f64>>,
    /// Trade-off in `[0, 1]`: 0 = pure wirelength, 1 = pure timing.
    pub lambda: f64,
}

impl TimingWeights {
    /// Validates shape against a design and clamps lambda.
    ///
    /// # Errors
    ///
    /// Returns [`PnrError::Inconsistent`] when the weight table's shape
    /// does not match the design's nets.
    pub fn validate(&self, design: &PackedDesign) -> Result<(), PnrError> {
        if self.weight.len() != design.nets().len() {
            return Err(PnrError::Inconsistent {
                message: format!(
                    "timing weights cover {} nets, design has {}",
                    self.weight.len(),
                    design.nets().len()
                ),
            });
        }
        for (w, pn) in self.weight.iter().zip(design.nets()) {
            if w.len() != pn.sinks.len() {
                return Err(PnrError::Inconsistent {
                    message: "timing weight arity mismatch".to_owned(),
                });
            }
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(PnrError::Inconsistent {
                message: format!("lambda {} outside [0,1]", self.lambda),
            });
        }
        Ok(())
    }
}

/// Fanout compensation `q(t)` (Cheng's crossing-count correction, as used
/// by VPR; linearized beyond the tabulated range).
fn q_factor(terminals: usize) -> f64 {
    const TABLE: [f64; 10] = [1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991];
    if terminals == 0 {
        return 0.0;
    }
    if terminals <= TABLE.len() {
        TABLE[terminals - 1]
    } else {
        1.3991 + (terminals - TABLE.len()) as f64 * 0.02616
    }
}

fn net_cost(placement: &Placement, net: &crate::pack::PackedNet) -> f64 {
    let (mut min_x, mut max_x) = (usize::MAX, 0usize);
    let (mut min_y, mut max_y) = (usize::MAX, 0usize);
    let mut terminals = 1;
    let (dx, dy) = placement.loc(net.driver);
    min_x = min_x.min(dx);
    max_x = max_x.max(dx);
    min_y = min_y.min(dy);
    max_y = max_y.max(dy);
    for &s in &net.sinks {
        let (x, y) = placement.loc(s);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
        terminals += 1;
    }
    q_factor(terminals) * ((max_x - min_x) as f64 + (max_y - min_y) as f64)
}

/// Distance-weighted timing cost of one net under `weights_for_net`.
fn net_timing_cost(
    placement: &Placement,
    net: &crate::pack::PackedNet,
    weights_for_net: &[f64],
) -> f64 {
    let d = placement.loc(net.driver);
    net.sinks
        .iter()
        .zip(weights_for_net)
        .map(|(s, w)| w * Grid::manhattan(d, placement.loc(*s)) as f64)
        .sum()
}

/// The annealing cost model: bounding-box wirelength, optionally blended
/// with criticality-weighted distance (timing-driven placement).
struct CostModel<'a> {
    weights: Option<&'a TimingWeights>,
    /// Scale factor bringing the timing term to the wirelength term's
    /// magnitude (computed once on the initial placement).
    timing_norm: f64,
}

impl CostModel<'_> {
    fn net(&self, placement: &Placement, ni: usize, net: &crate::pack::PackedNet) -> f64 {
        match self.weights {
            None => net_cost(placement, net),
            Some(w) => {
                (1.0 - w.lambda) * net_cost(placement, net)
                    + w.lambda * self.timing_norm * net_timing_cost(placement, net, &w.weight[ni])
            }
        }
    }

    fn total(&self, placement: &Placement, design: &PackedDesign) -> f64 {
        design.nets().iter().enumerate().map(|(ni, n)| self.net(placement, ni, n)).sum()
    }
}

/// Places `design` on `grid` with simulated annealing.
///
/// # Errors
///
/// Returns [`PnrError::DoesNotFit`] when the grid lacks LB tiles or pad
/// slots.
///
/// # Examples
///
/// ```
/// use nemfpga_arch::grid::Grid;
/// use nemfpga_arch::params::ArchParams;
/// use nemfpga_netlist::synth::SynthConfig;
/// use nemfpga_pnr::pack::pack;
/// use nemfpga_pnr::place::{place, PlaceConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = ArchParams::paper_table1();
/// let design = pack(SynthConfig::tiny("t", 40, 1).generate()?, &params)?;
/// let grid = Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)?;
/// let placement = place(&design, grid, &PlaceConfig::fast(1))?;
/// assert_eq!(placement.locs.len(), design.blocks().len());
/// # Ok(())
/// # }
/// ```
pub fn place(
    design: &PackedDesign,
    grid: Grid,
    config: &PlaceConfig,
) -> Result<Placement, PnrError> {
    place_impl(design, grid, config, None)
}

/// Timing-driven placement: blends bounding-box wirelength with
/// criticality-weighted source-sink distance (the VPR timing-driven
/// placer's cost shape). Build `weights` from a routed-and-analyzed
/// seed implementation via [`crate::timing::connection_criticalities`].
///
/// # Errors
///
/// Returns [`PnrError::Inconsistent`] for malformed weights, plus any
/// placement error.
pub fn place_timing_driven(
    design: &PackedDesign,
    grid: Grid,
    config: &PlaceConfig,
    weights: &TimingWeights,
) -> Result<Placement, PnrError> {
    weights.validate(design)?;
    place_impl(design, grid, config, Some(weights))
}

fn place_impl(
    design: &PackedDesign,
    grid: Grid,
    config: &PlaceConfig,
    weights: Option<&TimingWeights>,
) -> Result<Placement, PnrError> {
    let lb_tiles = grid.lb_tiles();
    let io_tiles = grid.io_tiles();
    let num_lbs = design.num_logic_blocks();
    let num_pads = design.num_pads();
    if lb_tiles.len() < num_lbs {
        return Err(PnrError::DoesNotFit {
            what: "logic blocks",
            capacity: lb_tiles.len(),
            required: num_lbs,
        });
    }
    if grid.io_capacity() < num_pads {
        return Err(PnrError::DoesNotFit {
            what: "io pads",
            capacity: grid.io_capacity(),
            required: num_pads,
        });
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // --- Initial placement: LBs one per tile, pads round-robin on slots ---
    let mut locs = vec![(0usize, 0usize); design.blocks().len()];
    let mut lb_of_tile: std::collections::HashMap<(usize, usize), Option<BlockId>> =
        lb_tiles.iter().map(|t| (*t, None)).collect();
    let mut pads_of_tile: std::collections::HashMap<(usize, usize), Vec<BlockId>> =
        io_tiles.iter().map(|t| (*t, Vec::new())).collect();

    let mut lb_cursor = 0usize;
    let mut io_cursor = 0usize;
    for (i, block) in design.blocks().iter().enumerate() {
        let id = BlockId(i as u32);
        match block.kind {
            BlockKind::Logic => {
                let t = lb_tiles[lb_cursor];
                lb_cursor += 1;
                locs[i] = t;
                lb_of_tile.insert(t, Some(id));
            }
            BlockKind::InputPad | BlockKind::OutputPad => {
                // Spread pads across tiles, io_rate per tile.
                let t = io_tiles[io_cursor / grid.io_rate % io_tiles.len()];
                io_cursor += 1;
                locs[i] = t;
                pads_of_tile.get_mut(&t).expect("io tile").push(id);
            }
        }
    }

    let mut placement = Placement { grid, locs, cost: 0.0 };
    // Normalize the timing term to the wirelength term's magnitude on the
    // initial placement, so lambda blends comparable quantities.
    let mut model = CostModel { weights, timing_norm: 1.0 };
    if let Some(w) = weights {
        let bb = placement.wirelength(design);
        let t: f64 = design
            .nets()
            .iter()
            .enumerate()
            .map(|(ni, n)| net_timing_cost(&placement, n, &w.weight[ni]))
            .sum();
        if t > 0.0 && bb > 0.0 {
            model.timing_norm = bb / t;
        }
    }
    placement.cost = model.total(&placement, design);

    // Per-block net membership for incremental cost updates.
    let mut nets_of_block: Vec<Vec<usize>> = vec![Vec::new(); design.blocks().len()];
    for (ni, net) in design.nets().iter().enumerate() {
        nets_of_block[net.driver.index()].push(ni);
        for s in &net.sinks {
            nets_of_block[s.index()].push(ni);
        }
    }
    for v in &mut nets_of_block {
        v.sort();
        v.dedup();
    }

    let movable: Vec<BlockId> = (0..design.blocks().len() as u32).map(BlockId).collect();
    if movable.is_empty() || design.nets().is_empty() {
        return Ok(placement);
    }

    // --- Initial temperature: 20 × std-dev of random move deltas ---
    let mut deltas = Vec::new();
    for _ in 0..(50.min(10 * movable.len())) {
        let b = movable[rng.gen_range(0..movable.len())];
        if let Some(delta) = try_move(
            design,
            &mut placement,
            &model,
            &lb_tiles,
            &io_tiles,
            &mut lb_of_tile,
            &mut pads_of_tile,
            &nets_of_block,
            b,
            &mut rng,
            f64::INFINITY, // always accept while measuring
            1.0,
        ) {
            deltas.push(delta);
        }
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
    let var = deltas.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / deltas.len().max(1) as f64;
    let mut temperature = 20.0 * var.sqrt().max(1.0);

    let moves_per_temp =
        (config.inner_num * (movable.len() as f64).powf(4.0 / 3.0)).ceil() as usize;
    let mut rlim = grid.total_width().max(grid.total_height()) as f64;

    loop {
        let mut accepted = 0usize;
        for _ in 0..moves_per_temp {
            let b = movable[rng.gen_range(0..movable.len())];
            if try_move(
                design,
                &mut placement,
                &model,
                &lb_tiles,
                &io_tiles,
                &mut lb_of_tile,
                &mut pads_of_tile,
                &nets_of_block,
                b,
                &mut rng,
                temperature,
                rlim,
            )
            .is_some()
            {
                accepted += 1;
            }
        }
        let rate = accepted as f64 / moves_per_temp as f64;
        // VPR's adaptive alpha.
        let alpha = if rate > 0.96 {
            0.5
        } else if rate > 0.8 {
            0.9
        } else if rate > 0.15 {
            0.95
        } else {
            0.8
        };
        temperature *= alpha;
        rlim = (rlim * (1.0 - 0.44 + rate)).clamp(1.0, grid.total_width() as f64);
        if temperature < config.exit_factor * placement.cost / design.nets().len() as f64 {
            break;
        }
    }

    placement.cost = model.total(&placement, design);
    Ok(placement)
}

/// Attempts one annealing move; returns `Some(delta)` if accepted.
#[allow(clippy::too_many_arguments)]
fn try_move(
    design: &PackedDesign,
    placement: &mut Placement,
    model: &CostModel<'_>,
    lb_tiles: &[(usize, usize)],
    io_tiles: &[(usize, usize)],
    lb_of_tile: &mut std::collections::HashMap<(usize, usize), Option<BlockId>>,
    pads_of_tile: &mut std::collections::HashMap<(usize, usize), Vec<BlockId>>,
    nets_of_block: &[Vec<usize>],
    block: BlockId,
    rng: &mut ChaCha8Rng,
    temperature: f64,
    rlim: f64,
) -> Option<f64> {
    let kind = design.block(block).kind;
    let from = placement.loc(block);
    // Pick a target tile of the right class within the range limit.
    let tiles = if kind == BlockKind::Logic { lb_tiles } else { io_tiles };
    let mut to = tiles[rng.gen_range(0..tiles.len())];
    if rlim < placement.grid.total_width() as f64 {
        // Bias toward nearby tiles: retry a few times for range.
        for _ in 0..4 {
            let d = Grid::manhattan(from, to) as f64;
            if d <= rlim {
                break;
            }
            to = tiles[rng.gen_range(0..tiles.len())];
        }
    }
    if to == from {
        return None;
    }

    // Identify the swap partner (if the target is full).
    let partner: Option<BlockId> = if kind == BlockKind::Logic {
        *lb_of_tile.get(&to).expect("lb tile")
    } else {
        let occupants = pads_of_tile.get(&to).expect("io tile");
        if occupants.len() >= placement.grid.io_rate {
            Some(occupants[rng.gen_range(0..occupants.len())])
        } else {
            None
        }
    };

    // Affected nets.
    let mut nets: Vec<usize> = nets_of_block[block.index()].clone();
    if let Some(p) = partner {
        nets.extend(nets_of_block[p.index()].iter().copied());
        nets.sort();
        nets.dedup();
    }
    let before: f64 = nets.iter().map(|&ni| model.net(placement, ni, &design.nets()[ni])).sum();

    // Apply tentatively.
    placement.locs[block.index()] = to;
    if let Some(p) = partner {
        placement.locs[p.index()] = from;
    }
    let after: f64 = nets.iter().map(|&ni| model.net(placement, ni, &design.nets()[ni])).sum();
    let delta = after - before;

    let accept =
        delta <= 0.0 || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
    if !accept {
        // Revert.
        placement.locs[block.index()] = from;
        if let Some(p) = partner {
            placement.locs[p.index()] = to;
        }
        return None;
    }

    // Commit occupancy maps.
    if kind == BlockKind::Logic {
        lb_of_tile.insert(from, partner);
        lb_of_tile.insert(to, Some(block));
    } else {
        let from_list = pads_of_tile.get_mut(&from).expect("io tile");
        from_list.retain(|b| *b != block);
        if let Some(p) = partner {
            from_list.push(p);
            let to_list = pads_of_tile.get_mut(&to).expect("io tile");
            to_list.retain(|b| *b != p);
            to_list.push(block);
        } else {
            pads_of_tile.get_mut(&to).expect("io tile").push(block);
        }
    }
    placement.cost += delta;
    Some(delta)
}

/// Checks placement legality: every block on a tile of its class, one LB
/// per tile, at most `io_rate` pads per I/O tile.
///
/// # Errors
///
/// Returns [`PnrError::Inconsistent`] describing the first violation.
pub fn check_legal(design: &PackedDesign, placement: &Placement) -> Result<(), PnrError> {
    use std::collections::HashMap;
    let mut lb_seen: HashMap<(usize, usize), usize> = HashMap::new();
    let mut pad_seen: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, block) in design.blocks().iter().enumerate() {
        let loc = placement.locs[i];
        let tile = placement.grid.tile(loc.0, loc.1);
        match block.kind {
            BlockKind::Logic => {
                if tile != TileKind::Lb {
                    return Err(PnrError::Inconsistent {
                        message: format!("logic block {i} on non-LB tile {loc:?}"),
                    });
                }
                *lb_seen.entry(loc).or_insert(0) += 1;
            }
            BlockKind::InputPad | BlockKind::OutputPad => {
                if tile != TileKind::Io {
                    return Err(PnrError::Inconsistent {
                        message: format!("pad {i} on non-IO tile {loc:?}"),
                    });
                }
                *pad_seen.entry(loc).or_insert(0) += 1;
            }
        }
    }
    if let Some((loc, n)) = lb_seen.iter().find(|(_, n)| **n > 1) {
        return Err(PnrError::Inconsistent {
            message: format!("{n} logic blocks stacked at {loc:?}"),
        });
    }
    if let Some((loc, n)) = pad_seen.iter().find(|(_, n)| **n > placement.grid.io_rate) {
        return Err(PnrError::Inconsistent {
            message: format!("{n} pads at {loc:?} exceed io_rate"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga_arch::params::ArchParams;
    use nemfpga_netlist::synth::SynthConfig;

    fn setup(luts: usize, seed: u64) -> (PackedDesign, Grid) {
        let params = ArchParams::paper_table1();
        let design =
            crate::pack::pack(SynthConfig::tiny("t", luts, seed).generate().unwrap(), &params)
                .unwrap();
        let grid =
            Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate).unwrap();
        (design, grid)
    }

    #[test]
    fn placement_is_legal() {
        let (design, grid) = setup(60, 2);
        let p = place(&design, grid, &PlaceConfig::fast(1)).unwrap();
        check_legal(&design, &p).unwrap();
    }

    #[test]
    fn annealing_improves_over_initial() {
        let (design, grid) = setup(120, 3);
        // Initial cost: measure by constructing with a schedule of zero
        // moves -- approximate by comparing fast vs thorough runs both
        // beating a random baseline. Here: the returned cost must beat a
        // freshly shuffled placement's cost on average.
        let p = place(&design, grid, &PlaceConfig::new(7)).unwrap();
        // Build a "random" placement via the fast config with zero
        // temperature moves: use a different seed fast run as proxy.
        let random_proxy =
            place(&design, grid, &PlaceConfig { seed: 99, inner_num: 0.0001, exit_factor: 1e9 })
                .unwrap();
        assert!(
            p.cost <= random_proxy.cost,
            "annealed {} vs initial {}",
            p.cost,
            random_proxy.cost
        );
    }

    #[test]
    fn cost_matches_recomputation() {
        let (design, grid) = setup(60, 4);
        let p = place(&design, grid, &PlaceConfig::fast(5)).unwrap();
        let recomputed = p.wirelength(&design);
        assert!((p.cost - recomputed).abs() < 1e-6 * recomputed.max(1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let (design, grid) = setup(50, 6);
        let a = place(&design, grid, &PlaceConfig::fast(11)).unwrap();
        let b = place(&design, grid, &PlaceConfig::fast(11)).unwrap();
        assert_eq!(a.locs, b.locs);
    }

    #[test]
    fn grid_too_small_rejected() {
        let (design, _) = setup(100, 7);
        let tiny = Grid::new(1, 1, 1).unwrap();
        assert!(matches!(
            place(&design, tiny, &PlaceConfig::fast(1)),
            Err(PnrError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn q_factor_monotone() {
        let mut prev = 0.0;
        for t in 1..60 {
            let q = q_factor(t);
            assert!(q >= prev);
            prev = q;
        }
    }
}
