//! # nemfpga-pnr
//!
//! A from-scratch VPR-class FPGA CAD substrate, standing in for the
//! VPR 5.0 flow of the paper's Fig. 10:
//!
//! * [`pack`] — VPack-style BLE formation and cluster packing.
//! * [`place`] — simulated-annealing placement with the adaptive VPR
//!   schedule.
//! * [`route`] — PathFinder negotiated-congestion routing with A*.
//! * [`timing`] — static timing analysis over routed RC stages, fed by a
//!   per-FPGA-variant electrical model ([`timing::RoutingTiming`]).
//! * [`channel`] — minimum-channel-width binary search and the 1.2×
//!   low-stress rule that produces the paper's `W = 118`.
//! * [`flow`] — the pack→place→route pipeline in one call.
//!
//! # Examples
//!
//! ```
//! use nemfpga_arch::ArchParams;
//! use nemfpga_netlist::synth::SynthConfig;
//! use nemfpga_pnr::flow::{implement, WidthPolicy};
//! use nemfpga_pnr::place::PlaceConfig;
//! use nemfpga_pnr::route::RouteConfig;
//! use nemfpga_pnr::timing::{analyze_timing, test_timing_model};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SynthConfig::tiny("t", 40, 7).generate()?;
//! let imp = implement(
//!     netlist,
//!     &ArchParams::paper_table1(),
//!     &PlaceConfig::fast(7),
//!     &RouteConfig::new(),
//!     WidthPolicy::LowStress { hint: 8, max: 128 },
//! )?;
//! let report = analyze_timing(
//!     &imp.rr, &imp.design, &imp.placement, &imp.routing, &test_timing_model(),
//! )?;
//! assert!(report.critical_path.value() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod channel;
pub mod error;
pub mod flow;
pub mod pack;
pub mod place;
pub mod route;
pub mod timing;

pub use channel::{find_min_channel_width, WidthSearch};
pub use error::PnrError;
pub use flow::{implement, Implementation, WidthPolicy};
pub use pack::{pack, Block, BlockId, BlockKind, PackedDesign, PackedNet};
pub use place::{check_legal, place, place_timing_driven, PlaceConfig, Placement, TimingWeights};
pub use route::{
    check_routing, route, utilization, RouteConfig, RoutedNet, Routing, RoutingUtilization,
};
pub use timing::{
    analyze_timing, connection_criticalities, RoutingTiming, StageTiming, TimingReport,
};
