//! Static timing analysis over a packed, placed, and routed design.
//!
//! Plays the role of the paper's "VPR timing analysis" fed by HSPICE-
//! extracted delays (Fig. 10): per-connection delays come from a
//! [`RoutingTiming`] electrical model (supplied by the FPGA-variant layer,
//! e.g. CMOS-only vs CMOS-NEM), and arrival times propagate through the
//! cell graph to find the application critical path.

use crate::error::PnrError;
use crate::pack::{BlockId, PackedDesign};
use crate::route::{RoutedNet, Routing};
use nemfpga_arch::rrgraph::{RrGraph, RrKind, SwitchClass};
use nemfpga_netlist::cell::CellKind;
use nemfpga_netlist::ids::CellId;
use nemfpga_tech::units::{Farads, Ohms, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Electrical timing of one routing stage (the switch plus any buffer that
/// drives the next resource).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Fixed delay of the stage's buffer chain (zero if removed).
    pub t_fixed: Seconds,
    /// Series resistance driving the next resource (switch + driver).
    pub r_series: Ohms,
    /// Multiplier modelling the degraded rising edge after a Vt-dropping
    /// switch (1.0 for full-swing switches such as NEM relays).
    pub delay_penalty: f64,
}

/// The complete per-variant routing/logic timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingTiming {
    /// Block output pin driving onto a wire.
    pub output_driver: StageTiming,
    /// Wire-to-wire switch-box hop (includes the wire buffer, if any).
    pub switch_box: StageTiming,
    /// Wire-to-input-pin connection-box hop (includes the LB input buffer,
    /// if any).
    pub connection_box: StageTiming,
    /// Wire resistance per tile span.
    pub wire_r_per_tile: Ohms,
    /// Wire capacitance per tile span (including switch-tap loading).
    pub wire_c_per_tile: Farads,
    /// Input-pin capacitance.
    pub ipin_cap: Farads,
    /// LUT input-to-output delay.
    pub lut_delay: Seconds,
    /// LB input pin through the local crossbar to a LUT input.
    pub lb_input_to_lut: Seconds,
    /// LUT output to the LB output pin (includes the LB output buffer, if
    /// any).
    pub lut_to_output_pin: Seconds,
    /// LUT-to-LUT feedback inside one LB.
    pub local_feedback: Seconds,
    /// Flip-flop clock-to-Q.
    pub clk_to_q: Seconds,
    /// Flip-flop setup time.
    pub setup: Seconds,
}

/// Timing analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Application critical path delay.
    pub critical_path: Seconds,
    /// Cells on the critical path, source to endpoint.
    pub critical_cells: Vec<CellId>,
    /// Mean point-to-point routed connection delay (for reporting).
    pub mean_connection_delay: Seconds,
    /// Timing slack at each cell's output, indexed by `CellId`
    /// (required time minus arrival; ~0 on the critical path).
    pub cell_slacks: Vec<Seconds>,
}

impl TimingReport {
    /// Maximum operating frequency implied by the critical path.
    pub fn fmax_hz(&self) -> f64 {
        1.0 / self.critical_path.value()
    }

    /// Slack at `cell`'s output.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn slack(&self, cell: CellId) -> Seconds {
        self.cell_slacks[cell.index()]
    }

    /// Timing criticality of `cell` in `[0, 1]`: 1 on the critical path,
    /// 0 for paths with a full cycle of slack. The standard VPR-style
    /// weight for timing-driven optimization.
    pub fn criticality(&self, cell: CellId) -> f64 {
        let cp = self.critical_path.value().max(f64::MIN_POSITIVE);
        (1.0 - self.cell_slacks[cell.index()].value() / cp).clamp(0.0, 1.0)
    }
}

/// Per-sink routed delays of one net, keyed by sink tile.
fn net_sink_delays(
    rr: &RrGraph,
    routed: &RoutedNet,
    timing: &RoutingTiming,
) -> HashMap<(usize, usize), Seconds> {
    // Accumulate Elmore-style stage delays down the tree. delay[i] = delay
    // at tree node i; children add their entering stage.
    let mut delay = vec![Seconds::zero(); routed.tree.len()];
    let mut result = HashMap::new();
    for (i, node) in routed.tree.iter().enumerate() {
        let base = node.parent.map_or(Seconds::zero(), |p| delay[p as usize]);
        let kind = rr.node(node.rr).kind;
        let stage_delay = match node.entered_via {
            SwitchClass::Internal => Seconds::zero(),
            class => {
                let stage = match class {
                    SwitchClass::OutputDriver => timing.output_driver,
                    SwitchClass::SwitchBox => timing.switch_box,
                    SwitchClass::ConnectionBox => timing.connection_box,
                    SwitchClass::Internal => unreachable!(),
                };
                let (c_load, wire_elmore) = match kind {
                    RrKind::ChanX { .. } | RrKind::ChanY { .. } => {
                        let span = kind.span_tiles() as f64;
                        let c_wire = timing.wire_c_per_tile * span;
                        let r_wire = timing.wire_r_per_tile * span;
                        (c_wire, r_wire * c_wire / 2.0)
                    }
                    RrKind::Ipin { .. } => (timing.ipin_cap, Seconds::zero()),
                    _ => (Farads::zero(), Seconds::zero()),
                };
                (stage.t_fixed + stage.r_series * c_load) * stage.delay_penalty + wire_elmore
            }
        };
        delay[i] = base + stage_delay;
        if let RrKind::Sink { x, y } = kind {
            result.insert((x as usize, y as usize), delay[i]);
        }
    }
    result
}

/// Runs STA and extracts the critical path.
///
/// # Errors
///
/// Returns [`PnrError::Inconsistent`] if the routing does not cover the
/// design's nets or a sink's delay is missing, and [`PnrError::BadNetlist`]
/// for cyclic netlists.
///
/// # Examples
///
/// See `nemfpga::flow` for an end-to-end example; this function needs a
/// packed + placed + routed design plus an electrical model.
pub fn analyze_timing(
    rr: &RrGraph,
    design: &PackedDesign,
    placement: &crate::place::Placement,
    routing: &Routing,
    timing: &RoutingTiming,
) -> Result<TimingReport, PnrError> {
    if routing.nets.len() != design.nets().len() {
        return Err(PnrError::Inconsistent { message: "routing/net count mismatch".to_owned() });
    }
    let netlist = design.netlist();

    // Routed delay of each (net -> sink block) connection.
    let mut conn_delay: HashMap<(usize, BlockId), Seconds> = HashMap::new();
    let mut total = Seconds::zero();
    let mut count = 0usize;
    for (ni, (pn, rn)) in design.nets().iter().zip(&routing.nets).enumerate() {
        let sink_delays = net_sink_delays(rr, rn, timing);
        for &b in &pn.sinks {
            let loc = placement.loc(b);
            let d = *sink_delays.get(&loc).ok_or_else(|| PnrError::Inconsistent {
                message: format!("net {ni} missing routed delay at {loc:?}"),
            })?;
            conn_delay.insert((ni, b), d);
            total += d;
            count += 1;
        }
    }
    let mean_connection_delay = if count == 0 { Seconds::zero() } else { total / count as f64 };

    // Map each netlist net to its packed-net index (if inter-block).
    let mut packed_index: HashMap<u32, usize> = HashMap::new();
    for (ni, pn) in design.nets().iter().enumerate() {
        packed_index.insert(pn.net.index() as u32, ni);
    }

    // Build the explicit timing-connection list: one entry per (driver
    // output -> sink input) pair, with the full inter-cell wire delay
    // (exit buffer + routed RC + entry path).
    let order =
        netlist.topological_order().map_err(|e| PnrError::BadNetlist { message: e.to_string() })?;
    let n_cells = netlist.cells().len();

    struct Conn {
        driver: CellId,
        sink: CellId,
        wire: Seconds,
    }
    let mut conns: Vec<Conn> = Vec::new();
    for id in &order {
        let cell = netlist.cell(*id);
        if matches!(cell.kind, CellKind::Input) {
            continue;
        }
        let my_block = design.block_of(*id);
        for &input in &cell.inputs {
            let Some(driver) = netlist.net(input).driver else { continue };
            let drv_block = design.block_of(driver);
            let is_pad_sink = matches!(cell.kind, CellKind::Output);
            let wire = if drv_block == my_block {
                // Intra-block: free into a pad, fused/local otherwise. A
                // latch fused with its LUT sees zero; approximate all
                // intra-block sequential hops with local feedback.
                if is_pad_sink || matches!(cell.kind, CellKind::Latch) {
                    Seconds::zero()
                } else {
                    timing.local_feedback
                }
            } else {
                let ni = packed_index.get(&(input.index() as u32)).copied().ok_or_else(|| {
                    PnrError::Inconsistent {
                        message: format!(
                            "inter-block net '{}' not packed",
                            netlist.net(input).name
                        ),
                    }
                })?;
                let routed = *conn_delay.get(&(ni, my_block)).ok_or_else(|| {
                    PnrError::Inconsistent { message: format!("no routed delay for net {ni}") }
                })?;
                let entry = if is_pad_sink { Seconds::zero() } else { timing.lb_input_to_lut };
                timing.lut_to_output_pin + routed + entry
            };
            conns.push(Conn { driver, sink: *id, wire });
        }
    }
    let mut conns_by_sink: Vec<Vec<usize>> = vec![Vec::new(); n_cells];
    let mut conns_by_driver: Vec<Vec<usize>> = vec![Vec::new(); n_cells];
    for (i, c) in conns.iter().enumerate() {
        conns_by_sink[c.sink.index()].push(i);
        conns_by_driver[c.driver.index()].push(i);
    }
    // A cell's own propagation delay from its inputs to its output.
    let own_delay = |cell: CellId| match netlist.cell(cell).kind {
        CellKind::Lut(_) => timing.lut_delay,
        _ => Seconds::zero(),
    };
    // Setup requirement when `cell` terminates a path at its inputs.
    let endpoint_setup = |cell: CellId| match netlist.cell(cell).kind {
        CellKind::Latch => timing.setup,
        _ => Seconds::zero(),
    };

    // --- Forward pass: arrival times at cell outputs -------------------
    // Timing sources (PIs, latch Q outputs) are constants and may appear
    // anywhere in the topological order: set them before the sweep.
    let mut arrival = vec![Seconds::zero(); n_cells];
    for (i, cell) in netlist.cells().iter().enumerate() {
        if matches!(cell.kind, CellKind::Latch) {
            arrival[i] = timing.clk_to_q;
        }
    }
    let mut pred: Vec<Option<CellId>> = vec![None; n_cells];
    let mut critical = (Seconds::zero(), None::<CellId>);
    for id in &order {
        let cell = netlist.cell(*id);
        match cell.kind {
            CellKind::Input | CellKind::Latch => {}
            CellKind::Lut(_) | CellKind::Output => {
                let mut worst = Seconds::zero();
                let mut best = None;
                for &ci in &conns_by_sink[id.index()] {
                    let c = &conns[ci];
                    let t = arrival[c.driver.index()] + c.wire;
                    if t >= worst {
                        worst = t;
                        best = Some(c.driver);
                    }
                }
                arrival[id.index()] = worst + own_delay(*id);
                pred[id.index()] = best;
            }
        }
        // Endpoints: primary outputs and latch data inputs.
        let endpoint_time = match cell.kind {
            CellKind::Output => Some(arrival[id.index()]),
            CellKind::Latch => {
                let mut worst = None;
                for &ci in &conns_by_sink[id.index()] {
                    let c = &conns[ci];
                    let t = arrival[c.driver.index()] + c.wire + timing.setup;
                    if worst.is_none_or(|w| t > w) {
                        worst = Some(t);
                        pred[id.index()] = Some(c.driver);
                    }
                }
                worst
            }
            _ => None,
        };
        if let Some(t) = endpoint_time {
            if t > critical.0 {
                critical = (t, Some(*id));
            }
        }
    }
    let cp = critical.0;

    // --- Backward pass: required times and slacks ----------------------
    // required[i] = latest time cell i's *output* may settle without
    // stretching the critical path.
    let mut required = vec![Seconds::new(f64::INFINITY); n_cells];
    for id in order.iter().rev() {
        let cell = netlist.cell(*id);
        // Timing sinks constrain their drivers through their inputs.
        let own_req = match cell.kind {
            CellKind::Output => Some(cp),
            CellKind::Latch => Some(cp), // constraint applied via setup below
            _ => None,
        };
        for &ci in &conns_by_sink[id.index()] {
            let c = &conns[ci];
            // Required at the driver via this connection: the sink's input
            // must settle early enough for the sink's own propagation (or
            // setup, for latch endpoints).
            let at_sink_input = match cell.kind {
                CellKind::Latch => cp - endpoint_setup(*id),
                CellKind::Output => own_req.expect("outputs are endpoints"),
                _ => required[id.index()] - own_delay(*id),
            };
            let via = at_sink_input - c.wire;
            if via < required[c.driver.index()] {
                required[c.driver.index()] = via;
            }
        }
        // Endpoints with no fanout keep their own requirement.
        if conns_by_driver[id.index()].is_empty() {
            let r = own_req.unwrap_or(cp);
            if r < required[id.index()] {
                required[id.index()] = r;
            }
        }
    }
    let cell_slacks: Vec<Seconds> = (0..n_cells)
        .map(|i| {
            let r = required[i];
            if r.value().is_finite() {
                r - arrival[i]
            } else {
                // Unconstrained (e.g. a PI feeding nothing): full slack.
                cp
            }
        })
        .collect();

    // Walk the critical path backwards, stopping at the segment's timing
    // source (a latch Q or a PI): `pred` of a latch points at its *D*
    // driver, which belongs to the previous register-to-register segment.
    let mut critical_cells = Vec::new();
    let mut cursor = critical.1;
    let mut at_endpoint = true;
    while let Some(c) = cursor {
        critical_cells.push(c);
        if !at_endpoint && netlist.cell(c).kind.is_timing_source() {
            break;
        }
        at_endpoint = false;
        cursor = pred[c.index()];
    }
    critical_cells.reverse();

    Ok(TimingReport { critical_path: cp, critical_cells, mean_connection_delay, cell_slacks })
}

/// Builds per-connection timing weights for timing-driven placement from
/// a completed analysis: `weight[net][k] = criticality^exponent` of the
/// most critical sink cell inside the `k`-th sink block of packed net
/// `net` (VPR uses an exponent around 1–8; 2 is a good default).
///
/// The usual flow: place wirelength-driven, route, [`analyze_timing`],
/// then re-place with
/// [`crate::place::place_timing_driven`] using these weights.
pub fn connection_criticalities(
    design: &PackedDesign,
    report: &TimingReport,
    exponent: f64,
    lambda: f64,
) -> crate::place::TimingWeights {
    let netlist = design.netlist();
    let weight = design
        .nets()
        .iter()
        .map(|pn| {
            let net = netlist.net(pn.net);
            pn.sinks
                .iter()
                .map(|&sink_block| {
                    net.sinks
                        .iter()
                        .filter(|cell| design.block_of(**cell) == sink_block)
                        .map(|cell| report.criticality(*cell))
                        .fold(0.0f64, f64::max)
                        .powf(exponent)
                })
                .collect()
        })
        .collect();
    crate::place::TimingWeights { weight, lambda }
}

/// A representative electrical model for tests: every stage 100 ps-ish,
/// no Vt penalty. Real models come from the `nemfpga` core crate.
pub fn test_timing_model() -> RoutingTiming {
    let stage = StageTiming {
        t_fixed: Seconds::from_pico(50.0),
        r_series: Ohms::from_kilo(2.0),
        delay_penalty: 1.0,
    };
    RoutingTiming {
        output_driver: stage,
        switch_box: stage,
        connection_box: stage,
        wire_r_per_tile: Ohms::new(150.0),
        wire_c_per_tile: Farads::from_femto(3.0),
        ipin_cap: Farads::from_femto(1.0),
        lut_delay: Seconds::from_pico(150.0),
        lb_input_to_lut: Seconds::from_pico(60.0),
        lut_to_output_pin: Seconds::from_pico(60.0),
        local_feedback: Seconds::from_pico(80.0),
        clk_to_q: Seconds::from_pico(80.0),
        setup: Seconds::from_pico(60.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use crate::place::{place, PlaceConfig};
    use crate::route::RouteConfig;
    use nemfpga_arch::{build_rr_graph, ArchParams};
    use nemfpga_netlist::synth::SynthConfig;

    fn implemented(
        luts: usize,
        seed: u64,
    ) -> (
        std::sync::Arc<nemfpga_arch::RrGraph>,
        crate::pack::PackedDesign,
        crate::place::Placement,
        crate::route::Routing,
    ) {
        let params = ArchParams::paper_table1();
        let imp = crate::flow::implement(
            SynthConfig::tiny("t", luts, seed).generate().unwrap(),
            &params,
            &PlaceConfig::fast(seed),
            &RouteConfig::new(),
            crate::flow::WidthPolicy::LowStress { hint: 16, max: 512 },
        )
        .unwrap();
        (imp.rr, imp.design, imp.placement, imp.routing)
    }

    fn analyzed(luts: usize, seed: u64) -> TimingReport {
        let (rr, design, placement, routing) = implemented(luts, seed);
        analyze_timing(&rr, &design, &placement, &routing, &test_timing_model()).unwrap()
    }

    #[test]
    fn critical_path_is_positive_and_plausible() {
        let report = analyzed(60, 1);
        let ns = report.critical_path.as_nano();
        assert!(ns > 0.1, "critical path {ns} ns too small");
        assert!(ns < 100.0, "critical path {ns} ns too large");
        assert!(report.fmax_hz() > 1e6);
        assert!(!report.critical_cells.is_empty());
    }

    #[test]
    fn slower_switches_slow_the_application() {
        let (rr, design, placement, routing) = implemented(60, 2);

        let fast = test_timing_model();
        let mut slow = fast;
        slow.switch_box.r_series = fast.switch_box.r_series * 10.0;
        slow.switch_box.delay_penalty = 1.8;

        let fast_cp =
            analyze_timing(&rr, &design, &placement, &routing, &fast).unwrap().critical_path;
        let slow_cp =
            analyze_timing(&rr, &design, &placement, &routing, &slow).unwrap().critical_path;
        assert!(slow_cp > fast_cp, "{slow_cp:?} !> {fast_cp:?}");
    }

    #[test]
    fn critical_path_cells_are_connected_chain() {
        let report = analyzed(80, 3);
        assert!(report.critical_cells.len() >= 2);
    }

    #[test]
    fn mean_connection_delay_reported() {
        let report = analyzed(40, 4);
        assert!(report.mean_connection_delay.value() > 0.0);
        assert!(report.mean_connection_delay < report.critical_path);
    }

    #[test]
    fn slacks_are_nonnegative_and_zero_on_critical_path() {
        let report = analyzed(80, 5);
        let cp = report.critical_path.value();
        for (i, s) in report.cell_slacks.iter().enumerate() {
            assert!(s.value() >= -1e-15, "cell {i} has negative slack {s:?} (cp {cp})");
            assert!(s.value() <= cp * (1.0 + 1e-9), "cell {i} slack exceeds cp");
        }
        // Every cell on the reported critical path has (near-)zero slack
        // and criticality 1 — except a latch *endpoint*, whose slack is
        // measured at its Q output (a fresh timing source), not at the D
        // input that terminated the path.
        let endpoint = *report.critical_cells.last().expect("path nonempty");
        for c in &report.critical_cells {
            if *c == endpoint {
                continue;
            }
            let s = report.slack(*c).value();
            assert!(s.abs() < 1e-9 * cp + 1e-15, "critical cell slack {s}");
            assert!((report.criticality(*c) - 1.0).abs() < 1e-6);
        }
        // And some cell is genuinely non-critical.
        let max_slack = report.cell_slacks.iter().map(|s| s.value()).fold(0.0f64, f64::max);
        assert!(max_slack > 0.05 * cp, "no slack diversity: max {max_slack}");
    }

    #[test]
    fn timing_driven_placement_does_not_hurt_and_usually_helps() {
        use crate::place::{place_timing_driven, PlaceConfig};
        use crate::route::route;

        let params = ArchParams::paper_table1();
        let netlist = SynthConfig::tiny("td", 100, 21).generate().unwrap();
        let design = pack(netlist, &params).unwrap();
        let grid = nemfpga_arch::Grid::for_design(
            design.num_logic_blocks(),
            design.num_pads(),
            params.io_rate,
        )
        .unwrap();
        let model = test_timing_model();

        // Seed pass: wirelength placement + routing + analysis.
        let seed_placement = place(&design, grid, &PlaceConfig::fast(21)).unwrap();
        let rr = build_rr_graph(&params, grid, 48).unwrap();
        let seed_routing = route(&rr, &design, &seed_placement, &RouteConfig::new()).unwrap();
        let seed_report =
            analyze_timing(&rr, &design, &seed_placement, &seed_routing, &model).unwrap();

        // Timing-driven pass with the measured criticalities.
        let weights = connection_criticalities(&design, &seed_report, 2.0, 0.5);
        let td_placement =
            place_timing_driven(&design, grid, &PlaceConfig::fast(21), &weights).unwrap();
        crate::place::check_legal(&design, &td_placement).unwrap();
        let td_routing = route(&rr, &design, &td_placement, &RouteConfig::new()).unwrap();
        let td_report = analyze_timing(&rr, &design, &td_placement, &td_routing, &model).unwrap();

        let ratio = td_report.critical_path / seed_report.critical_path;
        assert!(ratio < 1.10, "timing-driven placement regressed: {ratio:.3}x");
    }

    #[test]
    fn timing_weights_shape_is_validated() {
        use crate::place::TimingWeights;
        let params = ArchParams::paper_table1();
        let design = pack(SynthConfig::tiny("tw", 30, 9).generate().unwrap(), &params).unwrap();
        let bad = TimingWeights { weight: vec![vec![1.0]; 3], lambda: 0.5 };
        assert!(bad.validate(&design).is_err());
        let report = analyzed(30, 9);
        let good = connection_criticalities(&design, &report, 2.0, 0.5);
        good.validate(&design).unwrap();
        // All weights in [0, 1].
        assert!(good.weight.iter().flatten().all(|w| (0.0..=1.0).contains(w)));
    }

    #[test]
    fn criticality_is_bounded_and_ordered_by_slack() {
        let report = analyzed(60, 6);
        for i in 0..report.cell_slacks.len() {
            let c = report.criticality(nemfpga_netlist::ids::CellId::new(i as u32));
            assert!((0.0..=1.0).contains(&c));
        }
    }
}
