//! Packing: clustering LUTs and latches into logic blocks.
//!
//! A VPack-style greedy clusterer: LUT+latch pairs fuse into basic logic
//! elements (BLEs) when the latch is the LUT's only fanout; clusters grow
//! around a seed by attraction (shared nets), subject to the cluster-size
//! (`N`) and distinct-external-input (`I`) limits of the architecture
//! (paper Fig. 7b).

use crate::error::PnrError;
use nemfpga_arch::params::ArchParams;
use nemfpga_netlist::cell::CellKind;
use nemfpga_netlist::ids::{CellId, NetId};
use nemfpga_netlist::netlist::Netlist;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Index of a packed block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a packed block is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// A logic block (cluster of BLEs).
    Logic,
    /// An input pad (one primary input).
    InputPad,
    /// An output pad (one primary output).
    OutputPad,
}

/// One packed block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Display name (derived from the seed cell).
    pub name: String,
    /// Block kind.
    pub kind: BlockKind,
    /// Netlist cells inside this block.
    pub cells: Vec<CellId>,
}

/// An inter-block net: connections that must use the programmable routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedNet {
    /// Underlying netlist net.
    pub net: NetId,
    /// Driving block.
    pub driver: BlockId,
    /// Distinct sink blocks (driver excluded).
    pub sinks: Vec<BlockId>,
}

/// The packed design: blocks, the cell→block map, and inter-block nets.
#[derive(Debug, Clone)]
pub struct PackedDesign {
    netlist: Netlist,
    blocks: Vec<Block>,
    cell_block: Vec<BlockId>,
    nets: Vec<PackedNet>,
}

impl PackedDesign {
    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// All blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Block lookup.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The block containing `cell`.
    pub fn block_of(&self, cell: CellId) -> BlockId {
        self.cell_block[cell.index()]
    }

    /// Inter-block nets (what the router must realize).
    pub fn nets(&self) -> &[PackedNet] {
        &self.nets
    }

    /// Number of logic blocks.
    pub fn num_logic_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.kind == BlockKind::Logic).count()
    }

    /// Number of I/O pad blocks.
    pub fn num_pads(&self) -> usize {
        self.blocks.len() - self.num_logic_blocks()
    }
}

/// A basic logic element: a LUT, a latch, or a fused LUT→latch pair.
#[derive(Debug, Clone)]
struct Ble {
    cells: Vec<CellId>,
    /// Nets this BLE reads from outside itself.
    input_nets: Vec<NetId>,
    /// The net this BLE produces.
    output_net: NetId,
}

/// Packs `netlist` into logic blocks under `params`.
///
/// # Errors
///
/// Returns [`PnrError::BadNetlist`] if the netlist fails validation.
///
/// # Examples
///
/// ```
/// use nemfpga_arch::params::ArchParams;
/// use nemfpga_netlist::synth::SynthConfig;
/// use nemfpga_pnr::pack::pack;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let netlist = SynthConfig::tiny("t", 40, 1).generate()?;
/// let design = pack(netlist, &ArchParams::paper_table1())?;
/// // 40 LUTs at N = 10 pack into at least 4 logic blocks.
/// assert!(design.num_logic_blocks() >= 4);
/// # Ok(())
/// # }
/// ```
pub fn pack(netlist: Netlist, params: &ArchParams) -> Result<PackedDesign, PnrError> {
    netlist.validate().map_err(|e| PnrError::BadNetlist { message: e.to_string() })?;

    // --- BLE formation ---
    let mut absorbed_latch: HashMap<CellId, CellId> = HashMap::new(); // lut -> latch
    let mut latch_absorbed: HashSet<CellId> = HashSet::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        if let CellKind::Latch = cell.kind {
            let latch_id = CellId::new(i as u32);
            let input_net = cell.inputs[0];
            let net = netlist.net(input_net);
            if net.sinks.len() == 1 {
                if let Some(driver) = net.driver {
                    if matches!(netlist.cell(driver).kind, CellKind::Lut(_)) {
                        absorbed_latch.insert(driver, latch_id);
                        latch_absorbed.insert(latch_id);
                    }
                }
            }
        }
    }

    let mut bles: Vec<Ble> = Vec::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        let id = CellId::new(i as u32);
        match cell.kind {
            CellKind::Lut(_) => {
                let mut cells = vec![id];
                let output_net = match absorbed_latch.get(&id) {
                    Some(latch) => {
                        cells.push(*latch);
                        netlist.cell(*latch).output.expect("latch drives a net")
                    }
                    None => cell.output.expect("lut drives a net"),
                };
                bles.push(Ble { cells, input_nets: cell.inputs.clone(), output_net });
            }
            CellKind::Latch if !latch_absorbed.contains(&id) => {
                bles.push(Ble {
                    cells: vec![id],
                    input_nets: cell.inputs.clone(),
                    output_net: cell.output.expect("latch drives a net"),
                });
            }
            _ => {}
        }
    }

    // --- Greedy clustering ---
    let n_max = params.cluster_size;
    let i_max = params.lb_inputs;
    let num_bles = bles.len();
    // net -> BLEs touching it (as input or output), for attraction.
    let mut net_bles: HashMap<NetId, Vec<usize>> = HashMap::new();
    for (i, ble) in bles.iter().enumerate() {
        for &net in ble.input_nets.iter().chain(std::iter::once(&ble.output_net)) {
            net_bles.entry(net).or_default().push(i);
        }
    }

    let mut clustered = vec![false; num_bles];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    // Seed order: most inputs first (hard-to-place BLEs seed clusters).
    let mut seed_order: Vec<usize> = (0..num_bles).collect();
    seed_order.sort_by_key(|&i| std::cmp::Reverse(bles[i].input_nets.len()));

    for &seed in &seed_order {
        if clustered[seed] {
            continue;
        }
        let mut members = vec![seed];
        clustered[seed] = true;
        let mut produced: HashSet<NetId> = HashSet::from([bles[seed].output_net]);
        let mut external: HashSet<NetId> = bles[seed].input_nets.iter().copied().collect();

        while members.len() < n_max {
            // Gather candidates connected to the cluster.
            let mut attraction: HashMap<usize, usize> = HashMap::new();
            for &m in &members {
                for &net in bles[m].input_nets.iter().chain(std::iter::once(&bles[m].output_net)) {
                    for &cand in net_bles.get(&net).into_iter().flatten() {
                        if !clustered[cand] {
                            *attraction.entry(cand).or_insert(0) += 1;
                        }
                    }
                }
            }
            let mut candidates: Vec<(usize, usize)> =
                attraction.into_iter().map(|(c, a)| (a, c)).collect();
            candidates.sort_by(|x, y| y.cmp(x));

            let mut chosen = None;
            for &(_, cand) in &candidates {
                if fits(&bles[cand], &produced, &external, i_max) {
                    chosen = Some(cand);
                    break;
                }
            }
            // Fill with any unclustered feasible BLE if nothing attracted.
            if chosen.is_none() {
                chosen = (0..num_bles)
                    .find(|&c| !clustered[c] && fits(&bles[c], &produced, &external, i_max));
            }
            let Some(cand) = chosen else { break };
            clustered[cand] = true;
            produced.insert(bles[cand].output_net);
            for &net in &bles[cand].input_nets {
                if !produced.contains(&net) {
                    external.insert(net);
                }
            }
            // Nets now produced internally stop counting as external.
            external.retain(|n| !produced.contains(n));
            members.push(cand);
        }
        clusters.push(members);
    }

    // --- Emit blocks ---
    let mut blocks: Vec<Block> = Vec::new();
    let mut cell_block = vec![BlockId(0); netlist.cells().len()];
    for members in &clusters {
        let id = BlockId(blocks.len() as u32);
        let mut cells = Vec::new();
        for &m in members {
            cells.extend(bles[m].cells.iter().copied());
        }
        let name = format!("lb_{}", netlist.cell(cells[0]).name);
        for &c in &cells {
            cell_block[c.index()] = id;
        }
        blocks.push(Block { name, kind: BlockKind::Logic, cells });
    }
    for (i, cell) in netlist.cells().iter().enumerate() {
        let id = CellId::new(i as u32);
        let kind = match cell.kind {
            CellKind::Input => BlockKind::InputPad,
            CellKind::Output => BlockKind::OutputPad,
            _ => continue,
        };
        let bid = BlockId(blocks.len() as u32);
        cell_block[id.index()] = bid;
        blocks.push(Block { name: cell.name.clone(), kind, cells: vec![id] });
    }

    // --- Inter-block nets ---
    let mut nets = Vec::new();
    for (ni, net) in netlist.nets().iter().enumerate() {
        let net_id = NetId::new(ni as u32);
        let driver_cell = net.driver.ok_or_else(|| PnrError::BadNetlist {
            message: format!("net '{}' undriven", net.name),
        })?;
        let driver = cell_block[driver_cell.index()];
        let mut sinks: Vec<BlockId> =
            net.sinks.iter().map(|c| cell_block[c.index()]).filter(|b| *b != driver).collect();
        sinks.sort();
        sinks.dedup();
        if !sinks.is_empty() {
            nets.push(PackedNet { net: net_id, driver, sinks });
        }
    }

    Ok(PackedDesign { netlist, blocks, cell_block, nets })
}

fn fits(ble: &Ble, produced: &HashSet<NetId>, external: &HashSet<NetId>, i_max: usize) -> bool {
    let mut new_external = 0usize;
    for net in &ble.input_nets {
        if !produced.contains(net) && !external.contains(net) {
            new_external += 1;
        }
    }
    external.len() + new_external <= i_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga_netlist::cell::TruthTable;
    use nemfpga_netlist::synth::SynthConfig;

    fn params() -> ArchParams {
        ArchParams::paper_table1()
    }

    #[test]
    fn cluster_limits_respected() {
        let netlist = SynthConfig::tiny("t", 123, 5).generate().unwrap();
        let design = pack(netlist, &params()).unwrap();
        for block in design.blocks() {
            if block.kind != BlockKind::Logic {
                assert_eq!(block.cells.len(), 1);
                continue;
            }
            // Count BLEs (LUT+fused-latch counts once).
            let luts = block
                .cells
                .iter()
                .filter(|c| matches!(design.netlist().cell(**c).kind, CellKind::Lut(_)))
                .count();
            let latches = block.cells.len() - luts;
            assert!(luts + latches <= 2 * params().cluster_size);
            assert!(luts <= params().cluster_size, "{} luts", luts);
            // External inputs within I.
            let inside: HashSet<CellId> = block.cells.iter().copied().collect();
            let mut ext: HashSet<NetId> = HashSet::new();
            for &c in &block.cells {
                for &input in &design.netlist().cell(c).inputs {
                    let drv = design.netlist().net(input).driver.unwrap();
                    if !inside.contains(&drv) {
                        ext.insert(input);
                    }
                }
            }
            assert!(ext.len() <= params().lb_inputs, "{} external inputs", ext.len());
        }
    }

    #[test]
    fn packing_is_reasonably_dense() {
        let netlist = SynthConfig::tiny("t", 200, 9).generate().unwrap();
        let design = pack(netlist, &params()).unwrap();
        let lbs = design.num_logic_blocks();
        // 200 LUTs / N=10 -> ideal 20 clusters; allow some slack.
        assert!(lbs >= 20, "{lbs}");
        assert!(lbs <= 40, "packing too sparse: {lbs} clusters");
    }

    #[test]
    fn lut_latch_pairs_fuse() {
        let mut n = Netlist::new("fuse");
        let a = n.add_input("a").unwrap();
        let x = n.add_lut("x", &[a], TruthTable::new(1, 0b01).unwrap()).unwrap();
        let q = n.add_latch("q", x).unwrap();
        n.add_output("o", q).unwrap();
        let design = pack(n, &params()).unwrap();
        // LUT and its single-fanout latch share a block.
        let lut = design.netlist().cell_by_name("x").unwrap();
        let latch = design.netlist().cell_by_name("q").unwrap();
        assert_eq!(design.block_of(lut), design.block_of(latch));
        // The net between them never reaches the routing.
        let internal = design.netlist().net_by_name("x").unwrap();
        assert!(design.nets().iter().all(|pn| pn.net != internal));
    }

    #[test]
    fn io_blocks_are_single_cell() {
        let netlist = SynthConfig::tiny("t", 30, 2).generate().unwrap();
        let (ins, outs) = (netlist.num_inputs(), netlist.num_outputs());
        let design = pack(netlist, &params()).unwrap();
        let pads = design.num_pads();
        assert_eq!(pads, ins + outs);
    }

    #[test]
    fn packed_nets_have_no_self_sinks() {
        let netlist = SynthConfig::tiny("t", 80, 3).generate().unwrap();
        let design = pack(netlist, &params()).unwrap();
        for pn in design.nets() {
            assert!(!pn.sinks.contains(&pn.driver));
            assert!(!pn.sinks.is_empty());
            // No duplicate sinks.
            let mut s = pn.sinks.clone();
            s.dedup();
            assert_eq!(s.len(), pn.sinks.len());
        }
    }
}
