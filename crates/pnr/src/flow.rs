//! Convenience pipeline: netlist → pack → grid → place → (W_min) → route.

use crate::channel::{find_min_channel_width, WidthSearch};
use crate::error::PnrError;
use crate::pack::{pack, PackedDesign};
use crate::place::{place, PlaceConfig, Placement};
use crate::route::{route, route_with_scratch, RouteConfig, RouterScratch, Routing};
use nemfpga_arch::grid::Grid;
use nemfpga_arch::params::ArchParams;
use nemfpga_arch::rrgraph::RrGraph;
use nemfpga_arch::store::shared_rr_graph;
use nemfpga_netlist::netlist::Netlist;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How to choose the channel width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WidthPolicy {
    /// Use a fixed width (e.g. the paper's 118).
    Fixed(usize),
    /// Search `W_min` and operate at `1.2 × W_min` (the paper's method).
    LowStress {
        /// Initial width guess for the search.
        hint: usize,
        /// Give up beyond this width.
        max: usize,
    },
}

/// A fully implemented design.
#[derive(Debug, Clone)]
pub struct Implementation {
    /// The packed design (owns the netlist).
    pub design: PackedDesign,
    /// Block placement.
    pub placement: Placement,
    /// The routing-resource graph at the operating width, shared with
    /// every other job on the same architecture via the graph store.
    pub rr: Arc<RrGraph>,
    /// The routing at the operating width.
    pub routing: Routing,
    /// Result of the width search, when one ran.
    pub width_search: Option<WidthSearchSummary>,
}

/// Serializable summary of a width search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidthSearchSummary {
    /// Minimum routable width found.
    pub w_min: usize,
    /// Operating width used.
    pub operating_width: usize,
}

impl From<&WidthSearch> for WidthSearchSummary {
    fn from(s: &WidthSearch) -> Self {
        Self { w_min: s.w_min, operating_width: s.low_stress_width() }
    }
}

/// Runs pack → place → route for `netlist`.
///
/// # Errors
///
/// Propagates any [`PnrError`] from the stages.
///
/// # Examples
///
/// ```
/// use nemfpga_arch::ArchParams;
/// use nemfpga_netlist::synth::SynthConfig;
/// use nemfpga_pnr::flow::{implement, WidthPolicy};
/// use nemfpga_pnr::place::PlaceConfig;
/// use nemfpga_pnr::route::RouteConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let netlist = SynthConfig::tiny("t", 30, 1).generate()?;
/// let imp = implement(
///     netlist,
///     &ArchParams::paper_table1(),
///     &PlaceConfig::fast(1),
///     &RouteConfig::new(),
///     WidthPolicy::LowStress { hint: 8, max: 128 },
/// )?;
/// assert!(imp.rr.channel_width >= imp.width_search.unwrap().w_min);
/// # Ok(())
/// # }
/// ```
pub fn implement(
    netlist: Netlist,
    params: &ArchParams,
    place_cfg: &PlaceConfig,
    route_cfg: &RouteConfig,
    width: WidthPolicy,
) -> Result<Implementation, PnrError> {
    let design = {
        let _span = nemfpga_obs::span("flow", "pack");
        nemfpga_obs::progress::stage("pack");
        pack(netlist, params)?
    };
    let grid = Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)
        .map_err(|e| PnrError::BadNetlist { message: e.to_string() })?;
    let placement = {
        let _span = nemfpga_obs::span("flow", "place");
        nemfpga_obs::progress::stage("place");
        place(&design, grid, place_cfg)?
    };

    // Covers the whole width-resolution phase (W_min search included):
    // dropped on every return path below.
    let mut route_span = nemfpga_obs::span("flow", "route");
    nemfpga_obs::progress::stage("route");
    match width {
        WidthPolicy::Fixed(w) => {
            route_span.set_arg("width", w as u64);
            let rr = shared_rr_graph(params, grid, w)
                .map_err(|e| PnrError::BadNetlist { message: e.to_string() })?;
            let routing = route(&rr, &design, &placement, route_cfg)?;
            Ok(Implementation { design, placement, rr, routing, width_search: None })
        }
        WidthPolicy::LowStress { hint, max } => {
            let search = find_min_channel_width(params, &design, &placement, route_cfg, hint, max)?;
            let mut summary = WidthSearchSummary::from(&search);
            route_span.set_arg("w_min", search.w_min as u64);
            // Routability is not strictly monotone in W (per-width pin/track
            // mappings differ), so walk upward a little before falling back
            // to the known-good minimum-width routing.
            let mut scratch = RouterScratch::new();
            for w in [0usize, 2, 4, 8].map(|d| summary.operating_width + d) {
                if let Ok(rr) = shared_rr_graph(params, grid, w) {
                    if let Ok(routing) =
                        route_with_scratch(&rr, &design, &placement, route_cfg, &mut scratch)
                    {
                        summary.operating_width = w;
                        return Ok(Implementation {
                            design,
                            placement,
                            rr,
                            routing,
                            width_search: Some(summary),
                        });
                    }
                }
            }
            summary.operating_width = search.w_min;
            let rr = shared_rr_graph(params, grid, search.w_min)
                .map_err(|e| PnrError::BadNetlist { message: e.to_string() })?;
            Ok(Implementation {
                design,
                placement,
                rr,
                routing: search.routing,
                width_search: Some(summary),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::check_routing;
    use nemfpga_netlist::synth::SynthConfig;

    #[test]
    fn end_to_end_low_stress_flow() {
        let netlist = SynthConfig::tiny("t", 80, 5).generate().unwrap();
        let imp = implement(
            netlist,
            &ArchParams::paper_table1(),
            &PlaceConfig::fast(5),
            &RouteConfig::new(),
            WidthPolicy::LowStress { hint: 8, max: 256 },
        )
        .unwrap();
        check_routing(&imp.rr, &imp.design, &imp.placement, &imp.routing).unwrap();
        let ws = imp.width_search.unwrap();
        assert_eq!(imp.rr.channel_width, ws.operating_width);
        assert!(ws.operating_width >= ws.w_min);
    }

    #[test]
    fn fixed_width_flow() {
        let netlist = SynthConfig::tiny("t", 30, 6).generate().unwrap();
        let imp = implement(
            netlist,
            &ArchParams::paper_table1(),
            &PlaceConfig::fast(6),
            &RouteConfig::new(),
            WidthPolicy::Fixed(20),
        )
        .unwrap();
        assert_eq!(imp.rr.channel_width, 20);
        assert!(imp.width_search.is_none());
    }
}
