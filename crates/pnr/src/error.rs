//! Error types for the place-and-route substrate.

use std::fmt;

/// Errors produced by packing, placement, routing, or timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum PnrError {
    /// The netlist failed a structural precondition.
    BadNetlist {
        /// Description of the problem.
        message: String,
    },
    /// The grid cannot host the packed design.
    DoesNotFit {
        /// What did not fit.
        what: &'static str,
        /// Capacity available.
        capacity: usize,
        /// Amount required.
        required: usize,
    },
    /// The router exhausted its iteration budget with overused resources.
    Unroutable {
        /// Overused routing-resource nodes at the final iteration.
        overused_nodes: usize,
        /// Iterations attempted.
        iterations: usize,
    },
    /// No channel width in the searched range could route the design.
    NoFeasibleWidth {
        /// Largest width attempted.
        max_tried: usize,
    },
    /// A net references a block with no placement or routing.
    Inconsistent {
        /// Description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for PnrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadNetlist { message } => write!(f, "bad netlist: {message}"),
            Self::DoesNotFit { what, capacity, required } => {
                write!(f, "design needs {required} {what}, grid offers {capacity}")
            }
            Self::Unroutable { overused_nodes, iterations } => write!(
                f,
                "unroutable: {overused_nodes} overused nodes after {iterations} iterations"
            ),
            Self::NoFeasibleWidth { max_tried } => {
                write!(f, "no feasible channel width up to {max_tried}")
            }
            Self::Inconsistent { message } => write!(f, "inconsistent state: {message}"),
        }
    }
}

impl std::error::Error for PnrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = PnrError::Unroutable { overused_nodes: 17, iterations: 30 };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PnrError>();
    }
}
