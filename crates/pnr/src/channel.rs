//! Minimum-channel-width search (the W_min experiment of Sec. 3.3).
//!
//! VPR's standard methodology: binary-search the channel width for the
//! smallest `W` at which the router succeeds, then operate the
//! architecture at `1.2 × W_min` for "low-stress routing" [Betz 99b] —
//! exactly how the paper arrives at `W = 118`.

use crate::error::PnrError;
use crate::pack::PackedDesign;
use crate::place::Placement;
use crate::route::{route_with_scratch, RouteConfig, RouterScratch, Routing};
use nemfpga_arch::params::ArchParams;
use nemfpga_arch::store::shared_rr_graph;
use serde::{Deserialize, Serialize};

/// Result of a minimum-width search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidthSearch {
    /// Smallest routable channel width found.
    pub w_min: usize,
    /// The routing achieved at `w_min`.
    pub routing: Routing,
    /// Channel widths attempted, in order.
    pub attempts: Vec<(usize, bool)>,
}

impl WidthSearch {
    /// The low-stress operating width, `ceil(1.2 × W_min)` (Sec. 3.3).
    pub fn low_stress_width(&self) -> usize {
        (self.w_min as f64 * 1.2).ceil() as usize
    }
}

/// Binary-searches the minimum routable channel width for a placed design.
///
/// Starts from `hint`, doubles until routable, then bisects down.
///
/// # Errors
///
/// Returns [`PnrError::NoFeasibleWidth`] if no width up to `max_width`
/// routes, or any structural error from the router.
///
/// # Examples
///
/// ```
/// use nemfpga_arch::{ArchParams, Grid};
/// use nemfpga_netlist::synth::SynthConfig;
/// use nemfpga_pnr::channel::find_min_channel_width;
/// use nemfpga_pnr::pack::pack;
/// use nemfpga_pnr::place::{place, PlaceConfig};
/// use nemfpga_pnr::route::RouteConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = ArchParams::paper_table1();
/// let design = pack(SynthConfig::tiny("t", 30, 1).generate()?, &params)?;
/// let grid = Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)?;
/// let placement = place(&design, grid, &PlaceConfig::fast(1))?;
/// let search = find_min_channel_width(&params, &design, &placement, &RouteConfig::new(), 8, 128)?;
/// assert!(search.w_min >= 1);
/// assert!(search.low_stress_width() >= search.w_min);
/// # Ok(())
/// # }
/// ```
pub fn find_min_channel_width(
    params: &ArchParams,
    design: &PackedDesign,
    placement: &Placement,
    route_cfg: &RouteConfig,
    hint: usize,
    max_width: usize,
) -> Result<WidthSearch, PnrError> {
    let mut attempts = Vec::new();
    // One scratch arena serves every width attempt; each routing run
    // reuses the previous run's allocations.
    let mut scratch = RouterScratch::new();
    let mut try_width = |w: usize, attempts: &mut Vec<(usize, bool)>| -> Option<Routing> {
        // The graph store builds each probed width at most once per
        // process — repeated searches over one architecture (sweeps,
        // Monte-Carlo shards) reuse the shared CSR graphs.
        let rr = match shared_rr_graph(params, placement.grid, w) {
            Ok(rr) => rr,
            Err(_) => return None,
        };
        match route_with_scratch(&rr, design, placement, route_cfg, &mut scratch) {
            Ok(r) => {
                attempts.push((w, true));
                Some(r)
            }
            Err(_) => {
                attempts.push((w, false));
                None
            }
        }
    };

    // Phase 1: find an upper bound by doubling from the hint.
    let mut hi = hint.max(2);
    let best: Option<(usize, Routing)>;
    loop {
        if let Some(r) = try_width(hi, &mut attempts) {
            best = Some((hi, r));
            break;
        }
        if hi >= max_width {
            return Err(PnrError::NoFeasibleWidth { max_tried: hi });
        }
        hi = (hi * 2).min(max_width);
    }

    // Phase 2: bisect between the largest known-failing width and hi.
    let mut lo = attempts.iter().filter(|(_, ok)| !ok).map(|(w, _)| *w).max().unwrap_or(1);
    let (mut w_best, mut routing_best) = best.expect("phase 1 found a routable width");
    while w_best > lo + 1 {
        let mid = (lo + w_best) / 2;
        match try_width(mid, &mut attempts) {
            Some(r) => {
                w_best = mid;
                routing_best = r;
            }
            None => lo = mid,
        }
    }

    Ok(WidthSearch { w_min: w_best, routing: routing_best, attempts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use crate::place::{place, PlaceConfig};
    use nemfpga_arch::Grid;
    use nemfpga_netlist::synth::SynthConfig;

    fn searched(luts: usize, seed: u64) -> WidthSearch {
        let params = ArchParams::paper_table1();
        let design = pack(SynthConfig::tiny("t", luts, seed).generate().unwrap(), &params).unwrap();
        let grid =
            Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate).unwrap();
        let placement = place(&design, grid, &PlaceConfig::fast(seed)).unwrap();
        find_min_channel_width(&params, &design, &placement, &RouteConfig::new(), 6, 256).unwrap()
    }

    #[test]
    fn w_min_is_minimal() {
        let s = searched(60, 1);
        // The width just below w_min must have failed during the search
        // (or w_min is the initial lower bound).
        assert!(s.w_min >= 2);
        let failed_below = s.attempts.iter().any(|(w, ok)| !ok && *w < s.w_min);
        let trivially_minimal = s.w_min <= 2;
        assert!(failed_below || trivially_minimal, "attempts: {:?}", s.attempts);
    }

    #[test]
    fn low_stress_is_twenty_percent_up() {
        let s = searched(40, 2);
        assert_eq!(s.low_stress_width(), (s.w_min as f64 * 1.2).ceil() as usize);
        assert!(s.low_stress_width() >= s.w_min);
    }

    #[test]
    fn bigger_designs_need_wider_channels() {
        let small = searched(30, 3);
        let large = searched(200, 3);
        assert!(large.w_min >= small.w_min, "large {} < small {}", large.w_min, small.w_min);
    }
}
