//! PathFinder negotiated-congestion routing (McMurchie & Ebeling, as used
//! by VPR).
//!
//! Every net is routed with an A*-guided maze expansion over the
//! routing-resource graph; iterations repeat with growing present- and
//! history-congestion penalties until no node is overused.

use crate::error::PnrError;
use crate::pack::PackedDesign;
use crate::place::Placement;
use nemfpga_arch::rrgraph::{RrGraph, RrKind, RrNodeId, SwitchClass};
use nemfpga_netlist::ids::NetId;
use nemfpga_obs::{Counter, Histogram};
use nemfpga_runtime::{parallel_map, FxHashSet, ParallelConfig, ScratchPool};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteConfig {
    /// Maximum rip-up-and-reroute iterations.
    pub max_iterations: usize,
    /// Present-congestion factor of the first iteration.
    pub pres_fac_init: f64,
    /// Present-congestion growth per iteration.
    pub pres_fac_mult: f64,
    /// History-cost accumulation factor.
    pub hist_fac: f64,
    /// A* aggressiveness (1.0 = admissible-ish, >1 faster/greedier).
    pub astar_fac: f64,
    /// Search-window margin (tiles) around each net's bounding box.
    pub bbox_margin: usize,
    /// Between iterations, rip up only nets whose trees overlap overused
    /// nodes (with periodic full-rip-up fallbacks when negotiation
    /// stalls). `false` restores the classic rip-up-everything PathFinder
    /// schedule; the final routing legality is identical either way.
    pub incremental: bool,
    /// Net-level parallelism *within* each PathFinder iteration. Nets
    /// whose search windows are disjoint route concurrently in conflict
    /// groups (waves); results are bit-identical at any thread count.
    /// Serial by default — callers opt in, and nested fan-outs (a sweep
    /// already running one variant per thread) should stay serial.
    pub parallel: ParallelConfig,
}

impl RouteConfig {
    /// Default VPR-like settings. The gentle present-cost escalation
    /// matters: too-steep growth turns every occupied node into a wall and
    /// the router thrashes instead of negotiating.
    pub fn new() -> Self {
        Self {
            max_iterations: 150,
            pres_fac_init: 0.5,
            pres_fac_mult: 1.3,
            hist_fac: 0.5,
            astar_fac: 1.15,
            bbox_margin: 3,
            incremental: true,
            parallel: ParallelConfig::serial(),
        }
    }
}

impl Default for RouteConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One node of a net's routed tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteTreeNode {
    /// The routing resource.
    pub rr: RrNodeId,
    /// Index of the parent tree node (`None` for the source).
    pub parent: Option<u32>,
    /// Switch class of the edge from the parent into this node.
    pub entered_via: SwitchClass,
}

/// A routed net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedNet {
    /// The netlist net.
    pub net: NetId,
    /// Tree nodes; index 0 is the source.
    pub tree: Vec<RouteTreeNode>,
}

impl RoutedNet {
    /// Wire nodes used by the net.
    pub fn wire_nodes<'a>(&'a self, rr: &'a RrGraph) -> impl Iterator<Item = RrNodeId> + 'a {
        self.tree.iter().map(|t| t.rr).filter(move |id| rr.node(*id).kind.is_wire())
    }

    /// Total tiles of wire the net uses.
    pub fn wirelength_tiles(&self, rr: &RrGraph) -> usize {
        self.wire_nodes(rr).map(|id| rr.node(id).kind.span_tiles()).sum()
    }
}

/// A complete routing of a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    /// One routed tree per inter-block net (same order as
    /// `PackedDesign::nets`).
    pub nets: Vec<RoutedNet>,
    /// PathFinder iterations used.
    pub iterations: usize,
    /// Total routed wirelength in tiles.
    pub wirelength_tiles: usize,
    /// Nets actually ripped up and rerouted in each iteration. Entry 0 is
    /// always the full net count; later entries measure how much work
    /// incremental rerouting avoided (`sum()` = total maze expansions).
    pub rerouted_per_iteration: Vec<usize>,
}

impl Routing {
    /// Total net-routing passes performed across all iterations — the
    /// router's work metric (full PathFinder does `nets × iterations`).
    pub fn total_reroutes(&self) -> usize {
        self.rerouted_per_iteration.iter().sum()
    }
}

#[derive(Debug, Copy, Clone, PartialEq)]
struct HeapEntry {
    priority: f64,
    cost: f64,
    node: RrNodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on priority.
        other.priority.partial_cmp(&self.priority).unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Routes every inter-block net of `design` over `rr` given `placement`.
///
/// # Errors
///
/// * [`PnrError::Inconsistent`] if a block sits on a tile without
///   source/sink nodes.
/// * [`PnrError::Unroutable`] if congestion cannot be resolved within the
///   iteration budget (the signal the channel-width search uses).
///
/// # Examples
///
/// ```
/// use nemfpga_arch::{build_rr_graph, ArchParams, Grid};
/// use nemfpga_netlist::synth::SynthConfig;
/// use nemfpga_pnr::pack::pack;
/// use nemfpga_pnr::place::{place, PlaceConfig};
/// use nemfpga_pnr::route::{route, RouteConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = ArchParams::paper_table1();
/// let design = pack(SynthConfig::tiny("t", 30, 1).generate()?, &params)?;
/// let grid = Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)?;
/// let placement = place(&design, grid, &PlaceConfig::fast(1))?;
/// let rr = build_rr_graph(&params, grid, 16)?;
/// let routing = route(&rr, &design, &placement, &RouteConfig::new())?;
/// assert_eq!(routing.nets.len(), design.nets().len());
/// # Ok(())
/// # }
/// ```
pub fn route(
    rr: &RrGraph,
    design: &PackedDesign,
    placement: &Placement,
    config: &RouteConfig,
) -> Result<Routing, PnrError> {
    route_with_scratch(rr, design, placement, config, &mut RouterScratch::new())
}

/// [`route`] with caller-owned scratch state.
///
/// Repeated routing runs — the channel-width search, sweeps — pay the
/// router's arena allocations once and reuse them: the scratch resizes
/// itself to each RR graph and never shrinks.
///
/// # Errors
///
/// Same contract as [`route`].
pub fn route_with_scratch(
    rr: &RrGraph,
    design: &PackedDesign,
    placement: &Placement,
    config: &RouteConfig,
    scratch: &mut RouterScratch,
) -> Result<Routing, PnrError> {
    route_core(rr, design, placement, config, scratch, false).map(|(routing, _)| routing)
}

/// Diagnostic routing: like [`route`] but, on congestion failure, returns
/// the final (illegal) routing together with the overused nodes instead of
/// an error. Useful for congestion analysis and debugging.
///
/// # Errors
///
/// Returns only structural errors ([`PnrError::Inconsistent`]); congestion
/// is reported through the overused-node list.
pub fn route_allow_overuse(
    rr: &RrGraph,
    design: &PackedDesign,
    placement: &Placement,
    config: &RouteConfig,
) -> Result<(Routing, Vec<RrNodeId>), PnrError> {
    route_core(rr, design, placement, config, &mut RouterScratch::new(), true)
}

/// Reusable router working state, sized to one RR graph.
///
/// `route_net` needs per-search shortest-path state (`cost_to`, `prev`),
/// per-net tree membership, a priority queue, and assorted small buffers.
/// Allocating these per net dominated router time on small fabrics;
/// instead they live here and are *invalidated by epoch stamping*: each
/// maze search bumps `epoch`, each net bumps `net_epoch`, and a slot is
/// only meaningful when its stamp matches — no clearing loops, no hashing.
#[derive(Debug, Clone)]
pub struct RouterScratch {
    // Per-search A* state, valid where `visit_epoch` matches `epoch`.
    cost_to: Vec<f64>,
    prev: Vec<(RrNodeId, SwitchClass)>,
    visit_epoch: Vec<u32>,
    epoch: u32,
    // Per-net tree membership, valid where `tree_epoch` matches `net_epoch`.
    tree_slot: Vec<u32>,
    tree_epoch: Vec<u32>,
    net_epoch: u32,
    // The A* frontier; retains capacity across nets and runs.
    heap: BinaryHeap<HeapEntry>,
    // Sink ordering and backtrack buffers.
    ordered_sinks: Vec<RrNodeId>,
    path: Vec<(RrNodeId, SwitchClass)>,
    // Flat per-node base costs, rebuilt per route call (pure function of
    // the graph; the allocation is what's worth keeping).
    base_cost: Vec<f64>,
    // Per-worker scratches kept warm between parallel route calls.
    workers: Vec<RouterScratch>,
    // Heap pushes since the last flush — the router's effort metric,
    // accumulated locally so the hot loop never touches an atomic.
    heap_pushes: u64,
}

impl RouterScratch {
    /// An empty scratch; it sizes itself on first use.
    pub fn new() -> Self {
        Self {
            cost_to: Vec::new(),
            prev: Vec::new(),
            visit_epoch: Vec::new(),
            epoch: 0,
            tree_slot: Vec::new(),
            tree_epoch: Vec::new(),
            net_epoch: 0,
            heap: BinaryHeap::new(),
            ordered_sinks: Vec::new(),
            path: Vec::new(),
            base_cost: Vec::new(),
            workers: Vec::new(),
            heap_pushes: 0,
        }
    }

    /// Resizes for an RR graph of `n_nodes`, keeping allocations when the
    /// graph already fits.
    fn prepare(&mut self, n_nodes: usize) {
        if self.cost_to.len() < n_nodes {
            self.cost_to.resize(n_nodes, f64::INFINITY);
            self.prev.resize(n_nodes, (RrNodeId(0), SwitchClass::Internal));
            self.visit_epoch.resize(n_nodes, 0);
            self.tree_slot.resize(n_nodes, 0);
            self.tree_epoch.resize(n_nodes, 0);
        }
    }

    /// Starts a new per-net tree scope (stamp 0 = never used).
    fn begin_net(&mut self) {
        self.net_epoch = self.net_epoch.wrapping_add(1);
        if self.net_epoch == 0 {
            self.tree_epoch.fill(0);
            self.net_epoch = 1;
        }
    }

    /// Starts a new maze search scope.
    fn begin_search(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visit_epoch.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
    }
}

impl Default for RouterScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A net's resolved endpoints in the RR graph.
struct Terminals {
    source: RrNodeId,
    sinks: Vec<RrNodeId>,
    bbox: (usize, usize, usize, usize),
}

/// Resolves every net's source/sink RR nodes and search window once.
fn resolve_terminals(
    rr: &RrGraph,
    design: &PackedDesign,
    placement: &Placement,
    config: &RouteConfig,
) -> Result<Vec<Terminals>, PnrError> {
    let mut terminals = Vec::with_capacity(design.nets().len());
    for pn in design.nets() {
        let (sx, sy) = placement.loc(pn.driver);
        let source = rr.source_at(sx, sy).ok_or_else(|| PnrError::Inconsistent {
            message: format!("no source node at ({sx},{sy})"),
        })?;
        let mut sinks = Vec::with_capacity(pn.sinks.len());
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (sx, sx, sy, sy);
        for &b in &pn.sinks {
            let (x, y) = placement.loc(b);
            let sink = rr.sink_at(x, y).ok_or_else(|| PnrError::Inconsistent {
                message: format!("no sink node at ({x},{y})"),
            })?;
            if !sinks.contains(&sink) {
                sinks.push(sink);
            }
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let m = config.bbox_margin;
        terminals.push(Terminals {
            source,
            sinks,
            bbox: (min_x.saturating_sub(m), max_x + m, min_y.saturating_sub(m), max_y + m),
        });
    }
    Ok(terminals)
}

/// Per-call immutable routing context: the graph plus every derived
/// table the maze expansion reads. Shared by reference across all router
/// threads — nothing here is written during an iteration.
struct RouteCtx<'a> {
    rr: &'a RrGraph,
    config: &'a RouteConfig,
    /// Flat per-node base cost (pure function of the graph).
    base_cost: &'a [f64],
    /// Per-wire-class A* lower-bound table.
    lookahead: Lookahead,
}

/// Per-wire-class geometric lookahead for the A* lower bound.
///
/// A wire class is a distinct channel-segment span; its figure of merit
/// is base cost per tile of progress, and `dist × min(cost-per-tile)`
/// is a lower bound on the remaining path cost no matter which classes
/// the path uses. Under the current base-cost model (wire cost = span)
/// every class collapses to exactly 1.0/tile, so the bound is
/// bit-identical to the legacy Manhattan heuristic — the differential
/// families pin that equality; the table becomes load-bearing the
/// moment per-class base costs diverge (e.g. buffered long lines).
struct Lookahead {
    /// `(span, base-cost-per-tile)` per wire class, span-sorted.
    classes: Vec<(usize, f64)>,
    /// Cheapest progress rate any class offers.
    min_cost_per_tile: f64,
}

impl Lookahead {
    fn for_graph(rr: &RrGraph) -> Self {
        let mut classes: Vec<(usize, f64)> = Vec::new();
        for id in rr.node_ids() {
            let kind = rr.node(id).kind;
            if kind.is_wire() {
                let span = kind.span_tiles();
                if !classes.iter().any(|&(s, _)| s == span) {
                    classes.push((span, base_cost_of(kind) / span as f64));
                }
            }
        }
        classes.sort_unstable_by_key(|&(s, _)| s);
        let min = classes.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        let table = Self { classes, min_cost_per_tile: if min.is_finite() { min } else { 1.0 } };
        debug_assert!(
            table.classes.windows(2).all(|w| w[0].0 < w[1].0),
            "one entry per distinct span"
        );
        table
    }

    /// The admissible-ish remaining-cost bound from `at` to `target`.
    #[inline]
    fn bound(&self, astar_fac: f64, at: (f64, f64), target: (f64, f64)) -> f64 {
        astar_fac * dist(at, target) * self.min_cost_per_tile
    }
}

/// Handles into the process-global engine registry (`nemfpga-obs`):
/// router effort becomes visible on `/v1/metrics` and in Prometheus
/// scrapes without threading a service handle through the CAD stack.
struct RouteMetrics {
    calls: Counter,
    iterations: Counter,
    reroutes: Counter,
    heap_pushes: Counter,
    conflict_groups: Counter,
    group_size: Histogram,
}

impl RouteMetrics {
    fn handles() -> Self {
        let r = nemfpga_obs::engine_registry();
        Self {
            calls: r.counter("route_calls"),
            iterations: r.counter("route_iterations"),
            reroutes: r.counter("route_reroutes"),
            heap_pushes: r.counter("route_heap_pushes"),
            conflict_groups: r.counter("route_conflict_groups"),
            group_size: r.histogram("route_conflict_group_size"),
        }
    }
}

/// A net's search window after margin inflation: the closed tile-space
/// rectangle containing every node its maze expansion can examine.
/// Wires are pruned to `bbox ± 1.0` around their centers; terminals lie
/// inside the un-inflated bbox; opins/ipins/sources/sinks of *other*
/// nets are never expanded (foreign sinks and sources are skipped, and
/// ipins only at the net's own target tile). Two nets with disjoint
/// windows therefore cannot observe each other's occupancy changes —
/// the invariant wavefront scheduling builds on.
type Window = (i64, i64, i64, i64);

fn inflated_bbox(bbox: (usize, usize, usize, usize), extra: usize) -> (usize, usize, usize, usize) {
    (bbox.0.saturating_sub(extra), bbox.1 + extra, bbox.2.saturating_sub(extra), bbox.3 + extra)
}

fn window_of(bbox: (usize, usize, usize, usize), extra: usize) -> Window {
    let b = inflated_bbox(bbox, extra);
    (b.0 as i64 - 1, b.1 as i64 + 1, b.2 as i64 - 1, b.3 as i64 + 1)
}

#[inline]
fn windows_overlap(a: Window, b: Window) -> bool {
    a.0 <= b.1 && b.0 <= a.1 && a.2 <= b.3 && b.2 <= a.3
}

/// Wavefront schedule over the nets ripped up this iteration (`windows`
/// is in routing order): `wave(k) = 1 + max(wave(j))` over earlier nets
/// `j` whose window overlaps `k`'s, so nets within a wave are mutually
/// disjoint and every net's conflicting predecessors are fully merged
/// before it routes. Routing the waves in sequence — each wave's nets
/// in any concurrency, merged in net order — is bit-identical to the
/// serial schedule (DESIGN.md gives the argument).
fn plan_waves(windows: &[Window]) -> Vec<Vec<usize>> {
    let mut wave_of = vec![0usize; windows.len()];
    let mut n_waves = 0usize;
    for i in 0..windows.len() {
        let mut wave = 0usize;
        for j in 0..i {
            // `wave_of[j] >= wave` short-circuits the geometry test.
            if wave_of[j] >= wave && windows_overlap(windows[i], windows[j]) {
                wave = wave_of[j] + 1;
            }
        }
        wave_of[i] = wave;
        n_waves = n_waves.max(wave + 1);
    }
    let mut waves = vec![Vec::new(); n_waves];
    for (i, &w) in wave_of.iter().enumerate() {
        waves[w].push(i);
    }
    waves
}

/// Waves below this size route inline on the calling thread: spawning a
/// fan-out for one or two nets costs more than it saves.
const PAR_WAVE_MIN: usize = 4;

/// The PathFinder loop shared by all entry points.
///
/// With `keep_final_state` the last (possibly congested) routing is
/// returned together with the overused-node list instead of
/// [`PnrError::Unroutable`].
fn route_core(
    rr: &RrGraph,
    design: &PackedDesign,
    placement: &Placement,
    config: &RouteConfig,
    scratch: &mut RouterScratch,
    keep_final_state: bool,
) -> Result<(Routing, Vec<RrNodeId>), PnrError> {
    let metrics = RouteMetrics::handles();
    metrics.calls.inc();
    scratch.prepare(rr.num_nodes());
    let mut base_cost = std::mem::take(&mut scratch.base_cost);
    base_cost.clear();
    base_cost.extend(rr.node_ids().map(|id| base_cost_of(rr.node(id).kind)));
    let pool = ScratchPool::from_vec(std::mem::take(&mut scratch.workers));
    let ctx = RouteCtx { rr, config, base_cost: &base_cost, lookahead: Lookahead::for_graph(rr) };
    let result =
        route_core_inner(&ctx, design, placement, scratch, keep_final_state, &pool, &metrics);
    scratch.workers = pool.into_vec();
    let mut pushes = std::mem::take(&mut scratch.heap_pushes);
    for worker in &mut scratch.workers {
        pushes += std::mem::take(&mut worker.heap_pushes);
    }
    metrics.heap_pushes.add(pushes);
    scratch.base_cost = base_cost;
    result
}

#[allow(clippy::too_many_arguments)]
fn route_core_inner(
    ctx: &RouteCtx<'_>,
    design: &PackedDesign,
    placement: &Placement,
    scratch: &mut RouterScratch,
    keep_final_state: bool,
    pool: &ScratchPool<RouterScratch>,
    metrics: &RouteMetrics,
) -> Result<(Routing, Vec<RrNodeId>), PnrError> {
    let (rr, config) = (ctx.rr, ctx.config);
    let n_nodes = rr.num_nodes();
    let mut occupancy = vec![0u16; n_nodes];
    let mut history = vec![0.0f64; n_nodes];
    let mut pres_fac = config.pres_fac_init;

    // Net routing order: largest fanout first (hardest nets claim paths
    // early), stable across iterations.
    let mut order: Vec<usize> = (0..design.nets().len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(design.nets()[i].sinks.len()));

    let terminals = resolve_terminals(rr, design, placement, config)?;
    // Nets route in parallel waves only when the caller opted in; the
    // serial path below is the reference schedule the waves must match.
    let net_parallel = config.parallel.effective_threads(design.nets().len()) > 1;

    let mut routed: Vec<Option<RoutedNet>> = vec![None; design.nets().len()];
    let mut iterations = 0usize;
    let mut rerouted_per_iteration = Vec::new();

    // Only nets whose trees touch overused resources are rerouted after the
    // first iteration: faster, and it breaks the lockstep oscillation two
    // symmetric nets can otherwise fall into.
    let mut dirty = vec![true; design.nets().len()];
    // Early abort when congestion is clearly not converging: saves most of
    // the time the channel-width search spends on infeasible widths.
    let mut best_overused = usize::MAX;
    let mut stalled = 0usize;
    let hopeless_threshold = (design.nets().len() / 20).max(30);
    // When negotiation stalls, let contested nets detour farther afield.
    let mut extra_margin = 0usize;

    for iter in 0..config.max_iterations {
        // Cancellation boundary: a cancelled job (service drain, client
        // DELETE) aborts between negotiation iterations, never mid-net.
        nemfpga_runtime::cancel::checkpoint();
        iterations = iter + 1;
        let mut iter_span = nemfpga_obs::span("route", "route.iteration");
        iter_span.set_arg("iteration", iterations as u64);
        nemfpga_obs::progress::tick("route.iteration", iterations as u64);

        let mut rerouted = 0usize;
        if !net_parallel {
            for &ni in &order {
                if !dirty[ni] {
                    continue;
                }
                rerouted += 1;
                // Rip up the previous tree.
                if let Some(old) = routed[ni].take() {
                    for t in &old.tree {
                        occupancy[t.rr.index()] = occupancy[t.rr.index()].saturating_sub(1);
                    }
                }
                let term = &terminals[ni];
                let bbox = inflated_bbox(term.bbox, extra_margin);
                let tree = route_net(
                    ctx,
                    term.source,
                    &term.sinks,
                    bbox,
                    &occupancy,
                    &history,
                    pres_fac,
                    ni as u64,
                    scratch,
                )?;
                for t in &tree {
                    occupancy[t.rr.index()] += 1;
                }
                routed[ni] = Some(RoutedNet { net: design.nets()[ni].net, tree });
            }
        } else {
            // Wavefront net parallelism: this iteration's dirty nets, in
            // routing order, partitioned so each wave holds mutually
            // window-disjoint nets. Per wave: rip every old tree, route
            // all nets against the frozen occupancy (concurrently when
            // the wave is big enough), then commit trees in net order.
            // Bit-identical to the serial loop above at any thread count.
            let dirty_nets: Vec<usize> = order.iter().copied().filter(|&ni| dirty[ni]).collect();
            rerouted = dirty_nets.len();
            let windows: Vec<Window> =
                dirty_nets.iter().map(|&ni| window_of(terminals[ni].bbox, extra_margin)).collect();
            let waves = plan_waves(&windows);
            metrics.conflict_groups.add(waves.len() as u64);
            iter_span.set_arg("conflict_groups", waves.len() as u64);
            // A net that fails to route aborts the call, like the serial
            // `?` — but only after the iteration completes, so the error
            // reported is the *first failing net in routing order* (maze
            // failures are structural, independent of occupancy, so the
            // failing set does not depend on the schedule).
            let mut failure: Option<(usize, PnrError)> = None;
            for wave in &waves {
                metrics.group_size.record(wave.len() as u64);
                for &wi in wave {
                    if let Some(old) = routed[dirty_nets[wi]].take() {
                        for t in &old.tree {
                            occupancy[t.rr.index()] = occupancy[t.rr.index()].saturating_sub(1);
                        }
                    }
                }
                let route_one = |ws: &mut RouterScratch, ni: usize, occ: &[u16]| {
                    let term = &terminals[ni];
                    let bbox = inflated_bbox(term.bbox, extra_margin);
                    route_net(
                        ctx,
                        term.source,
                        &term.sinks,
                        bbox,
                        occ,
                        &history,
                        pres_fac,
                        ni as u64,
                        ws,
                    )
                };
                let results: Vec<Result<Vec<RouteTreeNode>, PnrError>> = if wave.len()
                    < PAR_WAVE_MIN
                {
                    wave.iter().map(|&wi| route_one(scratch, dirty_nets[wi], &occupancy)).collect()
                } else {
                    parallel_map(&config.parallel, wave, |_, &wi| {
                        pool.with(|ws| {
                            ws.prepare(n_nodes);
                            route_one(ws, dirty_nets[wi], &occupancy)
                        })
                    })
                };
                // Deterministic merge: commit in net order (wave indices
                // ascend in routing order).
                for (&wi, result) in wave.iter().zip(results) {
                    match result {
                        Ok(tree) => {
                            let ni = dirty_nets[wi];
                            for t in &tree {
                                occupancy[t.rr.index()] += 1;
                            }
                            routed[ni] = Some(RoutedNet { net: design.nets()[ni].net, tree });
                        }
                        Err(e) => {
                            if failure.as_ref().is_none_or(|(fw, _)| wi < *fw) {
                                failure = Some((wi, e));
                            }
                        }
                    }
                }
            }
            if let Some((_, e)) = failure {
                return Err(e);
            }
        }
        rerouted_per_iteration.push(rerouted);
        metrics.iterations.inc();
        metrics.reroutes.add(rerouted as u64);
        // Incremental-reroute savings show up directly in the trace:
        // `rerouted` vs the full net count this iteration skipped.
        iter_span.set_arg("rerouted", rerouted as u64);
        iter_span.set_arg("nets", order.len() as u64);

        // Congestion check.
        let mut overused = 0usize;
        for id in rr.node_ids() {
            let over = occupancy[id.index()].saturating_sub(rr.node(id).capacity);
            if over > 0 {
                overused += 1;
                history[id.index()] += config.hist_fac * over as f64;
            }
        }
        if overused == 0 {
            let nets: Vec<RoutedNet> = routed.into_iter().map(|r| r.expect("routed")).collect();
            let wirelength_tiles = nets.iter().map(|n| n.wirelength_tiles(rr)).sum();
            return Ok((
                Routing { nets, iterations, wirelength_tiles, rerouted_per_iteration },
                Vec::new(),
            ));
        }
        if overused < best_overused {
            best_overused = overused;
            stalled = 0;
        } else {
            stalled += 1;
        }
        if stalled >= 12 && overused > hopeless_threshold {
            break;
        }
        if stalled > 0 && stalled.is_multiple_of(5) {
            extra_margin += 2;
        }
        // Incremental rerouting (only congested nets) is fast but can
        // freeze third-party nets whose resources the contested nets need;
        // when negotiation stalls, fall back to a full rip-up round so
        // everyone renegotiates.
        if !config.incremental || (stalled > 0 && stalled.is_multiple_of(3)) {
            dirty.fill(true);
        } else {
            for (ni, r) in routed.iter().enumerate() {
                dirty[ni] = r.as_ref().is_none_or(|rn| {
                    rn.tree.iter().any(|t| occupancy[t.rr.index()] > rr.node(t.rr).capacity)
                });
            }
        }
        // Present cost escalates but saturates; unbounded *history* cost is
        // what finally arbitrates long-lived conflicts (PathFinder).
        pres_fac = (pres_fac * config.pres_fac_mult).min(1000.0);
    }

    let overused_nodes: Vec<RrNodeId> =
        rr.node_ids().filter(|id| occupancy[id.index()] > rr.node(*id).capacity).collect();
    if keep_final_state && iterations > 0 {
        let nets: Vec<RoutedNet> = routed.into_iter().map(|r| r.expect("routed")).collect();
        let wirelength_tiles = nets.iter().map(|n| n.wirelength_tiles(rr)).sum();
        return Ok((
            Routing { nets, iterations, wirelength_tiles, rerouted_per_iteration },
            overused_nodes,
        ));
    }
    Err(PnrError::Unroutable { overused_nodes: overused_nodes.len(), iterations })
}

/// Congestion-free base cost of a node: a pure function of the graph,
/// precomputed once per route call into `RouteCtx::base_cost` so the
/// inner loop reads a flat f64 instead of re-matching on the kind.
#[inline]
fn base_cost_of(kind: RrKind) -> f64 {
    match kind {
        RrKind::ChanX { .. } | RrKind::ChanY { .. } => kind.span_tiles() as f64,
        RrKind::Ipin { .. } => 0.95,
        RrKind::Sink { .. } => 0.0,
        _ => 1.0,
    }
}

/// Node congestion cost under the current state.
#[inline]
fn node_cost(
    ctx: &RouteCtx<'_>,
    id: RrNodeId,
    occupancy: &[u16],
    history: &[f64],
    pres_fac: f64,
) -> f64 {
    let capacity = ctx.rr.node(id).capacity;
    let over = (occupancy[id.index()] as i32 + 1 - capacity as i32).max(0) as f64;
    let pres = 1.0 + pres_fac * over;
    (ctx.base_cost[id.index()] + history[id.index()]) * pres
}

/// Deterministic per-(net, node) tie-breaking jitter in [0, 1): keeps two
/// otherwise-symmetric nets from preferring identical alternatives forever.
#[inline]
fn jitter(salt: u64, node: RrNodeId) -> f64 {
    let h = (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        ^ ((node.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    (h >> 40) as f64 / (1u64 << 24) as f64
}

/// Routes one net: grows a tree from the source, A*-expanding to each sink.
///
/// All transient state lives in `scratch`; nothing is allocated here on
/// the hot path (the returned tree itself aside).
#[allow(clippy::too_many_arguments)]
fn route_net(
    ctx: &RouteCtx<'_>,
    source: RrNodeId,
    sinks: &[RrNodeId],
    bbox: (usize, usize, usize, usize),
    occupancy: &[u16],
    history: &[f64],
    pres_fac: f64,
    net_salt: u64,
    scratch: &mut RouterScratch,
) -> Result<Vec<RouteTreeNode>, PnrError> {
    let (rr, config) = (ctx.rr, ctx.config);
    let mut tree: Vec<RouteTreeNode> =
        vec![RouteTreeNode { rr: source, parent: None, entered_via: SwitchClass::Internal }];
    scratch.begin_net();
    scratch.tree_slot[source.index()] = 0;
    scratch.tree_epoch[source.index()] = scratch.net_epoch;

    // Sinks ordered near-to-far from the source (cheap heuristic).
    let src_c = rr.center_of(source);
    scratch.ordered_sinks.clear();
    scratch.ordered_sinks.extend_from_slice(sinks);
    scratch.ordered_sinks.sort_by(|a, b| {
        let da = dist(src_c, rr.center_of(*a));
        let db = dist(src_c, rr.center_of(*b));
        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
    });

    for si in 0..scratch.ordered_sinks.len() {
        let target = scratch.ordered_sinks[si];
        let tgt_c = rr.center_of(target);
        scratch.begin_search();
        let RouterScratch { cost_to, prev, visit_epoch, epoch, heap, heap_pushes, .. } =
            &mut *scratch;
        let epoch = *epoch;

        // Steiner seeding: the whole already-routed tree enters the heap
        // at cost 0, so every later sink branches from the nearest point
        // of the existing tree rather than re-growing from the source.
        for t in &tree {
            cost_to[t.rr.index()] = 0.0;
            visit_epoch[t.rr.index()] = epoch;
            let h = ctx.lookahead.bound(config.astar_fac, rr.center_of(t.rr), tgt_c);
            heap.push(HeapEntry { priority: h, cost: 0.0, node: t.rr });
            *heap_pushes += 1;
        }

        let mut found = false;
        while let Some(entry) = heap.pop() {
            if entry.cost > cost_to[entry.node.index()] {
                continue;
            }
            if entry.node == target {
                found = true;
                break;
            }
            for edge in rr.edges_from(entry.node) {
                let next = edge.to;
                let kind = rr.node(next).kind;
                // Prune: stay inside the net bounding box; never enter a
                // foreign sink; only enter ipins adjacent to the target.
                match kind {
                    RrKind::Sink { .. } => {
                        if next != target {
                            continue;
                        }
                    }
                    // Sources are never re-entered (no inbound edges exist,
                    // this is belt-and-braces). Opins are entered only from
                    // the net's own source, which is how trees begin.
                    RrKind::Source { .. } => continue,
                    RrKind::Opin { .. } => {}
                    RrKind::Ipin { x, y, .. } => {
                        if let RrKind::Sink { x: tx, y: ty } = rr.node(target).kind {
                            if x != tx || y != ty {
                                continue;
                            }
                        }
                    }
                    RrKind::ChanX { .. } | RrKind::ChanY { .. } => {
                        let (cx, cy) = rr.center_of(next);
                        if cx < bbox.0 as f64 - 1.0
                            || cx > bbox.1 as f64 + 1.0
                            || cy < bbox.2 as f64 - 1.0
                            || cy > bbox.3 as f64 + 1.0
                        {
                            continue;
                        }
                    }
                }
                let step = node_cost(ctx, next, occupancy, history, pres_fac)
                    * (1.0 + 0.002 * jitter(net_salt, next));
                let g = entry.cost + step;
                let seen = visit_epoch[next.index()] == epoch;
                if !seen || g < cost_to[next.index()] {
                    visit_epoch[next.index()] = epoch;
                    cost_to[next.index()] = g;
                    prev[next.index()] = (entry.node, edge.switch);
                    let h = ctx.lookahead.bound(config.astar_fac, rr.center_of(next), tgt_c);
                    heap.push(HeapEntry { priority: g + h, cost: g, node: next });
                    *heap_pushes += 1;
                }
            }
        }
        if !found {
            // A maze failure inside the box is structural, not congestion:
            // report it distinctly so callers can tell it apart.
            return Err(PnrError::Inconsistent {
                message: format!(
                    "no path from source {source:?} to sink {target:?} (bbox {bbox:?})"
                ),
            });
        }

        // Backtrack from the target to the existing tree.
        scratch.path.clear();
        let mut cursor = target;
        while scratch.tree_epoch[cursor.index()] != scratch.net_epoch {
            let (parent, switch) = scratch.prev[cursor.index()];
            scratch.path.push((cursor, switch));
            cursor = parent;
        }
        let mut parent_idx = scratch.tree_slot[cursor.index()];
        for pi in (0..scratch.path.len()).rev() {
            let (node, switch) = scratch.path[pi];
            let idx = tree.len() as u32;
            tree.push(RouteTreeNode { rr: node, parent: Some(parent_idx), entered_via: switch });
            scratch.tree_slot[node.index()] = idx;
            scratch.tree_epoch[node.index()] = scratch.net_epoch;
            parent_idx = idx;
        }
    }
    Ok(tree)
}

#[inline]
fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Post-routing fabric utilization statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingUtilization {
    /// Fraction of wire segments carrying a net.
    pub wire_utilization: f64,
    /// Fraction of all wire *tiles* occupied (weights long wires more).
    pub wire_tile_utilization: f64,
    /// Largest per-channel-lane occupancy observed, in `[0, 1]`
    /// (1.0 = some channel region is completely full).
    pub peak_channel_occupancy: f64,
    /// Total switch-box and connection-box switch instances configured on.
    pub switches_used: usize,
}

/// Computes channel/wire utilization of a legal routing — the congestion
/// picture behind the low-stress-W methodology (a healthy 1.2×W_min
/// fabric should sit well below full).
pub fn utilization(rr: &RrGraph, routing: &Routing) -> RoutingUtilization {
    let mut used = vec![false; rr.num_nodes()];
    let mut switches_used = 0usize;
    for net in &routing.nets {
        for t in &net.tree {
            used[t.rr.index()] = true;
            if matches!(t.entered_via, SwitchClass::SwitchBox | SwitchClass::ConnectionBox) {
                switches_used += 1;
            }
        }
    }
    let mut wires = 0usize;
    let mut wires_used = 0usize;
    let mut tiles = 0usize;
    let mut tiles_used = 0usize;
    // Per channel-tile position `(capacity, used)`, as a flat indexed
    // table instead of a hash map keyed by `(axis, chan, pos)`: the
    // position space is small and dense (one slot per channel tile), so
    // hashing every span tile of every wire was pure overhead.
    // Horizontal lanes: chan_y ∈ 0..=gh crossing columns x ∈ 1..=gw;
    // vertical lanes: chan_x ∈ 0..=gw crossing rows y ∈ 1..=gh.
    let (gw, gh) = (rr.grid.width, rr.grid.height);
    let h_lanes = (gh + 1) * gw;
    let mut lane_cap = vec![(0u32, 0u32); h_lanes + (gw + 1) * gh];
    for id in rr.node_ids() {
        let kind = rr.node(id).kind;
        if !kind.is_wire() {
            continue;
        }
        wires += 1;
        let span = kind.span_tiles();
        tiles += span;
        let occupied = used[id.index()];
        if occupied {
            wires_used += 1;
            tiles_used += span;
        }
        let lanes = &mut lane_cap;
        let mut bump = |slot: usize| {
            lanes[slot].0 += 1;
            if occupied {
                lanes[slot].1 += 1;
            }
        };
        match kind {
            RrKind::ChanX { chan_y, x_start, x_end, .. } => {
                for x in x_start..=x_end {
                    bump(chan_y as usize * gw + (x as usize - 1));
                }
            }
            RrKind::ChanY { chan_x, y_start, y_end, .. } => {
                for y in y_start..=y_end {
                    bump(h_lanes + chan_x as usize * gh + (y as usize - 1));
                }
            }
            _ => {}
        }
    }
    let peak =
        lane_cap.iter().map(|&(cap, used)| used as f64 / cap.max(1) as f64).fold(0.0f64, f64::max);
    RoutingUtilization {
        wire_utilization: wires_used as f64 / wires.max(1) as f64,
        wire_tile_utilization: tiles_used as f64 / tiles.max(1) as f64,
        peak_channel_occupancy: peak,
        switches_used,
    }
}

/// Verifies a routing: every net tree is connected, starts at the net's
/// source, reaches every sink, and no node exceeds its capacity.
///
/// # Errors
///
/// Returns [`PnrError::Inconsistent`] describing the first violation.
pub fn check_routing(
    rr: &RrGraph,
    design: &PackedDesign,
    placement: &Placement,
    routing: &Routing,
) -> Result<(), PnrError> {
    if routing.nets.len() != design.nets().len() {
        return Err(PnrError::Inconsistent {
            message: format!(
                "routing has {} nets, design has {}",
                routing.nets.len(),
                design.nets().len()
            ),
        });
    }
    let mut occupancy = vec![0u16; rr.num_nodes()];
    for (pn, rn) in design.nets().iter().zip(&routing.nets) {
        let (sx, sy) = placement.loc(pn.driver);
        let source = rr.source_at(sx, sy).expect("placed block has a tile");
        if rn.tree.first().map(|t| t.rr) != Some(source) {
            return Err(PnrError::Inconsistent {
                message: format!("net {:?} does not start at its source", pn.net),
            });
        }
        let used: FxHashSet<RrNodeId> = rn.tree.iter().map(|t| t.rr).collect();
        for &b in &pn.sinks {
            let (x, y) = placement.loc(b);
            let sink = rr.sink_at(x, y).expect("placed block has a tile");
            if !used.contains(&sink) {
                return Err(PnrError::Inconsistent {
                    message: format!("net {:?} misses sink at ({x},{y})", pn.net),
                });
            }
        }
        for (i, t) in rn.tree.iter().enumerate() {
            if let Some(p) = t.parent {
                if p as usize >= i {
                    return Err(PnrError::Inconsistent {
                        message: format!("net {:?} tree parent order broken", pn.net),
                    });
                }
            } else if i != 0 {
                return Err(PnrError::Inconsistent {
                    message: format!("net {:?} has multiple roots", pn.net),
                });
            }
            occupancy[t.rr.index()] += 1;
        }
    }
    for id in rr.node_ids() {
        if occupancy[id.index()] > rr.node(id).capacity {
            return Err(PnrError::Inconsistent {
                message: format!("node {id:?} overused after routing"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use crate::place::{place, PlaceConfig};
    use nemfpga_arch::{build_rr_graph, ArchParams, Grid};
    use nemfpga_netlist::synth::SynthConfig;

    fn routed_design(
        luts: usize,
        w: usize,
        seed: u64,
    ) -> (RrGraph, PackedDesign, Placement, Result<Routing, PnrError>) {
        let params = ArchParams::paper_table1();
        let design = pack(SynthConfig::tiny("t", luts, seed).generate().unwrap(), &params).unwrap();
        let grid =
            Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate).unwrap();
        let placement = place(&design, grid, &PlaceConfig::fast(seed)).unwrap();
        let rr = build_rr_graph(&params, grid, w).unwrap();
        let routing = route(&rr, &design, &placement, &RouteConfig::new());
        (rr, design, placement, routing)
    }

    #[test]
    fn small_design_routes_and_verifies() {
        let (rr, design, placement, routing) = routed_design(40, 16, 1);
        let routing = routing.expect("routable at W=16");
        check_routing(&rr, &design, &placement, &routing).unwrap();
        assert!(routing.wirelength_tiles > 0);
    }

    #[test]
    fn congestion_resolves_over_iterations() {
        // A width just past minimum usually needs more than one iteration.
        let (rr, design, placement, routing) = routed_design(60, 10, 2);
        if let Ok(routing) = routing {
            check_routing(&rr, &design, &placement, &routing).unwrap();
            assert!(routing.iterations >= 1);
        }
        // (If W=10 is infeasible for this seed the Err is also acceptable;
        // the channel-width search covers the boundary.)
    }

    #[test]
    fn absurdly_narrow_channel_fails_cleanly() {
        let params = ArchParams::paper_table1();
        let design = pack(SynthConfig::tiny("t", 80, 3).generate().unwrap(), &params).unwrap();
        let grid =
            Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate).unwrap();
        let placement = place(&design, grid, &PlaceConfig::fast(3)).unwrap();
        let rr = build_rr_graph(&params, grid, 2).unwrap();
        let cfg = RouteConfig { max_iterations: 6, ..RouteConfig::new() };
        match route(&rr, &design, &placement, &cfg) {
            Err(PnrError::Unroutable { .. }) => {}
            Ok(r) => {
                // Some tiny designs do fit in W=2; then it must verify.
                check_routing(&rr, &design, &placement, &r).unwrap();
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let (_, _, _, a) = routed_design(40, 16, 5);
        let (_, _, _, b) = routed_design(40, 16, 5);
        assert_eq!(a.unwrap().wirelength_tiles, b.unwrap().wirelength_tiles);
    }

    #[test]
    fn utilization_reports_sane_fractions() {
        let (rr, _design, _placement, routing) = routed_design(60, 32, 9);
        let routing = routing.unwrap();
        let u = utilization(&rr, &routing);
        assert!(u.wire_utilization > 0.0 && u.wire_utilization <= 1.0);
        assert!(u.wire_tile_utilization > 0.0 && u.wire_tile_utilization <= 1.0);
        assert!((0.0..=1.0).contains(&u.peak_channel_occupancy));
        assert!(u.peak_channel_occupancy >= u.wire_utilization * 0.5);
        assert!(u.switches_used > 0);
        // A generous width (32) leaves slack: the fabric is not saturated.
        assert!(u.wire_utilization < 0.9, "{u:?}");
    }

    #[test]
    fn every_net_tree_is_rooted_at_index_zero() {
        let (_, _, _, routing) = routed_design(30, 14, 7);
        for net in routing.unwrap().nets {
            assert!(net.tree[0].parent.is_none());
            assert!(net.tree.iter().skip(1).all(|t| t.parent.is_some()));
        }
    }

    /// The PR 1 determinism contract extended to net-level parallelism:
    /// the wavefront-scheduled router is *bit-identical* to the serial
    /// reference at any thread count — full `Routing` equality, not just
    /// a summary statistic.
    #[test]
    fn parallel_routing_is_bit_identical_to_serial() {
        use nemfpga_runtime::ParallelConfig;
        let params = ArchParams::paper_table1();
        for (luts, w, seed) in [(40usize, 16usize, 5u64), (60, 12, 2), (80, 14, 11)] {
            let design =
                pack(SynthConfig::tiny("t", luts, seed).generate().unwrap(), &params).unwrap();
            let grid =
                Grid::for_design(design.num_logic_blocks(), design.num_pads(), params.io_rate)
                    .unwrap();
            let placement = place(&design, grid, &PlaceConfig::fast(seed)).unwrap();
            let rr = build_rr_graph(&params, grid, w).unwrap();
            let serial = route(&rr, &design, &placement, &RouteConfig::new());
            for threads in [2usize, 4, 7] {
                let cfg = RouteConfig {
                    parallel: ParallelConfig::with_threads(threads),
                    ..RouteConfig::new()
                };
                let par = route(&rr, &design, &placement, &cfg);
                match (&serial, &par) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "threads={threads} luts={luts}"),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("outcome diverged at threads={threads}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn wave_planner_orders_conflicts_and_packs_disjoint_nets() {
        // Three pairwise-disjoint windows share wave 0.
        let disjoint = vec![(0i64, 2i64, 0i64, 2i64), (10, 12, 0, 2), (20, 22, 0, 2)];
        assert_eq!(plan_waves(&disjoint), vec![vec![0, 1, 2]]);
        // A chain a∩b, b∩c (a∩c empty): b after a, c after b — the
        // wave(k) = 1 + max rule keeps c behind b even though c ∩ a = ∅.
        let chain = vec![(0i64, 5i64, 0i64, 5i64), (4, 9, 0, 5), (8, 13, 0, 5)];
        assert_eq!(plan_waves(&chain), vec![vec![0], vec![1], vec![2]]);
        // Overlap on one axis only is not a conflict.
        let one_axis = vec![(0i64, 5i64, 0i64, 2i64), (0, 5, 10, 12)];
        assert_eq!(plan_waves(&one_axis), vec![vec![0, 1]]);
        assert!(plan_waves(&[]).is_empty());
    }

    #[test]
    fn lookahead_degenerates_to_manhattan_under_span_cost() {
        // Wire base cost is span_tiles, so every class costs exactly
        // 1.0/tile and the A* bound equals the legacy `astar_fac * dist`
        // bit-for-bit — the reason the serial/parallel/CSR router stack
        // can share one differential baseline.
        let params = ArchParams::paper_table1();
        let rr = build_rr_graph(&params, Grid::new(4, 4, 2).unwrap(), 12).unwrap();
        let la = Lookahead::for_graph(&rr);
        assert!(!la.classes.is_empty());
        assert!(la.classes.iter().all(|&(_, cpt)| cpt == 1.0));
        assert_eq!(la.min_cost_per_tile, 1.0);
        let (a, b) = ((0.5, 0.5), (3.25, 2.0));
        assert_eq!(la.bound(1.15, a, b), 1.15 * dist(a, b));
    }
}
