//! The LUT/FF netlist graph.
//!
//! A [`Netlist`] is a bipartite cell/net graph with BLIF semantics: every
//! net has exactly one driver; LUTs and latches drive a net named after the
//! cell; primary outputs sink one net. Construction is incremental and the
//! final structure is checked by [`Netlist::validate`].

use crate::cell::{Cell, CellKind, TruthTable, MAX_LUT_INPUTS};
use crate::error::NetlistError;
use crate::ids::{CellId, NetId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A net: one driver cell, any number of sink cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Unique net name.
    pub name: String,
    /// Driving cell (filled in when the driver is added).
    pub driver: Option<CellId>,
    /// Cells reading this net.
    pub sinks: Vec<CellId>,
}

/// A technology-mapped netlist of K-input LUTs, latches, and primary I/O.
///
/// # Examples
///
/// ```
/// use nemfpga_netlist::netlist::Netlist;
/// use nemfpga_netlist::cell::TruthTable;
///
/// let mut n = Netlist::new("adder_bit");
/// let a = n.add_input("a")?;
/// let b = n.add_input("b")?;
/// let xor2 = TruthTable::new(2, 0b0110)?;
/// let s = n.add_lut("s", &[a, b], xor2)?;
/// n.add_output("s_out", s)?;
/// n.validate()?;
/// assert_eq!(n.num_luts(), 1);
/// # Ok::<(), nemfpga_netlist::error::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    net_names: HashMap<String, NetId>,
    cell_names: HashMap<String, CellId>,
}

impl Netlist {
    /// An empty netlist called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            net_names: HashMap::new(),
            cell_names: HashMap::new(),
        }
    }

    /// The netlist (BLIF model) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells, indexed by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexed by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Cell lookup.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Net lookup.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Finds a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Finds a cell by name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cell_names.get(name).copied()
    }

    /// Number of LUT cells.
    pub fn num_luts(&self) -> usize {
        self.cells.iter().filter(|c| matches!(c.kind, CellKind::Lut(_))).count()
    }

    /// Number of latch cells.
    pub fn num_latches(&self) -> usize {
        self.cells.iter().filter(|c| matches!(c.kind, CellKind::Latch)).count()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.cells.iter().filter(|c| matches!(c.kind, CellKind::Input)).count()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.cells.iter().filter(|c| matches!(c.kind, CellKind::Output)).count()
    }

    /// Ids of all cells of logic kinds (LUT or latch).
    pub fn logic_cells(&self) -> Vec<CellId> {
        (0..self.cells.len() as u32)
            .map(CellId::new)
            .filter(|id| self.cell(*id).kind.is_logic())
            .collect()
    }

    fn fresh_net(&mut self, name: &str) -> Result<NetId, NetlistError> {
        if self.net_names.contains_key(name) {
            return Err(NetlistError::DuplicateName { name: name.to_owned() });
        }
        let id = NetId::new(self.nets.len() as u32);
        self.nets.push(Net { name: name.to_owned(), driver: None, sinks: Vec::new() });
        self.net_names.insert(name.to_owned(), id);
        Ok(id)
    }

    fn fresh_cell(&mut self, cell: Cell) -> Result<CellId, NetlistError> {
        if self.cell_names.contains_key(&cell.name) {
            return Err(NetlistError::DuplicateName { name: cell.name });
        }
        let id = CellId::new(self.cells.len() as u32);
        self.cell_names.insert(cell.name.clone(), id);
        for &input in &cell.inputs {
            self.nets[input.index()].sinks.push(id);
        }
        if let Some(out) = cell.output {
            self.nets[out.index()].driver = Some(id);
        }
        self.cells.push(cell);
        Ok(id)
    }

    /// Adds a primary input driving a net of the same name; returns that net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name clash.
    pub fn add_input(&mut self, name: &str) -> Result<NetId, NetlistError> {
        let net = self.fresh_net(name)?;
        self.fresh_cell(Cell {
            name: name.to_owned(),
            kind: CellKind::Input,
            inputs: Vec::new(),
            output: Some(net),
        })?;
        Ok(net)
    }

    /// Adds a primary output sinking `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name clash.
    pub fn add_output(&mut self, name: &str, net: NetId) -> Result<CellId, NetlistError> {
        self.fresh_cell(Cell {
            name: name.to_owned(),
            kind: CellKind::Output,
            inputs: vec![net],
            output: None,
        })
    }

    /// Adds a LUT named `name` over `inputs`, driving a new net also named
    /// `name` (BLIF `.names` convention); returns the driven net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::TooManyLutInputs`] when
    /// `inputs.len() > MAX_LUT_INPUTS` or the arity disagrees with the
    /// truth table, and [`NetlistError::DuplicateName`] on a name clash.
    pub fn add_lut(
        &mut self,
        name: &str,
        inputs: &[NetId],
        truth: TruthTable,
    ) -> Result<NetId, NetlistError> {
        if inputs.len() > MAX_LUT_INPUTS || inputs.len() != truth.inputs() {
            return Err(NetlistError::TooManyLutInputs {
                cell: name.to_owned(),
                inputs: inputs.len(),
                max: truth.inputs().min(MAX_LUT_INPUTS),
            });
        }
        let net = self.fresh_net(name)?;
        self.fresh_cell(Cell {
            name: name.to_owned(),
            kind: CellKind::Lut(truth),
            inputs: inputs.to_vec(),
            output: Some(net),
        })?;
        Ok(net)
    }

    /// Adds a latch named `name` capturing `input`, driving a new net also
    /// named `name`; returns the driven net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name clash.
    pub fn add_latch(&mut self, name: &str, input: NetId) -> Result<NetId, NetlistError> {
        let net = self.fresh_net(name)?;
        self.add_latch_into(name, input, net)?;
        Ok(net)
    }

    /// Declares a named net with no driver yet. Used for forward references
    /// (e.g. BLIF latch outputs read by logic declared earlier); the driver
    /// must be attached later or [`Netlist::validate`] will reject the
    /// netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name clash.
    pub fn declare_net(&mut self, name: &str) -> Result<NetId, NetlistError> {
        self.fresh_net(name)
    }

    /// Adds a latch named `name` capturing `input` and driving the
    /// pre-declared `output` net (see [`Netlist::declare_net`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a cell-name clash and
    /// [`NetlistError::BadDriverCount`] if `output` already has a driver.
    pub fn add_latch_into(
        &mut self,
        name: &str,
        input: NetId,
        output: NetId,
    ) -> Result<CellId, NetlistError> {
        if self.nets[output.index()].driver.is_some() {
            return Err(NetlistError::BadDriverCount {
                name: self.nets[output.index()].name.clone(),
                drivers: 2,
            });
        }
        self.fresh_cell(Cell {
            name: name.to_owned(),
            kind: CellKind::Latch,
            inputs: vec![input],
            output: Some(output),
        })
    }

    /// Checks structural invariants: every net has exactly one driver, every
    /// used net exists, and the combinational subgraph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for net in &self.nets {
            if net.driver.is_none() {
                return Err(NetlistError::BadDriverCount { name: net.name.clone(), drivers: 0 });
            }
        }
        self.topological_order().map(|_| ())
    }

    /// A topological order of cells over *combinational* edges (latch
    /// outputs and primary inputs are sources; latch data inputs and
    /// primary outputs are sinks).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if no such order exists.
    pub fn topological_order(&self) -> Result<Vec<CellId>, NetlistError> {
        let n = self.cells.len();
        // A combinational dependency exists only where a LUT output feeds a
        // non-source cell; PI and latch outputs are timing sources.
        let mut indegree = vec![0usize; n];
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.kind.is_timing_source() {
                continue;
            }
            indegree[i] = cell
                .inputs
                .iter()
                .filter(|input| {
                    self.nets[input.index()]
                        .driver
                        .is_some_and(|d| matches!(self.cells[d.index()].kind, CellKind::Lut(_)))
                })
                .count();
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(CellId::new(i as u32));
            let cell = &self.cells[i];
            if matches!(cell.kind, CellKind::Lut(_)) {
                if let Some(out) = cell.output {
                    for &sink in &self.nets[out.index()].sinks {
                        if self.cells[sink.index()].kind.is_timing_source() {
                            continue;
                        }
                        indegree[sink.index()] -= 1;
                        if indegree[sink.index()] == 0 {
                            queue.push(sink.index());
                        }
                    }
                }
            }
        }
        if order.len() != n {
            let culprit = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.cells[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { cell: culprit });
        }
        Ok(order)
    }

    /// LUT levels on the longest register/PI-to-register/PO path.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] on a cyclic netlist.
    pub fn logic_depth(&self) -> Result<usize, NetlistError> {
        let order = self.topological_order()?;
        let mut level = vec![0usize; self.cells.len()];
        let mut depth = 0;
        for id in &order {
            let cell = self.cell(*id);
            if let CellKind::Lut(_) = cell.kind {
                let mut max_in = 0usize;
                for &input in &cell.inputs {
                    if let Some(driver) = self.nets[input.index()].driver {
                        if matches!(self.cells[driver.index()].kind, CellKind::Lut(_)) {
                            max_in = max_in.max(level[driver.index()]);
                        }
                    }
                }
                level[id.index()] = max_in + 1;
                depth = depth.max(level[id.index()]);
            }
        }
        Ok(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> TruthTable {
        TruthTable::new(2, 0b0110).unwrap()
    }

    fn two_level() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let x = n.add_lut("x", &[a, b], xor2()).unwrap();
        let y = n.add_lut("y", &[x, a], xor2()).unwrap();
        n.add_output("o", y).unwrap();
        n
    }

    #[test]
    fn construction_and_counts() {
        let n = two_level();
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_luts(), 2);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_latches(), 0);
        n.validate().unwrap();
    }

    #[test]
    fn depth_counts_lut_levels() {
        assert_eq!(two_level().logic_depth().unwrap(), 2);
    }

    #[test]
    fn latch_breaks_combinational_depth() {
        let mut n = Netlist::new("seq");
        let a = n.add_input("a").unwrap();
        let x = n.add_lut("x", &[a], TruthTable::new(1, 0b01).unwrap()).unwrap();
        let q = n.add_latch("q", x).unwrap();
        let y = n.add_lut("y", &[q], TruthTable::new(1, 0b01).unwrap()).unwrap();
        n.add_output("o", y).unwrap();
        n.validate().unwrap();
        // Two LUTs but the latch splits them: depth 1.
        assert_eq!(n.logic_depth().unwrap(), 1);
        assert_eq!(n.num_latches(), 1);
    }

    #[test]
    fn feedback_through_latch_is_legal() {
        // q = latch(x); x = lut(q, a)  -- a counter-style loop.
        let mut n = Netlist::new("loop");
        let a = n.add_input("a").unwrap();
        // Create latch first on a placeholder driver? BLIF allows forward
        // references; our builder requires nets to exist, so build LUT with
        // the latch's net by creating the latch after... here we exploit
        // that the latch input net can be added later via a fresh pattern:
        let x = n.add_lut("x", &[a], TruthTable::new(1, 0b01).unwrap()).unwrap();
        let q = n.add_latch("q", x).unwrap();
        let x2 = n.add_lut("x2", &[q, a], xor2()).unwrap();
        n.add_output("o", x2).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = Netlist::new("dup");
        n.add_input("a").unwrap();
        assert!(matches!(n.add_input("a"), Err(NetlistError::DuplicateName { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a").unwrap();
        assert!(matches!(n.add_lut("x", &[a], xor2()), Err(NetlistError::TooManyLutInputs { .. })));
    }

    #[test]
    fn net_and_cell_lookup() {
        let n = two_level();
        let x = n.net_by_name("x").unwrap();
        assert_eq!(n.net(x).name, "x");
        let cell = n.cell_by_name("y").unwrap();
        assert_eq!(n.cell(cell).name, "y");
        assert!(n.net_by_name("nope").is_none());
        // x feeds y: x's sinks contain y.
        assert!(n.net(x).sinks.contains(&cell));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let n = two_level();
        let order = n.topological_order().unwrap();
        assert_eq!(order.len(), n.cells().len());
        let pos = |name: &str| {
            let id = n.cell_by_name(name).unwrap();
            order.iter().position(|c| *c == id).unwrap()
        };
        // LUT-to-LUT dependencies are ordered; PI/latch outputs are always
        // ready and carry no ordering constraint.
        assert!(pos("x") < pos("y"));
    }
}
