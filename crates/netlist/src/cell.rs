//! Netlist cell types: primary I/O, K-input LUTs, and latches.

use crate::error::NetlistError;
use crate::ids::NetId;
use serde::{Deserialize, Serialize};

/// Maximum LUT fan-in representable by the packed truth table.
pub const MAX_LUT_INPUTS: usize = 6;

/// A packed truth table for up to [`MAX_LUT_INPUTS`] inputs.
///
/// Bit `i` of `bits` holds the output for the input combination whose
/// binary encoding is `i` (input 0 = least-significant bit).
///
/// # Examples
///
/// ```
/// use nemfpga_netlist::cell::TruthTable;
///
/// let and2 = TruthTable::new(2, 0b1000)?;
/// assert!(and2.eval(&[true, true]));
/// assert!(!and2.eval(&[true, false]));
/// # Ok::<(), nemfpga_netlist::error::NetlistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TruthTable {
    inputs: u8,
    bits: u64,
}

impl TruthTable {
    /// Creates a truth table over `inputs` variables.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::TooManyLutInputs`] when `inputs` exceeds
    /// [`MAX_LUT_INPUTS`], or [`NetlistError::InvalidSynthConfig`] if `bits`
    /// sets rows beyond `2^inputs`.
    pub fn new(inputs: usize, bits: u64) -> Result<Self, NetlistError> {
        if inputs > MAX_LUT_INPUTS {
            return Err(NetlistError::TooManyLutInputs {
                cell: "<truth table>".to_owned(),
                inputs,
                max: MAX_LUT_INPUTS,
            });
        }
        let rows = 1u64.checked_shl(inputs as u32).unwrap_or(0);
        if inputs < MAX_LUT_INPUTS && rows != 0 && bits >= (1u64 << rows) {
            return Err(NetlistError::InvalidSynthConfig {
                message: format!("truth table bits 0x{bits:x} exceed 2^{rows} rows"),
            });
        }
        Ok(Self { inputs: inputs as u8, bits })
    }

    /// The constant-0 function of `inputs` variables.
    pub fn constant_false(inputs: usize) -> Self {
        Self { inputs: inputs.min(MAX_LUT_INPUTS) as u8, bits: 0 }
    }

    /// Number of input variables.
    #[inline]
    pub fn inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Raw packed bits.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Evaluates the function.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.inputs()`.
    pub fn eval(&self, values: &[bool]) -> bool {
        assert_eq!(values.len(), self.inputs(), "truth table arity mismatch");
        let row: u64 = values.iter().enumerate().map(|(i, &v)| (v as u64) << i).sum();
        (self.bits >> row) & 1 == 1
    }
}

/// What a cell is.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Primary input pad; drives one net, has no inputs.
    Input,
    /// Primary output pad; sinks one net, drives nothing.
    Output,
    /// K-input lookup table.
    Lut(TruthTable),
    /// D flip-flop (BLIF `.latch`): one data input, one output, implicit
    /// global clock.
    Latch,
}

impl CellKind {
    /// `true` for LUTs and latches (the things that occupy logic blocks).
    pub fn is_logic(&self) -> bool {
        matches!(self, Self::Lut(_) | Self::Latch)
    }

    /// `true` if the cell's output starts a timing path (PIs and latches).
    pub fn is_timing_source(&self) -> bool {
        matches!(self, Self::Input | Self::Latch)
    }

    /// `true` if the cell's inputs end a timing path (POs and latches).
    pub fn is_timing_sink(&self) -> bool {
        matches!(self, Self::Output | Self::Latch)
    }
}

/// One netlist cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Unique cell name.
    pub name: String,
    /// Cell kind.
    pub kind: CellKind,
    /// Input nets (fan-in order matters for LUT truth tables).
    pub inputs: Vec<NetId>,
    /// Driven net, if the cell drives one (everything except outputs).
    pub output: Option<NetId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table_evaluates_all_two_input_functions() {
        for bits in 0..16u64 {
            let tt = TruthTable::new(2, bits).unwrap();
            for row in 0..4u64 {
                let values = [row & 1 == 1, row & 2 == 2];
                assert_eq!(tt.eval(&values), (bits >> row) & 1 == 1);
            }
        }
    }

    #[test]
    fn oversized_truth_tables_rejected() {
        assert!(TruthTable::new(7, 0).is_err());
        assert!(TruthTable::new(1, 0b100).is_err()); // 1-input has 2 rows
        assert!(TruthTable::new(6, u64::MAX).is_ok());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn eval_checks_arity() {
        let tt = TruthTable::new(2, 0b1000).unwrap();
        tt.eval(&[true]);
    }

    #[test]
    fn kind_classifications() {
        let lut = CellKind::Lut(TruthTable::constant_false(4));
        assert!(lut.is_logic() && !lut.is_timing_source() && !lut.is_timing_sink());
        assert!(CellKind::Latch.is_logic());
        assert!(CellKind::Latch.is_timing_source() && CellKind::Latch.is_timing_sink());
        assert!(CellKind::Input.is_timing_source() && !CellKind::Input.is_logic());
        assert!(CellKind::Output.is_timing_sink());
    }
}
