//! Cycle-accurate functional simulation of LUT/FF netlists.
//!
//! Used to prove that transformations preserve *function*, not just
//! structure: BLIF round-trips, generator determinism, and (via the
//! integration tests) the identity between a netlist and what a programmed
//! FPGA computes. Latches behave as positive-edge DFFs clocked once per
//! [`Simulator::step`].

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::ids::{CellId, NetId};
use crate::netlist::Netlist;
use std::collections::HashMap;

/// A functional simulator over a netlist.
///
/// # Examples
///
/// ```
/// use nemfpga_netlist::netlist::Netlist;
/// use nemfpga_netlist::cell::TruthTable;
/// use nemfpga_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("xor");
/// let a = n.add_input("a")?;
/// let b = n.add_input("b")?;
/// let y = n.add_lut("y", &[a, b], TruthTable::new(2, 0b0110)?)?;
/// n.add_output("o", y)?;
///
/// let mut sim = Simulator::new(&n)?;
/// let out = sim.step(&[("a", true), ("b", false)].into_iter().collect())?;
/// assert_eq!(out["o"], true);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<CellId>,
    /// Current value of every net.
    values: Vec<bool>,
    /// Latch state (Q), by cell index.
    latch_state: HashMap<CellId, bool>,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator; all nets start at 0, all latches reset to 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let order = netlist.topological_order()?;
        Ok(Self {
            netlist,
            order,
            values: vec![false; netlist.nets().len()],
            latch_state: HashMap::new(),
        })
    }

    /// Current value of a net.
    pub fn net_value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Advances one clock cycle: applies `inputs` (by PI name), settles the
    /// combinational logic, returns primary-output values (by PO cell
    /// name), then clocks every latch.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if `inputs` names a PI that
    /// does not exist. Unlisted PIs hold their previous value.
    pub fn step(
        &mut self,
        inputs: &HashMap<&str, bool>,
    ) -> Result<HashMap<String, bool>, NetlistError> {
        // Drive primary inputs.
        for (&name, &value) in inputs {
            let net = self
                .netlist
                .net_by_name(name)
                .ok_or_else(|| NetlistError::UnknownNet { name: name.to_owned() })?;
            if !matches!(
                self.netlist.net(net).driver.map(|d| &self.netlist.cell(d).kind),
                Some(CellKind::Input)
            ) {
                return Err(NetlistError::UnknownNet { name: format!("{name} (not a PI)") });
            }
            self.values[net.index()] = value;
        }
        // Present latch state on Q nets.
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if matches!(cell.kind, CellKind::Latch) {
                let id = CellId::new(i as u32);
                if let Some(q) = cell.output {
                    self.values[q.index()] = self.latch_state.get(&id).copied().unwrap_or(false);
                }
            }
        }
        // Settle combinational logic in topological order.
        for id in &self.order {
            let cell = self.netlist.cell(*id);
            if let CellKind::Lut(tt) = &cell.kind {
                let ins: Vec<bool> = cell.inputs.iter().map(|n| self.values[n.index()]).collect();
                let out = cell.output.expect("luts drive a net");
                self.values[out.index()] = tt.eval(&ins);
            }
        }
        // Sample outputs.
        let mut outputs = HashMap::new();
        for cell in self.netlist.cells() {
            if matches!(cell.kind, CellKind::Output) {
                outputs.insert(cell.name.clone(), self.values[cell.inputs[0].index()]);
            }
        }
        // Clock edge: latches capture D.
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if matches!(cell.kind, CellKind::Latch) {
                let id = CellId::new(i as u32);
                let d = self.values[cell.inputs[0].index()];
                self.latch_state.insert(id, d);
            }
        }
        Ok(outputs)
    }

    /// Resets all latches and nets to 0.
    pub fn reset(&mut self) {
        self.values.fill(false);
        self.latch_state.clear();
    }
}

/// Checks functional equivalence of two netlists with identical PI names
/// by co-simulating `cycles` random input vectors (deterministic per
/// `seed`). Outputs are matched by the *net name* each PO samples, so pad
/// renames (e.g. a BLIF round-trip's `out:` prefixes) don't break the
/// comparison.
///
/// # Errors
///
/// Propagates simulation errors; reports a mismatch as
/// [`NetlistError::InvalidSynthConfig`] with a descriptive message.
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    cycles: usize,
    seed: u64,
) -> Result<(), NetlistError> {
    let pi_names: Vec<String> = a
        .cells()
        .iter()
        .filter(|c| matches!(c.kind, CellKind::Input))
        .map(|c| c.name.clone())
        .collect();
    let mut sim_a = Simulator::new(a)?;
    let mut sim_b = Simulator::new(b)?;

    // Map PO cell name -> sampled net name, per netlist.
    let po_net = |n: &Netlist, outs: &HashMap<String, bool>| -> HashMap<String, bool> {
        outs.iter()
            .map(|(cell_name, v)| {
                let cell = n.cell(n.cell_by_name(cell_name).expect("po exists"));
                (n.net(cell.inputs[0]).name.clone(), *v)
            })
            .collect()
    };

    // A tiny deterministic LCG; no external RNG needed here.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next_bit = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state & 1 == 1
    };

    for cycle in 0..cycles {
        let vector: HashMap<&str, bool> =
            pi_names.iter().map(|n| (n.as_str(), next_bit())).collect();
        let out_a = po_net(a, &sim_a.step(&vector)?);
        let out_b = po_net(b, &sim_b.step(&vector)?);
        if out_a != out_b {
            let diff: Vec<&String> =
                out_a.keys().filter(|k| out_a.get(*k) != out_b.get(*k)).collect();
            return Err(NetlistError::InvalidSynthConfig {
                message: format!("functional mismatch at cycle {cycle} on nets {diff:?}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blif::{parse_blif, write_blif};
    use crate::cell::TruthTable;
    use crate::synth::SynthConfig;

    #[test]
    fn combinational_logic_evaluates() {
        let mut n = Netlist::new("maj");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let c = n.add_input("c").unwrap();
        // Majority-of-3: rows 3,5,6,7 -> 0b1110_1000.
        let y = n.add_lut("y", &[a, b, c], TruthTable::new(3, 0b1110_1000).unwrap()).unwrap();
        n.add_output("o", y).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for (va, vb, vc, want) in [
            (false, false, false, false),
            (true, false, true, true),
            (true, true, false, true),
            (false, false, true, false),
        ] {
            let out = sim.step(&[("a", va), ("b", vb), ("c", vc)].into_iter().collect()).unwrap();
            assert_eq!(out["o"], want, "{va} {vb} {vc}");
        }
    }

    #[test]
    fn latch_delays_by_one_cycle() {
        let mut n = Netlist::new("dff");
        let a = n.add_input("a").unwrap();
        let q = n.add_latch("q", a).unwrap();
        n.add_output("o", q).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let o1 = sim.step(&[("a", true)].into_iter().collect()).unwrap();
        assert!(!o1["o"], "latch starts at 0");
        let o2 = sim.step(&[("a", false)].into_iter().collect()).unwrap();
        assert!(o2["o"], "captured last cycle's 1");
        let o3 = sim.step(&[("a", false)].into_iter().collect()).unwrap();
        assert!(!o3["o"]);
    }

    #[test]
    fn toggle_counter_through_feedback() {
        // q toggles every cycle: d = NOT q.
        let text = "\
.model toggle
.inputs en
.outputs q
.names en q d
10 1
.latch d q re clk 2
.end
";
        let n = parse_blif(text).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let mut seen = Vec::new();
        for _ in 0..4 {
            let out = sim.step(&[("en", true)].into_iter().collect()).unwrap();
            seen.push(out["out:q"]);
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn blif_round_trip_preserves_function() {
        let n = SynthConfig::tiny("sim", 60, 3).generate().unwrap();
        let reparsed = parse_blif(&write_blif(&n)).unwrap();
        check_equivalence(&n, &reparsed, 64, 7).unwrap();
    }

    #[test]
    fn equivalence_detects_a_real_difference() {
        let mut a = Netlist::new("m");
        let x = a.add_input("x").unwrap();
        let y = a.add_lut("y", &[x], TruthTable::new(1, 0b10).unwrap()).unwrap();
        a.add_output("o", y).unwrap();
        let mut b = Netlist::new("m");
        let x2 = b.add_input("x").unwrap();
        let y2 = b.add_lut("y", &[x2], TruthTable::new(1, 0b01).unwrap()).unwrap();
        b.add_output("o", y2).unwrap();
        assert!(check_equivalence(&a, &b, 16, 1).is_err());
    }

    #[test]
    fn unknown_input_rejected() {
        let mut n = Netlist::new("u");
        let a = n.add_input("a").unwrap();
        n.add_output("o", a).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        assert!(sim.step(&[("ghost", true)].into_iter().collect()).is_err());
        // Driving a non-PI net is also rejected.
        let mut n2 = Netlist::new("u2");
        let a2 = n2.add_input("a").unwrap();
        let y = n2.add_lut("y", &[a2], TruthTable::new(1, 0b01).unwrap()).unwrap();
        n2.add_output("o", y).unwrap();
        let mut sim2 = Simulator::new(&n2).unwrap();
        assert!(sim2.step(&[("y", true)].into_iter().collect()).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let mut n = Netlist::new("r");
        let a = n.add_input("a").unwrap();
        let q = n.add_latch("q", a).unwrap();
        n.add_output("o", q).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[("a", true)].into_iter().collect()).unwrap();
        sim.reset();
        let out = sim.step(&[("a", false)].into_iter().collect()).unwrap();
        assert!(!out["o"]);
    }
}
