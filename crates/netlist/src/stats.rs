//! Netlist statistics used for benchmark characterization.

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Summary statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// LUT count (the paper sizes benchmarks by "equivalent 4-input LUTs").
    pub luts: usize,
    /// Latch (FF) count.
    pub latches: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Net count.
    pub nets: usize,
    /// Largest net fanout.
    pub max_fanout: usize,
    /// Mean LUT fan-in.
    pub avg_lut_fanin: f64,
    /// Longest register/PI-to-register/PO path in LUT levels.
    pub logic_depth: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists
    /// (depth is undefined there).
    pub fn of(netlist: &Netlist) -> Result<Self, NetlistError> {
        let mut lut_fanin_total = 0usize;
        let mut luts = 0usize;
        for cell in netlist.cells() {
            if let CellKind::Lut(_) = cell.kind {
                luts += 1;
                lut_fanin_total += cell.inputs.len();
            }
        }
        Ok(Self {
            luts,
            latches: netlist.num_latches(),
            inputs: netlist.num_inputs(),
            outputs: netlist.num_outputs(),
            nets: netlist.nets().len(),
            max_fanout: netlist.nets().iter().map(|n| n.sinks.len()).max().unwrap_or(0),
            avg_lut_fanin: if luts == 0 { 0.0 } else { lut_fanin_total as f64 / luts as f64 },
            logic_depth: netlist.logic_depth()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::TruthTable;

    #[test]
    fn stats_of_small_netlist() {
        let mut n = Netlist::new("s");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let tt = TruthTable::new(2, 0b0110).unwrap();
        let x = n.add_lut("x", &[a, b], tt).unwrap();
        let y = n.add_lut("y", &[x, a], tt).unwrap();
        let q = n.add_latch("q", y).unwrap();
        n.add_output("o", q).unwrap();
        let s = NetlistStats::of(&n).unwrap();
        assert_eq!(s.luts, 2);
        assert_eq!(s.latches, 1);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.logic_depth, 2);
        assert!((s.avg_lut_fanin - 2.0).abs() < 1e-12);
        // Net 'a' feeds both LUTs: fanout 2.
        assert_eq!(s.max_fanout, 2);
    }
}
