//! # nemfpga-netlist
//!
//! Technology-mapped LUT/FF netlists for the `nemfpga` FPGA CAD substrate:
//!
//! * [`netlist`] — the cell/net graph with validation, topological order,
//!   and logic depth ([`netlist::Netlist`]).
//! * [`cell`] — primary I/O, K-input LUTs with packed truth tables, and
//!   latches.
//! * [`blif`] — BLIF-subset parser and writer (the interchange format VPR
//!   and the MCNC suite use).
//! * [`stats`] — benchmark characterization ([`stats::NetlistStats`]).
//! * [`synth`] — deterministic Rent's-rule-flavoured synthetic benchmark
//!   generation with presets sized like the paper's suites (MCNC-20 and
//!   the four >10K-LUT designs).
//!
//! # Examples
//!
//! ```
//! use nemfpga_netlist::blif::{parse_blif, write_blif};
//! use nemfpga_netlist::synth::SynthConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SynthConfig::tiny("demo", 50, 42).generate()?;
//! let text = write_blif(&netlist);
//! let reparsed = parse_blif(&text)?;
//! assert_eq!(reparsed.num_luts(), netlist.num_luts());
//! # Ok(())
//! # }
//! ```

pub mod blif;
pub mod cell;
pub mod error;
pub mod ids;
pub mod netlist;
pub mod sim;
pub mod stats;
pub mod synth;

pub use cell::{Cell, CellKind, TruthTable};
pub use error::NetlistError;
pub use ids::{CellId, NetId};
pub use netlist::{Net, Netlist};
pub use sim::{check_equivalence, Simulator};
pub use stats::NetlistStats;
pub use synth::SynthConfig;
