//! Deterministic synthetic benchmark generator.
//!
//! Stands in for the benchmark suites the paper maps onto its FPGAs: the
//! 20 largest MCNC circuits [Yang 91] and four large designs with more
//! than 10K equivalent 4-input LUTs [Pistorius 07]. Real BLIF for those
//! suites is not redistributable here, so [`SynthConfig::generate`] builds
//! levelized random 4-LUT netlists with matched LUT/latch/IO counts and
//! realistic depth and fanout structure; the presets in
//! [`mcnc20`]/[`large4`] carry the published sizes.
//!
//! Generation is fully deterministic per seed.

use crate::cell::TruthTable;
use crate::error::NetlistError;
use crate::ids::NetId;
use crate::netlist::Netlist;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Benchmark name (becomes the BLIF model name).
    pub name: String,
    /// Number of K-input LUTs.
    pub luts: usize,
    /// LUT fan-in `K` (the paper uses K = 4).
    pub lut_inputs: usize,
    /// Fraction of LUT outputs that are registered.
    pub latch_fraction: f64,
    /// Primary inputs.
    pub inputs: usize,
    /// Minimum primary outputs (undriven-sink nets are also promoted to
    /// outputs so the netlist has no dead logic).
    pub outputs: usize,
    /// Target combinational depth in LUT levels.
    pub target_depth: usize,
    /// Source-locality knob in (0, 1]: the probability mass of drawing an
    /// input from `d` levels back decays as `locality^d`. Lower values
    /// mean longer-range connections (higher Rent exponent, wider channel
    /// demand).
    pub locality: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// A small smoke-test circuit, handy for unit tests and examples.
    pub fn tiny(name: &str, luts: usize, seed: u64) -> Self {
        Self {
            name: name.to_owned(),
            luts,
            lut_inputs: 4,
            latch_fraction: 0.2,
            inputs: (luts / 4).clamp(3, 32),
            outputs: (luts / 8).clamp(2, 32),
            target_depth: ((luts as f64).ln().round() as usize).clamp(2, 8),
            locality: 0.7,
            seed,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidSynthConfig`] describing the problem.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let fail = |message: String| Err(NetlistError::InvalidSynthConfig { message });
        if self.luts == 0 {
            return fail("need at least one LUT".to_owned());
        }
        if self.lut_inputs == 0 || self.lut_inputs > crate::cell::MAX_LUT_INPUTS {
            return fail(format!("lut_inputs {} out of range", self.lut_inputs));
        }
        if !(0.0..=1.0).contains(&self.latch_fraction) {
            return fail(format!("latch_fraction {} outside [0,1]", self.latch_fraction));
        }
        if self.inputs == 0 {
            return fail("need at least one primary input".to_owned());
        }
        if self.target_depth == 0 {
            return fail("target_depth must be at least 1".to_owned());
        }
        if !(self.locality > 0.0 && self.locality <= 1.0) {
            return fail(format!("locality {} outside (0,1]", self.locality));
        }
        Ok(())
    }

    /// Generates the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidSynthConfig`] for a bad configuration;
    /// construction errors are internal bugs and propagate as-is.
    ///
    /// # Examples
    ///
    /// ```
    /// use nemfpga_netlist::synth::SynthConfig;
    /// use nemfpga_netlist::stats::NetlistStats;
    ///
    /// let n = SynthConfig::tiny("smoke", 40, 1).generate()?;
    /// let stats = NetlistStats::of(&n)?;
    /// assert_eq!(stats.luts, 40);
    /// # Ok::<(), nemfpga_netlist::error::NetlistError>(())
    /// ```
    pub fn generate(&self) -> Result<Netlist, NetlistError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut netlist = Netlist::new(self.name.clone());

        // Level 0: primary inputs (plus, later, latch outputs).
        let mut levels: Vec<Vec<NetId>> = vec![Vec::new()];
        for i in 0..self.inputs {
            levels[0].push(netlist.add_input(&format!("pi{i}"))?);
        }
        // Registered nets behave as level-0 sources for depth purposes.
        let mut registered: Vec<NetId> = Vec::new();

        let depth = self.target_depth;
        let per_level = self.luts.div_ceil(depth);
        let mut lut_index = 0usize;
        let mut latch_index = 0usize;

        for level in 1..=depth {
            if lut_index >= self.luts {
                break;
            }
            let count = per_level.min(self.luts - lut_index);
            let mut this_level: Vec<NetId> = Vec::with_capacity(count);
            for _ in 0..count {
                let k = self.lut_inputs;
                let mut chosen: Vec<NetId> = Vec::with_capacity(k);
                // First input: from the immediately preceding level when it
                // has unregistered nets, to realize the target depth.
                let prev = level - 1;
                if let Some(&net) = pick_from(&levels[prev], &mut rng) {
                    chosen.push(net);
                }
                while chosen.len() < k {
                    let candidate = self.pick_source(&levels, &registered, level, &mut rng);
                    if !chosen.contains(&candidate) {
                        chosen.push(candidate);
                    } else if total_sources(&levels, &registered) <= chosen.len() {
                        break; // tiny netlists may not have k distinct nets
                    }
                }
                let arity = chosen.len();
                let rows = 1u64 << arity;
                let mask = if rows >= 64 { u64::MAX } else { (1u64 << rows) - 1 };
                let tt = TruthTable::new(arity, rng.gen::<u64>() & mask)?;
                let lut_net = netlist.add_lut(&format!("lut{lut_index}"), &chosen, tt)?;
                lut_index += 1;
                if rng.gen_bool(self.latch_fraction) {
                    let q = netlist.add_latch(&format!("ff{latch_index}"), lut_net)?;
                    latch_index += 1;
                    registered.push(q);
                    // The combinational net still exists (the latch reads
                    // it); downstream logic uses the registered copy.
                } else {
                    this_level.push(lut_net);
                }
            }
            levels.push(this_level);
        }

        // Promote every sink-less driven net to a primary output, then top
        // up to the configured output count from the deepest nets.
        let mut po_index = 0usize;
        let dangling: Vec<NetId> = (0..netlist.nets().len() as u32)
            .map(NetId::new)
            .filter(|id| netlist.net(*id).sinks.is_empty() && netlist.net(*id).driver.is_some())
            .collect();
        let mut promoted: std::collections::HashSet<NetId> = std::collections::HashSet::new();
        for net in &dangling {
            netlist.add_output(&format!("po{po_index}"), *net)?;
            promoted.insert(*net);
            po_index += 1;
        }
        if po_index < self.outputs {
            let extra: Vec<NetId> = levels
                .iter()
                .rev()
                .flatten()
                .chain(registered.iter())
                .filter(|n| !promoted.contains(n))
                .copied()
                .take(self.outputs - po_index)
                .collect();
            for net in extra {
                netlist.add_output(&format!("po{po_index}"), net)?;
                po_index += 1;
            }
        }

        netlist.validate()?;
        Ok(netlist)
    }

    /// Picks a source net for a LUT at `level`: a geometric level-distance
    /// draw over previous levels, with registered nets and PIs folded into
    /// level 0.
    fn pick_source(
        &self,
        levels: &[Vec<NetId>],
        registered: &[NetId],
        level: usize,
        rng: &mut ChaCha8Rng,
    ) -> NetId {
        debug_assert!(level >= 1);
        for _ in 0..64 {
            // Geometric distance: P(d) ∝ locality^(d-1).
            let mut d = 1usize;
            while d < level && rng.gen_bool(1.0 - self.locality) {
                d += 1;
            }
            let src_level = level - d;
            let pool: &[NetId] = if src_level == 0 {
                // Level 0 = PIs and registered nets, merged by coin flip.
                if !registered.is_empty() && rng.gen_bool(0.5) {
                    registered
                } else {
                    &levels[0]
                }
            } else {
                &levels[src_level]
            };
            if let Some(&net) = pick_from(pool, rng) {
                return net;
            }
        }
        // Fallback: a primary input always exists.
        levels[0][rng.gen_range(0..levels[0].len())]
    }
}

fn pick_from<'a>(pool: &'a [NetId], rng: &mut ChaCha8Rng) -> Option<&'a NetId> {
    if pool.is_empty() {
        None
    } else {
        pool.get(rng.gen_range(0..pool.len()))
    }
}

fn total_sources(levels: &[Vec<NetId>], registered: &[NetId]) -> usize {
    levels.iter().map(Vec::len).sum::<usize>() + registered.len()
}

/// Depth heuristic used by the presets: large technology-mapped circuits
/// land around 8–13 4-LUT levels.
fn preset_depth(luts: usize) -> usize {
    (((luts as f64).ln()) * 1.2).round() as usize
}

fn preset(
    name: &str,
    luts: usize,
    inputs: usize,
    outputs: usize,
    latches: usize,
    seed: u64,
) -> SynthConfig {
    SynthConfig {
        name: name.to_owned(),
        luts,
        lut_inputs: 4,
        latch_fraction: (latches as f64 / luts as f64).min(0.9),
        inputs,
        outputs,
        target_depth: preset_depth(luts),
        locality: 0.68,
        seed,
    }
}

/// The 20 largest MCNC benchmarks [Yang 91] with their published 4-LUT,
/// I/O, and flip-flop counts (as used by the VPR literature). The paper
/// reports geometric means over this set.
pub fn mcnc20() -> Vec<SynthConfig> {
    vec![
        preset("alu4", 1522, 14, 8, 0, 101),
        preset("apex2", 1878, 38, 3, 0, 102),
        preset("apex4", 1262, 9, 19, 0, 103),
        preset("bigkey", 1707, 229, 197, 224, 104),
        preset("clma", 8383, 62, 82, 33, 105),
        preset("des", 1591, 256, 245, 0, 106),
        preset("diffeq", 1497, 64, 39, 377, 107),
        preset("dsip", 1370, 229, 197, 224, 108),
        preset("elliptic", 3604, 131, 114, 1122, 109),
        preset("ex1010", 4598, 10, 10, 0, 110),
        preset("ex5p", 1064, 8, 63, 0, 111),
        preset("frisc", 3556, 20, 116, 886, 112),
        preset("misex3", 1397, 14, 14, 0, 113),
        preset("pdc", 4575, 16, 40, 0, 114),
        preset("s298", 1931, 4, 6, 8, 115),
        preset("s38417", 6406, 29, 106, 1636, 116),
        preset("s38584.1", 6447, 38, 304, 1452, 117),
        preset("seq", 1750, 41, 35, 0, 118),
        preset("spla", 3690, 16, 46, 0, 119),
        preset("tseng", 1047, 52, 122, 385, 120),
    ]
}

/// The four large (> 10K 4-LUT) benchmarks of Fig. 12 [Pistorius 07], at
/// the LUT counts the paper quotes.
pub fn large4() -> Vec<SynthConfig> {
    vec![
        preset("ava", 12_254, 200, 150, 3600, 201),
        preset("oc_des_des3perf", 11_742, 234, 196, 5800, 202),
        preset("sudoku_check", 17_188, 40, 20, 1700, 203),
        preset("ucsb_152_tap_fir", 10_199, 20, 38, 6100, 204),
    ]
}

/// Looks a preset up by name across both suites.
pub fn preset_by_name(name: &str) -> Option<SynthConfig> {
    mcnc20().into_iter().chain(large4()).find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetlistStats;

    #[test]
    fn generated_netlist_matches_requested_sizes() {
        let cfg = SynthConfig::tiny("t", 120, 3);
        let n = cfg.generate().unwrap();
        let s = NetlistStats::of(&n).unwrap();
        assert_eq!(s.luts, 120);
        assert_eq!(s.inputs, cfg.inputs);
        assert!(s.outputs >= cfg.outputs);
        // Depth close to the target (within a couple of levels).
        assert!(s.logic_depth <= cfg.target_depth);
        assert!(s.logic_depth + 2 >= cfg.target_depth, "depth {}", s.logic_depth);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthConfig::tiny("t", 60, 7).generate().unwrap();
        let b = SynthConfig::tiny("t", 60, 7).generate().unwrap();
        assert_eq!(a, b);
        let c = SynthConfig::tiny("t", 60, 8).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn latch_fraction_respected_roughly() {
        let mut cfg = SynthConfig::tiny("seq", 400, 5);
        cfg.latch_fraction = 0.5;
        let n = cfg.generate().unwrap();
        let ratio = n.num_latches() as f64 / n.num_luts() as f64;
        assert!((ratio - 0.5).abs() < 0.12, "latch ratio {ratio}");
    }

    #[test]
    fn netlists_validate_and_have_no_dead_logic() {
        let n = SynthConfig::tiny("t", 200, 9).generate().unwrap();
        n.validate().unwrap();
        for net in n.nets() {
            assert!(!net.sinks.is_empty() || net.driver.is_none(), "net {} is dead", net.name);
        }
    }

    #[test]
    fn presets_have_paper_sizes() {
        let suite = mcnc20();
        assert_eq!(suite.len(), 20);
        let clma = preset_by_name("clma").unwrap();
        assert_eq!(clma.luts, 8383);
        let big = large4();
        assert_eq!(big.len(), 4);
        for cfg in &big {
            assert!(cfg.luts > 10_000, "{} too small", cfg.name);
            cfg.validate().unwrap();
        }
        assert_eq!(preset_by_name("sudoku_check").unwrap().luts, 17_188);
        assert!(preset_by_name("nonexistent").is_none());
    }

    #[test]
    fn medium_preset_generates_quickly_and_validates() {
        // A scaled-down clma-like circuit exercises the full code path.
        let mut cfg = preset_by_name("tseng").unwrap();
        cfg.luts = 300;
        cfg.inputs = 20;
        cfg.outputs = 30;
        let n = cfg.generate().unwrap();
        assert_eq!(n.num_luts(), 300);
        n.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = SynthConfig::tiny("bad", 10, 1);
        cfg.lut_inputs = 9;
        assert!(cfg.generate().is_err());
        let mut cfg = SynthConfig::tiny("bad", 10, 1);
        cfg.latch_fraction = 1.5;
        assert!(cfg.generate().is_err());
        let mut cfg = SynthConfig::tiny("bad", 10, 1);
        cfg.locality = 0.0;
        assert!(cfg.generate().is_err());
    }

    #[test]
    fn one_lut_degenerate_case() {
        let mut cfg = SynthConfig::tiny("one", 1, 1);
        cfg.inputs = 2;
        let n = cfg.generate().unwrap();
        assert_eq!(n.num_luts(), 1);
        n.validate().unwrap();
    }
}
