//! Error types for netlist construction, validation, and BLIF I/O.

use std::fmt;

/// Errors produced by the netlist crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell or net name was declared twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// Referenced a net name that was never declared/driven.
    UnknownNet {
        /// The offending name.
        name: String,
    },
    /// A net ended up with zero or multiple drivers.
    BadDriverCount {
        /// Net name.
        name: String,
        /// Number of drivers found.
        drivers: usize,
    },
    /// A LUT was given more inputs than the architecture's `K`.
    TooManyLutInputs {
        /// Cell name.
        cell: String,
        /// Inputs supplied.
        inputs: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle {
        /// Name of one cell on the cycle.
        cell: String,
    },
    /// BLIF text could not be parsed.
    BlifParse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A generator configuration was invalid.
    InvalidSynthConfig {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateName { name } => write!(f, "duplicate name '{name}'"),
            Self::UnknownNet { name } => write!(f, "unknown net '{name}'"),
            Self::BadDriverCount { name, drivers } => {
                write!(f, "net '{name}' has {drivers} drivers (expected exactly 1)")
            }
            Self::TooManyLutInputs { cell, inputs, max } => {
                write!(f, "lut '{cell}' has {inputs} inputs, max is {max}")
            }
            Self::CombinationalCycle { cell } => {
                write!(f, "combinational cycle through cell '{cell}'")
            }
            Self::BlifParse { line, message } => {
                write!(f, "blif parse error at line {line}: {message}")
            }
            Self::InvalidSynthConfig { message } => {
                write!(f, "invalid synthesis config: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let e = NetlistError::UnknownNet { name: "n42".to_owned() };
        assert!(e.to_string().contains("n42"));
        let e = NetlistError::BlifParse { line: 7, message: "bad token".to_owned() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
