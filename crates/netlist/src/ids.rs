//! Index newtypes for netlist entities.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// The raw index, for slice addressing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a cell (primary input/output, LUT, or latch).
    CellId
);
id_type!(
    /// Identifier of a net (one driver, any number of sinks).
    NetId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_display() {
        let a = CellId::new(1);
        let b = CellId::new(2);
        assert!(a < b);
        assert_eq!(a.index(), 1);
        assert!(a.to_string().contains('1'));
        assert_ne!(NetId::new(1).to_string(), a.to_string());
    }
}
