//! BLIF (Berkeley Logic Interchange Format) subset reader/writer.
//!
//! Supports the constructs technology-mapped FPGA benchmarks use — the
//! same subset VPR consumes: `.model`, `.inputs`, `.outputs`, `.names`
//! (single-output cover, `1`/`0`/`-` cubes), `.latch` (ignoring clock and
//! init fields beyond parsing), `.end`, comments (`#`), and line
//! continuation (`\`).
//!
//! `.names` covers are converted to packed [`TruthTable`]s (≤ 6 inputs),
//! so round-tripping preserves logic function rather than cover text.

use crate::cell::{CellKind, TruthTable, MAX_LUT_INPUTS};
use crate::error::NetlistError;
use crate::ids::NetId;
use crate::netlist::Netlist;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses BLIF text into a [`Netlist`].
///
/// Nets may be referenced before they are driven (forward references are
/// resolved in a second pass, as BLIF requires).
///
/// # Errors
///
/// Returns [`NetlistError::BlifParse`] with a line number for malformed
/// text, plus any structural error from netlist construction (duplicate
/// names, undriven nets, cycles).
///
/// # Examples
///
/// ```
/// use nemfpga_netlist::blif::parse_blif;
///
/// let text = "\
/// .model tiny
/// .inputs a b
/// .outputs y
/// .names a b y
/// 11 1
/// .end
/// ";
/// let n = parse_blif(text)?;
/// assert_eq!(n.name(), "tiny");
/// assert_eq!(n.num_luts(), 1);
/// # Ok::<(), nemfpga_netlist::error::NetlistError>(())
/// ```
pub fn parse_blif(text: &str) -> Result<Netlist, NetlistError> {
    // First pass: collect logical lines (handling continuations/comments).
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let no_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = no_comment.trim_end();
        if pending.is_empty() {
            pending_line = idx + 1;
        }
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        pending.push_str(trimmed);
        let line = std::mem::take(&mut pending);
        if !line.trim().is_empty() {
            lines.push((pending_line, line));
        }
    }

    #[derive(Debug)]
    enum RawCell {
        Names { line: usize, signals: Vec<String>, cubes: Vec<(String, char)> },
        Latch { line: usize, input: String, output: String },
    }

    let mut model_name: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut raw_cells: Vec<RawCell> = Vec::new();
    let mut saw_end = false;

    let mut i = 0usize;
    while i < lines.len() {
        let (lineno, line) = &lines[i];
        let lineno = *lineno;
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty by construction");
        match head {
            ".model" => {
                if model_name.is_some() {
                    return Err(NetlistError::BlifParse {
                        line: lineno,
                        message: "multiple .model declarations (flat netlists only)".to_owned(),
                    });
                }
                model_name = Some(tokens.next().unwrap_or("unnamed").to_owned());
                i += 1;
            }
            ".inputs" => {
                inputs.extend(tokens.map(str::to_owned));
                i += 1;
            }
            ".outputs" => {
                outputs.extend(tokens.map(str::to_owned));
                i += 1;
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_owned).collect();
                if signals.is_empty() {
                    return Err(NetlistError::BlifParse {
                        line: lineno,
                        message: ".names needs at least an output signal".to_owned(),
                    });
                }
                let mut cubes = Vec::new();
                i += 1;
                while i < lines.len() {
                    let (cl, cover) = &lines[i];
                    if cover.trim_start().starts_with('.') {
                        break;
                    }
                    let mut parts = cover.split_whitespace();
                    let (mask, value) = if signals.len() == 1 {
                        // Constant: single column is the output value.
                        let v = parts.next().ok_or_else(|| NetlistError::BlifParse {
                            line: *cl,
                            message: "empty cover row".to_owned(),
                        })?;
                        (String::new(), v)
                    } else {
                        let mask = parts.next().ok_or_else(|| NetlistError::BlifParse {
                            line: *cl,
                            message: "empty cover row".to_owned(),
                        })?;
                        let v = parts.next().ok_or_else(|| NetlistError::BlifParse {
                            line: *cl,
                            message: "cover row missing output value".to_owned(),
                        })?;
                        (mask.to_owned(), v)
                    };
                    let value_char = value.chars().next().unwrap_or('0');
                    if value_char != '0' && value_char != '1' {
                        return Err(NetlistError::BlifParse {
                            line: *cl,
                            message: format!("cover output must be 0 or 1, got '{value}'"),
                        });
                    }
                    if mask.len() + 1 != signals.len() && !(signals.len() == 1 && mask.is_empty()) {
                        return Err(NetlistError::BlifParse {
                            line: *cl,
                            message: format!(
                                "cover width {} does not match {} inputs",
                                mask.len(),
                                signals.len() - 1
                            ),
                        });
                    }
                    cubes.push((mask, value_char));
                    i += 1;
                }
                raw_cells.push(RawCell::Names { line: lineno, signals, cubes });
            }
            ".latch" => {
                let input = tokens.next();
                let output = tokens.next();
                match (input, output) {
                    (Some(input), Some(output)) => {
                        raw_cells.push(RawCell::Latch {
                            line: lineno,
                            input: input.to_owned(),
                            output: output.to_owned(),
                        });
                    }
                    _ => {
                        return Err(NetlistError::BlifParse {
                            line: lineno,
                            message: ".latch needs input and output signals".to_owned(),
                        })
                    }
                }
                i += 1;
            }
            ".end" => {
                saw_end = true;
                i += 1;
            }
            ".clock" | ".wire_load_slope" | ".default_input_arrival" => {
                // Accept-and-ignore common benign directives.
                i += 1;
            }
            other => {
                return Err(NetlistError::BlifParse {
                    line: lineno,
                    message: format!("unsupported directive '{other}'"),
                });
            }
        }
    }
    if !saw_end {
        return Err(NetlistError::BlifParse {
            line: text.lines().count(),
            message: "missing .end".to_owned(),
        });
    }

    // Second pass: build the netlist with forward references resolved.
    // Map from signal name to the name of the driving *net* we create.
    let mut netlist = Netlist::new(model_name.unwrap_or_else(|| "unnamed".to_owned()));
    let mut signal_net: HashMap<String, NetId> = HashMap::new();
    for name in &inputs {
        let id = netlist.add_input(name)?;
        signal_net.insert(name.clone(), id);
    }
    // Pre-create driven nets for every .names/.latch output so inputs can
    // reference them regardless of declaration order. We do this by
    // creating the cells in an order where that is unnecessary: instead,
    // create placeholder resolution — collect outputs first.
    // (Netlist::add_lut creates the output net itself, so we order cells by
    // dependency using a worklist.)
    // Latch outputs are timing sources: declare their nets up front so
    // logic may read them regardless of declaration order (including
    // feedback loops through latches).
    for raw in &raw_cells {
        if let RawCell::Latch { output, .. } = raw {
            let id = netlist.declare_net(output)?;
            signal_net.insert(output.clone(), id);
        }
    }
    let mut remaining: Vec<&RawCell> = raw_cells.iter().collect();
    loop {
        let before = remaining.len();
        let mut deferred = Vec::with_capacity(before);
        for raw in remaining {
            let ready = match raw {
                RawCell::Names { signals, .. } => {
                    signals[..signals.len() - 1].iter().all(|s| signal_net.contains_key(s))
                }
                RawCell::Latch { input, .. } => signal_net.contains_key(input),
            };
            if !ready {
                deferred.push(raw);
                continue;
            }
            match raw {
                RawCell::Names { line, signals, cubes } => {
                    build_names(&mut netlist, &mut signal_net, *line, signals, cubes)?;
                }
                RawCell::Latch { input, output, .. } => {
                    let in_net = signal_net[input];
                    let out_net = signal_net[output];
                    netlist.add_latch_into(output, in_net, out_net)?;
                }
            }
        }
        remaining = deferred;
        if remaining.is_empty() || remaining.len() == before {
            break;
        }
    }
    if !remaining.is_empty() {
        // Unresolvable references: either an undriven net or a
        // combinational cycle without a latch.
        let (line, name) = match remaining[0] {
            RawCell::Names { line, signals, .. } => (
                *line,
                signals[..signals.len() - 1]
                    .iter()
                    .find(|s| !signal_net.contains_key(*s))
                    .cloned()
                    .unwrap_or_default(),
            ),
            RawCell::Latch { line, input, .. } => (*line, input.clone()),
        };
        return Err(NetlistError::BlifParse {
            line,
            message: format!("signal '{name}' is never driven (or lies on an all-LUT cycle)"),
        });
    }

    // Tolerate a signal listed twice in .outputs (it is one pad either way).
    let mut seen_outputs = std::collections::HashSet::new();
    for name in &outputs {
        if !seen_outputs.insert(name.as_str()) {
            continue;
        }
        let net =
            *signal_net.get(name).ok_or_else(|| NetlistError::UnknownNet { name: name.clone() })?;
        netlist.add_output(&format!("out:{name}"), net)?;
    }
    netlist.validate()?;
    Ok(netlist)
}

fn build_names(
    netlist: &mut Netlist,
    signal_net: &mut HashMap<String, NetId>,
    line: usize,
    signals: &[String],
    cubes: &[(String, char)],
) -> Result<(), NetlistError> {
    let n_in = signals.len() - 1;
    if n_in > MAX_LUT_INPUTS {
        return Err(NetlistError::TooManyLutInputs {
            cell: signals[n_in].clone(),
            inputs: n_in,
            max: MAX_LUT_INPUTS,
        });
    }
    // Expand cubes into a packed truth table. BLIF single-output covers are
    // either all-1 rows (ON-set) or all-0 rows (OFF-set).
    let rows = 1u64 << n_in;
    let on_set = cubes.iter().any(|(_, v)| *v == '1');
    let off_set = cubes.iter().any(|(_, v)| *v == '0');
    if on_set && off_set {
        return Err(NetlistError::BlifParse {
            line,
            message: "cover mixes ON-set and OFF-set rows".to_owned(),
        });
    }
    let mut bits: u64 = 0;
    for row in 0..rows {
        let mut covered = false;
        for (mask, _) in cubes {
            let hit = mask.chars().enumerate().all(|(i, c)| match c {
                '-' => true,
                '1' => (row >> i) & 1 == 1,
                '0' => (row >> i) & 1 == 0,
                _ => false,
            });
            if hit {
                covered = true;
                break;
            }
        }
        // Constant cells (no inputs): covered means the single cube's value.
        let value = if n_in == 0 {
            !cubes.is_empty() && on_set
        } else if off_set {
            !covered
        } else {
            covered
        };
        if value {
            bits |= 1 << row;
        }
    }
    let tt = TruthTable::new(n_in, bits)?;
    let input_nets: Vec<NetId> = signals[..n_in].iter().map(|s| signal_net[s]).collect();
    let out_name = &signals[n_in];
    let net = netlist.add_lut(out_name, &input_nets, tt)?;
    signal_net.insert(out_name.clone(), net);
    Ok(())
}

/// Serializes a netlist back to BLIF.
///
/// LUT functions are written as their full ON-set (one cube per minterm),
/// which is valid BLIF and round-trips exactly through [`parse_blif`].
pub fn write_blif(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", netlist.name());
    let inputs: Vec<&str> = netlist
        .cells()
        .iter()
        .filter(|c| matches!(c.kind, CellKind::Input))
        .map(|c| c.name.as_str())
        .collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = netlist
        .cells()
        .iter()
        .filter(|c| matches!(c.kind, CellKind::Output))
        .map(|c| netlist.net(c.inputs[0]).name.clone())
        .collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for cell in netlist.cells() {
        match &cell.kind {
            CellKind::Lut(tt) => {
                let in_names: Vec<&str> =
                    cell.inputs.iter().map(|n| netlist.net(*n).name.as_str()).collect();
                let out_name =
                    cell.output.map(|n| netlist.net(n).name.as_str()).unwrap_or(cell.name.as_str());
                let _ = writeln!(out, ".names {} {}", in_names.join(" "), out_name);
                let rows = 1u64 << tt.inputs();
                if tt.inputs() == 0 {
                    if tt.bits() & 1 == 1 {
                        let _ = writeln!(out, "1");
                    }
                } else {
                    for row in 0..rows {
                        if (tt.bits() >> row) & 1 == 1 {
                            let mask: String = (0..tt.inputs())
                                .map(|i| if (row >> i) & 1 == 1 { '1' } else { '0' })
                                .collect();
                            let _ = writeln!(out, "{mask} 1");
                        }
                    }
                }
            }
            CellKind::Latch => {
                let in_name = netlist.net(cell.inputs[0]).name.as_str();
                let out_name =
                    cell.output.map(|n| netlist.net(n).name.as_str()).unwrap_or(cell.name.as_str());
                let _ = writeln!(out, ".latch {in_name} {out_name} re clk 2");
            }
            CellKind::Input | CellKind::Output => {}
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny sequential circuit
.model sample
.inputs a b
.outputs y q
.names a b t
11 1
.names t q2 y
1- 1
-1 1
.latch y q2 re clk 2
.names q2 q
1 1
.end
";

    #[test]
    fn parses_sample_with_forward_reference() {
        // 'q2' (a latch output) is used by '.names t q2 y' before the
        // .latch line -- the classic BLIF forward reference.
        let n = parse_blif(SAMPLE).unwrap();
        assert_eq!(n.name(), "sample");
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_outputs(), 2);
        assert_eq!(n.num_luts(), 3);
        assert_eq!(n.num_latches(), 1);
    }

    #[test]
    fn cover_semantics_and_gate() {
        let n = parse_blif(SAMPLE).unwrap();
        let t = n.cell_by_name("t").unwrap();
        if let CellKind::Lut(tt) = &n.cell(t).kind {
            assert!(tt.eval(&[true, true]));
            assert!(!tt.eval(&[true, false]));
            assert!(!tt.eval(&[false, false]));
        } else {
            panic!("t is not a LUT");
        }
    }

    #[test]
    fn off_set_cover_is_complemented() {
        let text = "\
.model offset
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let n = parse_blif(text).unwrap();
        let y = n.cell_by_name("y").unwrap();
        if let CellKind::Lut(tt) = &n.cell(y).kind {
            assert!(!tt.eval(&[true, true])); // NAND
            assert!(tt.eval(&[false, true]));
        } else {
            panic!("y is not a LUT");
        }
    }

    #[test]
    fn constant_cells_parse() {
        let text = "\
.model consts
.inputs
.outputs one zero
.names one
1
.names zero
.end
";
        let n = parse_blif(text).unwrap();
        for (name, want) in [("one", true), ("zero", false)] {
            let id = n.cell_by_name(name).unwrap();
            if let CellKind::Lut(tt) = &n.cell(id).kind {
                assert_eq!(tt.eval(&[]), want, "{name}");
            } else {
                panic!("{name} is not a LUT");
            }
        }
    }

    #[test]
    fn round_trip_preserves_structure_and_function() {
        let n1 = parse_blif(SAMPLE).unwrap();
        let text = write_blif(&n1);
        let n2 = parse_blif(&text).unwrap();
        assert_eq!(n1.num_luts(), n2.num_luts());
        assert_eq!(n1.num_latches(), n2.num_latches());
        assert_eq!(n1.num_inputs(), n2.num_inputs());
        assert_eq!(n1.num_outputs(), n2.num_outputs());
        // Truth tables survive (compare by matching output-net names).
        for cell in n1.cells() {
            if let CellKind::Lut(tt1) = &cell.kind {
                let id2 = n2.cell_by_name(&cell.name).unwrap();
                if let CellKind::Lut(tt2) = &n2.cell(id2).kind {
                    assert_eq!(tt1, tt2, "cell {}", cell.name);
                } else {
                    panic!("kind changed for {}", cell.name);
                }
            }
        }
    }

    #[test]
    fn line_continuations_and_comments() {
        let text = "\
.model cont
.inputs a \\
  b
.outputs y # trailing comment
.names a b y
11 1
.end
";
        let n = parse_blif(text).unwrap();
        assert_eq!(n.num_inputs(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = ".model bad\n.inputs a\n.frobnicate x\n.end\n";
        match parse_blif(text) {
            Err(NetlistError::BlifParse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_end_rejected() {
        assert!(matches!(
            parse_blif(".model x\n.inputs a\n.outputs a\n"),
            Err(NetlistError::BlifParse { .. })
        ));
    }

    #[test]
    fn undriven_signal_reported() {
        let text = "\
.model undriven
.inputs a
.outputs y
.names a ghost y
11 1
.end
";
        let err = parse_blif(text).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn latch_feedback_loop_parses() {
        // q feeds the very LUT that computes the latch's next state.
        let text = "\
.model toggler
.inputs en
.outputs q
.names en q d
10 1
01 1
.latch d q re clk 2
.end
";
        let n = parse_blif(text).unwrap();
        assert_eq!(n.num_latches(), 1);
        assert_eq!(n.num_luts(), 1);
        n.validate().unwrap();
    }

    #[test]
    fn mixed_cover_rejected() {
        let text = "\
.model mixed
.inputs a b
.outputs y
.names a b y
11 1
00 0
.end
";
        assert!(parse_blif(text).is_err());
    }
}
