//! Static (leakage) power.
//!
//! Leakage is paid by every fabricated device, used or not, which is why
//! the CMOS-only baseline's leakage is dominated by routing buffers
//! (Fig. 9 right: buffers 70%, SRAM 12%, pass transistors 10%, LUTs 8%)
//! and why NEM relays — zero off-state leakage, no SRAM — buy the 10×
//! headline reduction.

use crate::usage::FabricInventory;
use nemfpga_tech::units::Watts;
use serde::{Deserialize, Serialize};

/// Per-instance leakage costs of the fabric's component classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageCosts {
    /// One wire buffer (driver chain of a channel segment).
    pub per_wire_buffer: Watts,
    /// One LB input buffer.
    pub per_lb_input_buffer: Watts,
    /// One LB output buffer.
    pub per_lb_output_buffer: Watts,
    /// One routing configuration SRAM bit.
    pub per_sram_bit: Watts,
    /// One routing switch device (pass transistor: subthreshold leak;
    /// NEM relay: zero).
    pub per_switch: Watts,
    /// One LUT (including its internal config SRAM).
    pub per_lut: Watts,
    /// One flip-flop.
    pub per_ff: Watts,
}

/// Leakage broken down as in Fig. 9 (right).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageBreakdown {
    /// Routing buffers (wire + LB input/output buffers).
    pub routing_buffers: Watts,
    /// Routing configuration SRAM.
    pub routing_sram: Watts,
    /// Routing switch devices.
    pub routing_switches: Watts,
    /// LUTs and flip-flops.
    pub logic: Watts,
}

impl LeakageBreakdown {
    /// Total leakage power.
    pub fn total(&self) -> Watts {
        self.routing_buffers + self.routing_sram + self.routing_switches + self.logic
    }

    /// Component fractions `(buffers, sram, switches, logic)`.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().value().max(f64::MIN_POSITIVE);
        [
            self.routing_buffers.value() / t,
            self.routing_sram.value() / t,
            self.routing_switches.value() / t,
            self.logic.value() / t,
        ]
    }
}

/// Computes whole-fabric leakage from the inventory and unit costs.
///
/// # Examples
///
/// ```
/// use nemfpga_power::leakage::{leakage_power, LeakageCosts};
/// use nemfpga_power::usage::FabricInventory;
/// use nemfpga_tech::units::Watts;
///
/// let inv = FabricInventory {
///     wire_segments: 100, routing_switches: 1000, routing_sram_bits: 1000,
///     lb_input_buffers: 220, lb_output_buffers: 100, luts: 100, ffs: 100,
/// };
/// let costs = LeakageCosts {
///     per_wire_buffer: Watts::new(50e-9),
///     per_lb_input_buffer: Watts::new(3e-9),
///     per_lb_output_buffer: Watts::new(5e-9),
///     per_sram_bit: Watts::new(4e-9),
///     per_switch: Watts::new(1e-9),
///     per_lut: Watts::new(20e-9),
///     per_ff: Watts::new(5e-9),
/// };
/// let b = leakage_power(&inv, &costs);
/// assert!(b.routing_buffers > b.routing_sram);
/// ```
pub fn leakage_power(inventory: &FabricInventory, costs: &LeakageCosts) -> LeakageBreakdown {
    let buffers = costs.per_wire_buffer * inventory.wire_segments as f64
        + costs.per_lb_input_buffer * inventory.lb_input_buffers as f64
        + costs.per_lb_output_buffer * inventory.lb_output_buffers as f64;
    LeakageBreakdown {
        routing_buffers: buffers,
        routing_sram: costs.per_sram_bit * inventory.routing_sram_bits as f64,
        routing_switches: costs.per_switch * inventory.routing_switches as f64,
        logic: costs.per_lut * inventory.luts as f64 + costs.per_ff * inventory.ffs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> FabricInventory {
        FabricInventory {
            wire_segments: 200,
            routing_switches: 5000,
            routing_sram_bits: 5000,
            lb_input_buffers: 220,
            lb_output_buffers: 100,
            luts: 100,
            ffs: 100,
        }
    }

    fn costs() -> LeakageCosts {
        LeakageCosts {
            per_wire_buffer: Watts::new(50e-9),
            per_lb_input_buffer: Watts::new(8e-9),
            per_lb_output_buffer: Watts::new(12e-9),
            per_sram_bit: Watts::new(4.5e-9),
            per_switch: Watts::new(1.3e-9),
            per_lut: Watts::new(20e-9),
            per_ff: Watts::new(6e-9),
        }
    }

    #[test]
    fn totals_and_fractions() {
        let b = leakage_power(&inv(), &costs());
        let sum = b.routing_buffers + b.routing_sram + b.routing_switches + b.logic;
        assert!((b.total().value() - sum.value()).abs() < 1e-18);
        assert!((b.fractions().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_leak_switches_eliminate_switch_and_sram_terms() {
        let mut c = costs();
        c.per_switch = Watts::zero();
        let mut i = inv();
        i.routing_sram_bits = 0; // NEM relays need no config SRAM
        let b = leakage_power(&i, &c);
        assert_eq!(b.routing_switches, Watts::zero());
        assert_eq!(b.routing_sram, Watts::zero());
        assert!(b.logic.value() > 0.0);
    }

    #[test]
    fn leakage_scales_linearly_with_inventory() {
        let b1 = leakage_power(&inv(), &costs());
        let mut big = inv();
        big.wire_segments *= 2;
        big.routing_switches *= 2;
        big.routing_sram_bits *= 2;
        big.lb_input_buffers *= 2;
        big.lb_output_buffers *= 2;
        big.luts *= 2;
        big.ffs *= 2;
        let b2 = leakage_power(&big, &costs());
        assert!((b2.total().value() / b1.total().value() - 2.0).abs() < 1e-9);
    }
}
