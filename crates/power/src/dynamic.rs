//! Dynamic (switching) power.
//!
//! `P = ½ · α · C · Vdd² · f_clk` summed per component group, with the
//! grouping of the paper's Fig. 9: wire interconnect, routing buffers,
//! LUTs, and clocking.

use crate::activity::NetActivity;
use crate::usage::FabricUsage;
use nemfpga_tech::units::{Farads, Hertz, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Capacitance unit costs of the dynamic components, per use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicCosts {
    /// Channel wire capacitance per tile span (metal + switch taps).
    pub wire_cap_per_tile: Farads,
    /// Capacitance switched inside the buffer chain at each driven wire
    /// (output driver or switch-box buffer). Zero when buffers are removed.
    pub sb_buffer_cap: Farads,
    /// Capacitance switched by an LB output buffer per crossing net.
    pub lb_output_buffer_cap: Farads,
    /// Capacitance switched by an LB input buffer per connection-box entry.
    pub lb_input_buffer_cap: Farads,
    /// Routing-switch parasitic charged per hop (pass transistor
    /// diffusion or relay contact).
    pub switch_parasitic_cap: Farads,
    /// Receiver-side load charged per connection-box entry (the LB-local
    /// crossbar the signal ultimately drives). Counted in the wire bucket.
    pub cb_load_cap: Farads,
    /// Internal capacitance switched per LUT evaluation.
    pub lut_internal_cap: Farads,
    /// Clock-network capacitance per flip-flop.
    pub clock_cap_per_ff: Farads,
}

/// Dynamic power broken down as in Fig. 9 (left).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicBreakdown {
    /// Wire interconnect charging.
    pub wires: Watts,
    /// Routing buffers (LB input/output buffers + wire buffers).
    pub routing_buffers: Watts,
    /// LUT-internal switching.
    pub luts: Watts,
    /// Clock distribution (toggles every cycle: activity 1).
    pub clocking: Watts,
}

impl DynamicBreakdown {
    /// Total dynamic power.
    pub fn total(&self) -> Watts {
        self.wires + self.routing_buffers + self.luts + self.clocking
    }

    /// Component fractions `(wires, buffers, luts, clock)` of the total.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().value().max(f64::MIN_POSITIVE);
        [
            self.wires.value() / t,
            self.routing_buffers.value() / t,
            self.luts.value() / t,
            self.clocking.value() / t,
        ]
    }
}

/// Computes the dynamic power of an implementation.
///
/// # Examples
///
/// See `nemfpga::power` for an end-to-end example; this function combines
/// activity-weighted usage with per-component capacitances.
pub fn dynamic_power(
    usage: &FabricUsage,
    activities: &[NetActivity],
    costs: &DynamicCosts,
    vdd: Volts,
    f_clk: Hertz,
) -> DynamicBreakdown {
    // ½·V²·f, applied to every activity-weighted capacitance sum.
    let scale = 0.5 * vdd.value() * vdd.value() * f_clk.value();
    let watts = |alpha_cap: f64| Watts::new(alpha_cap * scale);

    let wire_cap = usage.weighted_sum(activities, |u| {
        u.wire_tiles as f64 * costs.wire_cap_per_tile.value()
            + (u.sb_hops + u.cb_entries + u.driver_hops) as f64 * costs.switch_parasitic_cap.value()
            + u.cb_entries as f64 * costs.cb_load_cap.value()
    });
    let buffer_cap = usage.weighted_sum(activities, |u| {
        (u.sb_hops + u.driver_hops) as f64 * costs.sb_buffer_cap.value()
            + u.driver_hops as f64 * costs.lb_output_buffer_cap.value()
            + u.cb_entries as f64 * costs.lb_input_buffer_cap.value()
    });
    // Each used LUT switches its internal cap at its output net's density;
    // approximate with the mean net density (cheap and adequate since LUT
    // power is a fixed share).
    let mean_density = if activities.is_empty() {
        0.0
    } else {
        activities.iter().map(|a| a.density).sum::<f64>() / activities.len() as f64
    };
    let lut_cap = usage.used_luts as f64 * costs.lut_internal_cap.value() * mean_density;
    // The clock toggles twice per cycle regardless of data: α = 2.
    let clock_cap = usage.used_ffs as f64 * costs.clock_cap_per_ff.value() * 2.0;

    DynamicBreakdown {
        wires: watts(wire_cap),
        routing_buffers: watts(buffer_cap),
        luts: watts(lut_cap),
        clocking: watts(clock_cap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usage::NetUsage;
    use nemfpga_netlist::ids::NetId;

    fn costs() -> DynamicCosts {
        DynamicCosts {
            wire_cap_per_tile: Farads::from_femto(3.0),
            sb_buffer_cap: Farads::from_femto(1.0),
            lb_output_buffer_cap: Farads::from_femto(0.8),
            lb_input_buffer_cap: Farads::from_femto(0.6),
            switch_parasitic_cap: Farads::from_femto(0.3),
            cb_load_cap: Farads::zero(),
            lut_internal_cap: Farads::from_femto(5.0),
            clock_cap_per_ff: Farads::from_femto(2.0),
        }
    }

    fn usage() -> FabricUsage {
        FabricUsage {
            nets: vec![
                NetUsage {
                    net: NetId::new(0),
                    wire_tiles: 8,
                    sb_hops: 2,
                    driver_hops: 1,
                    cb_entries: 1,
                },
                NetUsage {
                    net: NetId::new(1),
                    wire_tiles: 4,
                    sb_hops: 1,
                    driver_hops: 1,
                    cb_entries: 2,
                },
            ],
            used_luts: 10,
            used_ffs: 4,
        }
    }

    fn acts() -> Vec<NetActivity> {
        vec![NetActivity::from_prob(0.5), NetActivity::from_prob(0.5)]
    }

    #[test]
    fn hand_computed_wire_power() {
        let b =
            dynamic_power(&usage(), &acts(), &costs(), Volts::new(0.8), Hertz::from_mega(100.0));
        // wire caps: net0: 8*3fF + 4*0.3fF = 25.2fF; net1: 4*3fF + 4*0.3fF
        // = 13.2fF; both at alpha 0.5 -> 19.2fF effective.
        // P = 0.5 * 0.64 * 1e8 * 19.2e-15 = 6.144e-7 W.
        assert!((b.wires.value() - 6.144e-7).abs() < 1e-12, "{}", b.wires);
        assert!(b.total() > b.wires);
    }

    #[test]
    fn removed_buffers_zero_the_buffer_component() {
        let mut c = costs();
        c.sb_buffer_cap = Farads::zero();
        c.lb_output_buffer_cap = Farads::zero();
        c.lb_input_buffer_cap = Farads::zero();
        let b = dynamic_power(&usage(), &acts(), &c, Volts::new(0.8), Hertz::from_mega(100.0));
        assert_eq!(b.routing_buffers, Watts::zero());
        assert!(b.wires.value() > 0.0);
    }

    #[test]
    fn clock_power_is_activity_independent() {
        let dead: Vec<NetActivity> = vec![NetActivity::from_prob(1.0); 2];
        let b = dynamic_power(&usage(), &dead, &costs(), Volts::new(0.8), Hertz::from_mega(100.0));
        assert_eq!(b.wires, Watts::zero());
        assert!(b.clocking.value() > 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b =
            dynamic_power(&usage(), &acts(), &costs(), Volts::new(0.8), Hertz::from_mega(100.0));
        let sum: f64 = b.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_frequency_and_vdd_squared() {
        let b1 =
            dynamic_power(&usage(), &acts(), &costs(), Volts::new(0.8), Hertz::from_mega(100.0));
        let b2 =
            dynamic_power(&usage(), &acts(), &costs(), Volts::new(0.8), Hertz::from_mega(200.0));
        assert!((b2.total().value() / b1.total().value() - 2.0).abs() < 1e-9);
        let b3 =
            dynamic_power(&usage(), &acts(), &costs(), Volts::new(1.6), Hertz::from_mega(100.0));
        assert!((b3.total().value() / b1.total().value() - 4.0).abs() < 1e-9);
    }
}
