//! Probabilistic switching-activity estimation.
//!
//! The paper's power methodology ([Jamieson 09]) weights per-node dynamic
//! energy by "appropriate switching activities of various circuit nodes".
//! We propagate static `1`-probabilities through the LUT network under the
//! usual spatial/temporal independence assumptions and derive transition
//! densities `α = 2·p·(1-p)` (transitions per clock cycle).

use nemfpga_netlist::cell::CellKind;
use nemfpga_netlist::error::NetlistError;
use nemfpga_netlist::netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Activity of one net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetActivity {
    /// Probability the net is logic 1.
    pub prob: f64,
    /// Expected transitions per clock cycle.
    pub density: f64,
}

impl NetActivity {
    /// Activity from a static probability under temporal independence.
    pub fn from_prob(prob: f64) -> Self {
        Self { prob, density: 2.0 * prob * (1.0 - prob) }
    }
}

/// Per-net activities, indexed by `NetId`.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic netlists.
///
/// # Examples
///
/// ```
/// use nemfpga_netlist::synth::SynthConfig;
/// use nemfpga_power::activity::compute_activities;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let netlist = SynthConfig::tiny("t", 30, 1).generate()?;
/// let acts = compute_activities(&netlist, 0.5)?;
/// assert_eq!(acts.len(), netlist.nets().len());
/// assert!(acts.iter().all(|a| (0.0..=1.0).contains(&a.prob)));
/// assert!(acts.iter().all(|a| (0.0..=0.5 + 1e-12).contains(&a.density)));
/// # Ok(())
/// # }
/// ```
pub fn compute_activities(
    netlist: &Netlist,
    input_prob: f64,
) -> Result<Vec<NetActivity>, NetlistError> {
    let order = netlist.topological_order()?;
    let mut probs = vec![0.5f64; netlist.nets().len()];

    // Latch outputs settle to their data input's steady-state probability;
    // iterate to a fixed point (feedback through latches converges
    // geometrically; the cap guards pathological oscillators).
    let mut stable = false;
    for _ in 0..32 {
        if stable {
            break;
        }
        stable = true;
        for id in &order {
            let cell = netlist.cell(*id);
            let Some(out) = cell.output else { continue };
            let p = match &cell.kind {
                CellKind::Input => input_prob,
                CellKind::Latch => probs[cell.inputs[0].index()],
                CellKind::Lut(tt) => {
                    let k = tt.inputs();
                    let mut p_one = 0.0f64;
                    for row in 0..(1u64 << k) {
                        if (tt.bits() >> row) & 1 == 0 {
                            continue;
                        }
                        let mut p_row = 1.0;
                        for (i, input) in cell.inputs.iter().enumerate() {
                            let pi = probs[input.index()];
                            p_row *= if (row >> i) & 1 == 1 { pi } else { 1.0 - pi };
                        }
                        p_one += p_row;
                    }
                    p_one
                }
                CellKind::Output => continue,
            };
            let p = p.clamp(0.0, 1.0);
            if (p - probs[out.index()]).abs() > 1e-9 {
                stable = false;
            }
            probs[out.index()] = p;
        }
    }

    Ok(probs.into_iter().map(NetActivity::from_prob).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga_netlist::cell::TruthTable;
    use nemfpga_netlist::synth::SynthConfig;

    #[test]
    fn and_gate_probability() {
        let mut n = Netlist::new("and");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let y = n.add_lut("y", &[a, b], TruthTable::new(2, 0b1000).unwrap()).unwrap();
        n.add_output("o", y).unwrap();
        let acts = compute_activities(&n, 0.5).unwrap();
        assert!((acts[y.index()].prob - 0.25).abs() < 1e-12);
        // alpha = 2 * 0.25 * 0.75 = 0.375
        assert!((acts[y.index()].density - 0.375).abs() < 1e-12);
    }

    #[test]
    fn inverter_preserves_density() {
        let mut n = Netlist::new("inv");
        let a = n.add_input("a").unwrap();
        let y = n.add_lut("y", &[a], TruthTable::new(1, 0b01).unwrap()).unwrap();
        n.add_output("o", y).unwrap();
        let acts = compute_activities(&n, 0.3).unwrap();
        assert!((acts[y.index()].prob - 0.7).abs() < 1e-12);
        assert!((acts[a.index()].density - acts[y.index()].density).abs() < 1e-12);
    }

    #[test]
    fn constant_nets_never_switch() {
        let mut n = Netlist::new("const");
        let a = n.add_input("a").unwrap();
        let one = n.add_lut("one", &[a], TruthTable::new(1, 0b11).unwrap()).unwrap();
        n.add_output("o", one).unwrap();
        let acts = compute_activities(&n, 0.5).unwrap();
        assert!((acts[one.index()].prob - 1.0).abs() < 1e-12);
        assert!(acts[one.index()].density.abs() < 1e-12);
    }

    #[test]
    fn latch_passes_steady_state_probability() {
        let mut n = Netlist::new("seq");
        let a = n.add_input("a").unwrap();
        let y = n.add_lut("y", &[a], TruthTable::new(1, 0b10).unwrap()).unwrap();
        let q = n.add_latch("q", y).unwrap();
        n.add_output("o", q).unwrap();
        let acts = compute_activities(&n, 0.2).unwrap();
        assert!((acts[q.index()].prob - acts[y.index()].prob).abs() < 1e-12);
    }

    #[test]
    fn deep_logic_stays_in_bounds() {
        let netlist = SynthConfig::tiny("deep", 150, 3).generate().unwrap();
        let acts = compute_activities(&netlist, 0.5).unwrap();
        for a in &acts {
            assert!((0.0..=1.0).contains(&a.prob));
            assert!((0.0..=0.5 + 1e-12).contains(&a.density));
        }
        // Logic should not be degenerate: some nets actually switch.
        let switching = acts.iter().filter(|a| a.density > 0.05).count();
        assert!(switching > acts.len() / 4, "{switching}/{}", acts.len());
    }
}
