//! Combined power report with Fig. 9-style textual rendering.

use crate::dynamic::DynamicBreakdown;
use crate::leakage::LeakageBreakdown;
use nemfpga_tech::units::Watts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The full power picture of one implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Dynamic (switching) power by component.
    pub dynamic: DynamicBreakdown,
    /// Static (leakage) power by component.
    pub leakage: LeakageBreakdown,
}

impl PowerReport {
    /// Total chip power.
    pub fn total(&self) -> Watts {
        self.dynamic.total() + self.leakage.total()
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.dynamic.fractions();
        let l = self.leakage.fractions();
        writeln!(
            f,
            "dynamic power: {:.3} mW (wires {:.0}%, routing buffers {:.0}%, LUTs {:.0}%, clocking {:.0}%)",
            self.dynamic.total().as_milli(),
            d[0] * 100.0,
            d[1] * 100.0,
            d[2] * 100.0,
            d[3] * 100.0,
        )?;
        write!(
            f,
            "leakage power: {:.3} mW (routing buffers {:.0}%, routing SRAM {:.0}%, pass switches {:.0}%, logic {:.0}%)",
            self.leakage.total().as_milli(),
            l[0] * 100.0,
            l[1] * 100.0,
            l[2] * 100.0,
            l[3] * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_every_component() {
        let report = PowerReport {
            dynamic: DynamicBreakdown {
                wires: Watts::from_micro(40.0),
                routing_buffers: Watts::from_micro(30.0),
                luts: Watts::from_micro(20.0),
                clocking: Watts::from_micro(10.0),
            },
            leakage: LeakageBreakdown {
                routing_buffers: Watts::from_micro(70.0),
                routing_sram: Watts::from_micro(12.0),
                routing_switches: Watts::from_micro(10.0),
                logic: Watts::from_micro(8.0),
            },
        };
        let s = report.to_string();
        assert!(s.contains("wires 40%"), "{s}");
        assert!(s.contains("routing buffers 70%"), "{s}");
        assert!((report.total().as_micro() - 200.0).abs() < 1e-9);
    }
}
