//! Fabric usage (dynamic power drivers) and fabric inventory (leakage
//! drivers).
//!
//! Dynamic power follows *used* resources weighted by activity; leakage
//! follows *fabricated* resources — the whole chip leaks whether or not a
//! net runs through it, which is why routing buffers dominate the paper's
//! Fig. 9 leakage breakdown.

use crate::activity::NetActivity;
use nemfpga_arch::rrgraph::{RrGraph, RrKind, SwitchClass};
use nemfpga_netlist::ids::NetId;
use nemfpga_pnr::pack::PackedDesign;
use nemfpga_pnr::route::Routing;
use serde::{Deserialize, Serialize};

/// Per-net routed resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetUsage {
    /// The net.
    pub net: NetId,
    /// Tiles of channel wire the routed tree spans.
    pub wire_tiles: usize,
    /// Switch-box hops (wire-to-wire switches) used.
    pub sb_hops: usize,
    /// Output-driver hops (block pin onto wire).
    pub driver_hops: usize,
    /// Connection-box entries (wire to input pin).
    pub cb_entries: usize,
}

/// Usage of the whole implementation, for dynamic power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricUsage {
    /// Per-net usage, aligned with the design's packed nets.
    pub nets: Vec<NetUsage>,
    /// LUTs actually used.
    pub used_luts: usize,
    /// Flip-flops actually used.
    pub used_ffs: usize,
}

impl FabricUsage {
    /// Extracts usage from a routed implementation.
    pub fn from_routing(rr: &RrGraph, design: &PackedDesign, routing: &Routing) -> Self {
        let mut nets = Vec::with_capacity(routing.nets.len());
        for rn in &routing.nets {
            let mut u =
                NetUsage { net: rn.net, wire_tiles: 0, sb_hops: 0, driver_hops: 0, cb_entries: 0 };
            for t in &rn.tree {
                if rr.node(t.rr).kind.is_wire() {
                    u.wire_tiles += rr.node(t.rr).kind.span_tiles();
                }
                match t.entered_via {
                    SwitchClass::SwitchBox => u.sb_hops += 1,
                    SwitchClass::OutputDriver => u.driver_hops += 1,
                    SwitchClass::ConnectionBox => u.cb_entries += 1,
                    SwitchClass::Internal => {}
                }
            }
            nets.push(u);
        }
        let netlist = design.netlist();
        Self { nets, used_luts: netlist.num_luts(), used_ffs: netlist.num_latches() }
    }

    /// Sum of `weight(net_activity) × value(usage)` over nets — the core
    /// activity-weighted accumulation for dynamic power.
    pub fn weighted_sum(
        &self,
        activities: &[NetActivity],
        value: impl Fn(&NetUsage) -> f64,
    ) -> f64 {
        self.nets.iter().map(|u| activities[u.net.index()].density * value(u)).sum()
    }
}

/// Whole-fabric resource inventory, for leakage and area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricInventory {
    /// Channel wire segments (each carries one wire buffer when buffered).
    pub wire_segments: usize,
    /// Programmable switch instances (switch-box + connection-box).
    pub routing_switches: usize,
    /// Configuration SRAM bits for the routing (one per CMOS switch).
    pub routing_sram_bits: usize,
    /// LB input buffers across all logic tiles.
    pub lb_input_buffers: usize,
    /// LB output buffers across all logic tiles.
    pub lb_output_buffers: usize,
    /// LUTs fabricated across all logic tiles.
    pub luts: usize,
    /// Flip-flops fabricated across all logic tiles.
    pub ffs: usize,
}

impl FabricInventory {
    /// Counts the fabric behind `rr` (`sram_per_switch` = 1 for CMOS
    /// routing switches, 0 for NEM relays, which store their own state).
    pub fn from_rr_graph(rr: &RrGraph, sram_per_switch: usize) -> Self {
        let mut wire_segments = 0usize;
        let mut routing_switches = 0usize;
        let mut lb_tiles = 0usize;
        for id in rr.node_ids() {
            match rr.node(id).kind {
                RrKind::ChanX { .. } | RrKind::ChanY { .. } => wire_segments += 1,
                RrKind::Source { x, y }
                    if rr.grid.tile(x as usize, y as usize) == nemfpga_arch::grid::TileKind::Lb =>
                {
                    lb_tiles += 1;
                }
                _ => {}
            }
            for e in rr.edges_from(id) {
                match e.switch {
                    SwitchClass::SwitchBox => routing_switches += 1,
                    SwitchClass::ConnectionBox => routing_switches += 1,
                    _ => {}
                }
            }
        }
        // Switch-box edges are stored in both directions but are one
        // physical switch.
        let sb_dirs: usize = rr
            .node_ids()
            .map(|id| {
                rr.edges_from(id).iter().filter(|e| e.switch == SwitchClass::SwitchBox).count()
            })
            .sum();
        routing_switches -= sb_dirs / 2;

        let params = &rr.params;
        Self {
            wire_segments,
            routing_switches,
            routing_sram_bits: routing_switches * sram_per_switch,
            lb_input_buffers: lb_tiles * params.lb_inputs,
            lb_output_buffers: lb_tiles * params.lb_outputs(),
            luts: lb_tiles * params.cluster_size,
            ffs: lb_tiles * params.cluster_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::compute_activities;
    use nemfpga_arch::{build_rr_graph, ArchParams, Grid};
    use nemfpga_netlist::synth::SynthConfig;
    use nemfpga_pnr::flow::{implement, WidthPolicy};
    use nemfpga_pnr::place::PlaceConfig;
    use nemfpga_pnr::route::RouteConfig;

    fn implementation() -> (nemfpga_pnr::flow::Implementation, Vec<NetActivity>) {
        let netlist = SynthConfig::tiny("t", 40, 1).generate().unwrap();
        let acts = compute_activities(&netlist, 0.5).unwrap();
        let imp = implement(
            netlist,
            &ArchParams::paper_table1(),
            &PlaceConfig::fast(1),
            &RouteConfig::new(),
            WidthPolicy::LowStress { hint: 12, max: 256 },
        )
        .unwrap();
        (imp, acts)
    }

    #[test]
    fn usage_matches_routing_wirelength() {
        let (imp, _) = implementation();
        let usage = FabricUsage::from_routing(&imp.rr, &imp.design, &imp.routing);
        let total: usize = usage.nets.iter().map(|u| u.wire_tiles).sum();
        assert_eq!(total, imp.routing.wirelength_tiles);
        // Every routed net drove at least one wire and one CB entry.
        for u in &usage.nets {
            assert!(u.driver_hops >= 1, "{u:?}");
            assert!(u.cb_entries >= 1, "{u:?}");
        }
    }

    #[test]
    fn weighted_sum_scales_with_activity() {
        let (imp, acts) = implementation();
        let usage = FabricUsage::from_routing(&imp.rr, &imp.design, &imp.routing);
        let base = usage.weighted_sum(&acts, |u| u.wire_tiles as f64);
        assert!(base > 0.0);
        let doubled: Vec<NetActivity> =
            acts.iter().map(|a| NetActivity { prob: a.prob, density: a.density * 2.0 }).collect();
        let twice = usage.weighted_sum(&doubled, |u| u.wire_tiles as f64);
        assert!((twice / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inventory_counts_scale_with_fabric() {
        let params = ArchParams::paper_table1();
        let small = build_rr_graph(&params, Grid::new(3, 3, 2).unwrap(), 10).unwrap();
        let big = build_rr_graph(&params, Grid::new(6, 6, 2).unwrap(), 20).unwrap();
        let inv_s = FabricInventory::from_rr_graph(&small, 1);
        let inv_b = FabricInventory::from_rr_graph(&big, 1);
        assert!(inv_b.wire_segments > inv_s.wire_segments);
        assert!(inv_b.routing_switches > inv_s.routing_switches);
        assert_eq!(inv_s.luts, 9 * params.cluster_size);
        assert_eq!(inv_b.lb_input_buffers, 36 * params.lb_inputs);
        assert_eq!(inv_s.routing_sram_bits, inv_s.routing_switches);
    }

    #[test]
    fn nem_fabric_has_no_routing_sram() {
        let params = ArchParams::paper_table1();
        let rr = build_rr_graph(&params, Grid::new(3, 3, 2).unwrap(), 10).unwrap();
        let inv = FabricInventory::from_rr_graph(&rr, 0);
        assert_eq!(inv.routing_sram_bits, 0);
        assert!(inv.routing_switches > 0);
    }
}
