//! # nemfpga-power
//!
//! FPGA power models implementing the paper's Fig. 9 methodology
//! ([Jamieson 09]): probabilistic switching activities weight per-node
//! dynamic energy; whole-fabric inventory drives leakage.
//!
//! * [`activity`] — static-probability propagation and transition
//!   densities.
//! * [`usage`] — routed-resource usage (dynamic drivers) and fabric
//!   inventory (leakage drivers).
//! * [`dynamic`] — `½·α·C·V²·f` accumulation grouped as wires / routing
//!   buffers / LUTs / clocking.
//! * [`leakage`] — per-instance leakage grouped as buffers / SRAM /
//!   switches / logic.
//! * [`breakdown`] — the combined [`breakdown::PowerReport`].
//!
//! # Examples
//!
//! ```
//! use nemfpga_netlist::synth::SynthConfig;
//! use nemfpga_power::activity::compute_activities;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SynthConfig::tiny("t", 20, 1).generate()?;
//! let activities = compute_activities(&netlist, 0.5)?;
//! assert_eq!(activities.len(), netlist.nets().len());
//! # Ok(())
//! # }
//! ```

pub mod activity;
pub mod breakdown;
pub mod dynamic;
pub mod leakage;
pub mod usage;

pub use activity::{compute_activities, NetActivity};
pub use breakdown::PowerReport;
pub use dynamic::{dynamic_power, DynamicBreakdown, DynamicCosts};
pub use leakage::{leakage_power, LeakageBreakdown, LeakageCosts};
pub use usage::{FabricInventory, FabricUsage, NetUsage};
