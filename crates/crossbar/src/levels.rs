//! Half-select programming voltage levels and their constraints (Fig. 4).
//!
//! Three levels program an array without per-relay configuration memory:
//! hold (`Vhold`), select (`-Vselect` on source lines, `Vhold + Vselect` on
//! gate lines). They must satisfy, for **every** relay in the array:
//!
//! ```text
//! Vpo < Vhold            < Vpi      (hold disturbs nothing)
//! Vpo < Vhold + Vselect  < Vpi      (half-selected relays retain state)
//!       Vhold + 2Vselect > Vpi      (fully selected relays always pull in)
//! ```

use crate::error::CrossbarError;
use nemfpga_device::relay::NemRelayDevice;
use nemfpga_device::variation::PopulationStats;
use nemfpga_tech::units::Volts;
use serde::{Deserialize, Serialize};

/// A `(Vhold, Vselect)` pair.
///
/// # Examples
///
/// ```
/// use nemfpga_crossbar::levels::ProgrammingLevels;
/// use nemfpga_device::relay::NemRelayDevice;
///
/// let levels = ProgrammingLevels::paper_demo();
/// levels.validate_for(&NemRelayDevice::fabricated())?;
/// # Ok::<(), nemfpga_crossbar::error::CrossbarError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgrammingLevels {
    /// The hold level applied to unselected gate lines (and to all gate
    /// lines after programming, to retain state).
    pub vhold: Volts,
    /// The select step; selected gate lines sit at `Vhold + Vselect`,
    /// selected source lines at `-Vselect`.
    pub vselect: Volts,
}

impl ProgrammingLevels {
    /// The levels used for the experimental 2×2 crossbar demonstration
    /// (Sec. 2.3): `Vhold = 5.2 V`, `Vselect = 0.8 V`.
    pub fn paper_demo() -> Self {
        Self { vhold: Volts::new(5.2), vselect: Volts::new(0.8) }
    }

    /// Gate-line voltage of a selected row of relays.
    #[inline]
    pub fn gate_selected(&self) -> Volts {
        self.vhold + self.vselect
    }

    /// |V_GS| seen by the one fully selected relay.
    #[inline]
    pub fn full_select_vgs(&self) -> Volts {
        self.vhold + self.vselect * 2.0
    }

    /// |V_GS| seen by half-selected relays.
    #[inline]
    pub fn half_select_vgs(&self) -> Volts {
        self.vhold + self.vselect
    }

    /// Checks the five half-select inequalities against a single device.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::LevelsViolateWindow`] naming the first
    /// violated constraint.
    pub fn validate_for(&self, device: &NemRelayDevice) -> Result<(), CrossbarError> {
        let vpi = device.pull_in_voltage();
        let vpo = device.pull_out_voltage();
        self.validate_against(vpi, vpo)
    }

    /// Checks the constraints against explicit `(Vpi, Vpo)` values.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::LevelsViolateWindow`] naming the first
    /// violated constraint.
    pub fn validate_against(&self, vpi: Volts, vpo: Volts) -> Result<(), CrossbarError> {
        let fail = |constraint: String| Err(CrossbarError::LevelsViolateWindow { constraint });
        if self.vselect.value() <= 0.0 {
            return fail(format!("Vselect must be positive, got {}", self.vselect));
        }
        if self.vhold <= vpo {
            return fail(format!("Vhold {} <= Vpo {} (hold would release)", self.vhold, vpo));
        }
        if self.vhold >= vpi {
            return fail(format!("Vhold {} >= Vpi {} (hold would pull in)", self.vhold, vpi));
        }
        if self.half_select_vgs() >= vpi {
            return fail(format!(
                "Vhold+Vselect {} >= Vpi {} (half-select would pull in)",
                self.half_select_vgs(),
                vpi
            ));
        }
        if self.half_select_vgs() <= vpo {
            return fail(format!(
                "Vhold+Vselect {} <= Vpo {} (half-select would release)",
                self.half_select_vgs(),
                vpo
            ));
        }
        if self.full_select_vgs() <= vpi {
            return fail(format!(
                "Vhold+2Vselect {} <= Vpi {} (full select would not pull in)",
                self.full_select_vgs(),
                vpi
            ));
        }
        Ok(())
    }

    /// Checks the constraints against the extremes of a whole population
    /// (every relay of the array must satisfy them simultaneously).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::LevelsViolateWindow`] naming the first
    /// violated constraint at the worst-case corner.
    pub fn validate_for_population(&self, stats: &PopulationStats) -> Result<(), CrossbarError> {
        // Worst cases: release risk at Vpo,max; accidental pull-in risk at
        // Vpi,min; guaranteed pull-in must clear Vpi,max.
        self.validate_against(stats.vpi_min, stats.vpo_max)?;
        if self.full_select_vgs() <= stats.vpi_max {
            return Err(CrossbarError::LevelsViolateWindow {
                constraint: format!(
                    "Vhold+2Vselect {} <= Vpi,max {} (weakest full select fails)",
                    self.full_select_vgs(),
                    stats.vpi_max
                ),
            });
        }
        Ok(())
    }

    /// The three noise margins annotated in Fig. 6, in order:
    /// `Vhold - Vpo,max`, `Vpi,min - (Vhold+Vselect)`,
    /// `(Vhold+2Vselect) - Vpi,max`. Negative margins mean violation.
    pub fn noise_margins(&self, stats: &PopulationStats) -> [Volts; 3] {
        [
            self.vhold - stats.vpo_max,
            stats.vpi_min - self.half_select_vgs(),
            self.full_select_vgs() - stats.vpi_max,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga_device::variation::VariationModel;

    #[test]
    fn paper_demo_levels_program_the_fabricated_device() {
        let levels = ProgrammingLevels::paper_demo();
        levels.validate_for(&NemRelayDevice::fabricated()).unwrap();
        // 5.2 + 2*0.8 = 6.8 > 6.2 = Vpi.
        assert!((levels.full_select_vgs().value() - 6.8).abs() < 1e-9);
    }

    #[test]
    fn level_arithmetic() {
        let levels = ProgrammingLevels::paper_demo();
        assert!((levels.gate_selected().value() - 6.0).abs() < 1e-9);
        assert!((levels.half_select_vgs().value() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn each_constraint_violation_is_reported() {
        let vpi = Volts::new(6.2);
        let vpo = Volts::new(3.0);
        let cases = [
            // Vhold below Vpo: hold releases.
            (ProgrammingLevels { vhold: Volts::new(2.0), vselect: Volts::new(1.0) }, "release"),
            // Vhold above Vpi: hold pulls in.
            (ProgrammingLevels { vhold: Volts::new(6.5), vselect: Volts::new(1.0) }, "pull in"),
            // Half-select crosses Vpi.
            (ProgrammingLevels { vhold: Volts::new(5.5), vselect: Volts::new(1.0) }, "half-select"),
            // Full select too weak.
            (ProgrammingLevels { vhold: Volts::new(5.0), vselect: Volts::new(0.5) }, "full select"),
            // Non-positive select.
            (ProgrammingLevels { vhold: Volts::new(5.0), vselect: Volts::zero() }, "positive"),
        ];
        for (levels, needle) in cases {
            let err = levels.validate_against(vpi, vpo).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "expected '{needle}' in '{msg}'");
        }
    }

    #[test]
    fn population_validation_uses_worst_corners() {
        let pop = VariationModel::fabrication_default().sample_population(
            &NemRelayDevice::fabricated(),
            100,
            11,
        );
        let stats = PopulationStats::of(&pop);
        // A window tuned to the nominal device alone may fail the spread;
        // the solver-produced one (tested in window.rs) must pass. Here we
        // check margins are consistent with validation.
        let levels = ProgrammingLevels {
            vhold: (stats.vpo_max + stats.vpi_min) / 2.0,
            vselect: (stats.vpi_max - stats.vpi_min) * 1.2
                + (stats.vpi_min - (stats.vpo_max + stats.vpi_min) / 2.0) / 2.0,
        };
        let margins = levels.noise_margins(&stats);
        let ok = levels.validate_for_population(&stats).is_ok();
        assert_eq!(ok, margins.iter().all(|m| m.value() > 0.0));
    }
}
