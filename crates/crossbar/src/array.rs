//! Relay crossbar arrays and target configurations.
//!
//! A crossbar of `rows × cols` relays connects `rows` source (beam) lines
//! to `cols` drain lines; the relay at `(r, c)` has its source on row line
//! `r`, its gate on gate line `c`, and its drain on drain line `c`
//! (the Fig. 5 arrangement). Gate lines select during programming; after
//! configuration the on-relays define which beams reach which drains.

use crate::error::CrossbarError;
use nemfpga_device::hysteresis::{Relay, RelayState};
use nemfpga_device::relay::NemRelayDevice;
use nemfpga_tech::units::Volts;
use serde::{Deserialize, Serialize};

/// A boolean target configuration for a crossbar: `true` = relay on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    rows: usize,
    cols: usize,
    bits: Vec<bool>,
}

impl Configuration {
    /// An all-off configuration.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn all_off(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "configuration must be non-empty");
        Self { rows, cols, bits: vec![false; rows * cols] }
    }

    /// Builds a configuration from a row-major bit slice.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::ShapeMismatch`] when `bits.len() != rows*cols`.
    pub fn from_bits(rows: usize, cols: usize, bits: &[bool]) -> Result<Self, CrossbarError> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::EmptyArray);
        }
        if bits.len() != rows * cols {
            return Err(CrossbarError::ShapeMismatch {
                config: (bits.len() / cols.max(1), cols),
                array: (rows, cols),
            });
        }
        Ok(Self { rows, cols, bits: bits.to_vec() })
    }

    /// Decodes configuration index `code` of an exhaustive enumeration
    /// (bit `r*cols + c` of `code` sets relay `(r, c)`). The paper verified
    /// "all configurations exhaustively" on the 2×2 crossbar — 16 of these.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols > 63` or `code >= 2^(rows*cols)`.
    pub fn from_code(rows: usize, cols: usize, code: u64) -> Self {
        let n = rows * cols;
        assert!(n > 0 && n <= 63, "exhaustive enumeration limited to 63 relays");
        assert!(code < (1u64 << n), "code {code} out of range for {n} relays");
        let bits = (0..n).map(|i| code & (1 << i) != 0).collect();
        Self { rows, cols, bits }
    }

    /// Number of source-line rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of gate/drain-line columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Target state of relay `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of bounds");
        self.bits[row * self.cols + col]
    }

    /// Sets the target state of relay `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, on: bool) {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of bounds");
        self.bits[row * self.cols + col] = on;
    }

    /// Number of relays meant to be on.
    pub fn on_count(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Iterates `(row, col, on)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, bool)> + '_ {
        self.bits.iter().enumerate().map(move |(i, &b)| (i / self.cols, i % self.cols, b))
    }
}

/// An array of stateful relays with shared programming lines.
///
/// # Examples
///
/// ```
/// use nemfpga_crossbar::array::CrossbarArray;
/// use nemfpga_device::relay::NemRelayDevice;
///
/// let xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated())?;
/// assert_eq!(xbar.rows(), 2);
/// assert!(xbar.all_pulled_out());
/// # Ok::<(), nemfpga_crossbar::error::CrossbarError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    relays: Vec<Relay>,
}

impl CrossbarArray {
    /// Builds an array of `rows × cols` identical relays.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EmptyArray`] for a degenerate shape.
    pub fn uniform(
        rows: usize,
        cols: usize,
        device: NemRelayDevice,
    ) -> Result<Self, CrossbarError> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::EmptyArray);
        }
        let relays = (0..rows * cols).map(|_| Relay::new(device.clone())).collect();
        Ok(Self { rows, cols, relays })
    }

    /// Builds an array from a varied device population (row-major order).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::EmptyArray`] for a degenerate shape and
    /// [`CrossbarError::PopulationTooSmall`] when `devices` has fewer than
    /// `rows * cols` entries.
    pub fn from_population(
        rows: usize,
        cols: usize,
        devices: &[NemRelayDevice],
    ) -> Result<Self, CrossbarError> {
        if rows == 0 || cols == 0 {
            return Err(CrossbarError::EmptyArray);
        }
        let required = rows * cols;
        if devices.len() < required {
            return Err(CrossbarError::PopulationTooSmall { required, supplied: devices.len() });
        }
        let relays = devices[..required].iter().cloned().map(Relay::new).collect();
        Ok(Self { rows, cols, relays })
    }

    /// Number of source-line rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of gate/drain-line columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The relay at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] outside the array.
    pub fn relay(&self, row: usize, col: usize) -> Result<&Relay, CrossbarError> {
        self.index(row, col).map(|i| &self.relays[i])
    }

    fn index(&self, row: usize, col: usize) -> Result<usize, CrossbarError> {
        if row >= self.rows || col >= self.cols {
            return Err(CrossbarError::OutOfBounds { row, col, rows: self.rows, cols: self.cols });
        }
        Ok(row * self.cols + col)
    }

    /// Applies per-line voltages: every relay `(r, c)` sees
    /// `V_GS = gate[c] - source[r]`. Line slices must match the shape.
    ///
    /// # Panics
    ///
    /// Panics if `source_lines.len() != rows` or `gate_lines.len() != cols`.
    pub fn apply_line_voltages(&mut self, source_lines: &[Volts], gate_lines: &[Volts]) {
        assert_eq!(source_lines.len(), self.rows, "one voltage per source line");
        assert_eq!(gate_lines.len(), self.cols, "one voltage per gate line");
        for (r, &vs) in source_lines.iter().enumerate() {
            for (c, &vg) in gate_lines.iter().enumerate() {
                self.relays[r * self.cols + c].apply_vgs(vg - vs);
            }
        }
    }

    /// Snapshot of the current on/off states as a [`Configuration`].
    pub fn state_configuration(&self) -> Configuration {
        let bits: Vec<bool> = self.relays.iter().map(Relay::is_on).collect();
        Configuration { rows: self.rows, cols: self.cols, bits }
    }

    /// `true` when every relay is pulled out.
    pub fn all_pulled_out(&self) -> bool {
        self.relays.iter().all(|r| r.state() == RelayState::PulledOut)
    }

    /// Source rows currently connected to drain column `col`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::OutOfBounds`] for an invalid column.
    pub fn connected_rows(&self, col: usize) -> Result<Vec<usize>, CrossbarError> {
        if col >= self.cols {
            return Err(CrossbarError::OutOfBounds {
                row: 0,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).filter(|&r| self.relays[r * self.cols + col].is_on()).collect())
    }

    /// Total switching cycles accumulated across the array (reliability
    /// accounting).
    pub fn total_switching_cycles(&self) -> u64 {
        self.relays.iter().map(Relay::switching_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_array() -> CrossbarArray {
        CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated()).unwrap()
    }

    #[test]
    fn configuration_round_trip() {
        let mut c = Configuration::all_off(2, 3);
        assert_eq!(c.on_count(), 0);
        c.set(1, 2, true);
        assert!(c.get(1, 2));
        assert_eq!(c.on_count(), 1);
        let collected: Vec<_> = c.iter().filter(|(_, _, on)| *on).collect();
        assert_eq!(collected, vec![(1, 2, true)]);
    }

    #[test]
    fn exhaustive_codes_cover_all_2x2_configs() {
        let all: Vec<Configuration> =
            (0..16).map(|code| Configuration::from_code(2, 2, code)).collect();
        // All distinct, covering on-counts 0..=4.
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
        assert_eq!(all.iter().map(Configuration::on_count).max(), Some(4));
        assert_eq!(all[0].on_count(), 0);
    }

    #[test]
    fn bad_shapes_rejected() {
        assert!(matches!(
            CrossbarArray::uniform(0, 2, NemRelayDevice::fabricated()),
            Err(CrossbarError::EmptyArray)
        ));
        assert!(matches!(
            Configuration::from_bits(2, 2, &[true; 3]),
            Err(CrossbarError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            CrossbarArray::from_population(2, 2, &[NemRelayDevice::fabricated()]),
            Err(CrossbarError::PopulationTooSmall { required: 4, supplied: 1 })
        ));
    }

    #[test]
    fn line_voltages_reach_the_right_relays() {
        let mut xbar = demo_array();
        let vpi = xbar.relay(0, 0).unwrap().device().pull_in_voltage();
        // Pull in only relay (1, 0): gate col 0 high, source row 1 negative.
        let boost = vpi * 0.6;
        xbar.apply_line_voltages(&[Volts::zero(), -boost], &[boost, Volts::zero()]);
        assert!(xbar.relay(1, 0).unwrap().is_on());
        assert!(!xbar.relay(0, 0).unwrap().is_on());
        assert!(!xbar.relay(1, 1).unwrap().is_on());
        assert_eq!(xbar.connected_rows(0).unwrap(), vec![1]);
        assert_eq!(xbar.connected_rows(1).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn out_of_bounds_queries_error() {
        let xbar = demo_array();
        assert!(xbar.relay(2, 0).is_err());
        assert!(xbar.connected_rows(5).is_err());
    }

    #[test]
    fn state_snapshot_matches_relays() {
        let mut xbar = demo_array();
        let vpi = xbar.relay(0, 0).unwrap().device().pull_in_voltage();
        xbar.apply_line_voltages(&[-(vpi * 0.6), Volts::zero()], &[vpi * 0.6, Volts::zero()]);
        let snap = xbar.state_configuration();
        assert!(snap.get(0, 0));
        assert_eq!(snap.on_count(), 1);
    }
}
