//! Fault injection for relay crossbars.
//!
//! The paper's reliability discussion (Sec. 2.3) worries about two failure
//! classes at the contact: **stiction** (a relay that cannot release —
//! stuck closed) and **contact degradation** up to an open circuit (stuck
//! open). This module injects both into arrays and quantifies whether the
//! paper's own program/test/reset sequence detects them — it does, which
//! is exactly why the paper runs a test phase after programming.

use crate::array::{Configuration, CrossbarArray};
use crate::error::CrossbarError;
use crate::levels::ProgrammingLevels;
use crate::program::program_unchecked;
use nemfpga_device::relay::NemRelayDevice;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A fault class injected into one relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Adhesion overwhelms the spring: the relay latches closed forever
    /// once actuated (and is modelled as already latched).
    StuckClosed,
    /// Contact degradation to an open: the relay never conducts. Modelled
    /// as a pull-in voltage far above any programming level.
    StuckOpen,
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// Source-line (row) coordinate.
    pub row: usize,
    /// Gate-line (column) coordinate.
    pub col: usize,
    /// Fault class.
    pub kind: FaultKind,
}

/// Builds a faulty device for injection.
fn faulty_device(base: &NemRelayDevice, kind: FaultKind) -> NemRelayDevice {
    let mut d = base.clone();
    match kind {
        FaultKind::StuckClosed => {
            // Stiction: adhesion far beyond the elastic restoring force.
            d.adhesion_per_width = 1e3;
        }
        FaultKind::StuckOpen => {
            // A stiffened beam whose Vpi no programming level reaches.
            d.material.stiffness_calibration *= 1e4;
        }
    }
    d
}

/// Builds an array of `rows × cols` relays from `base` with `faults`
/// injected at the given coordinates.
///
/// # Errors
///
/// Returns [`CrossbarError::OutOfBounds`] for a fault outside the array,
/// and shape errors from array construction.
pub fn build_faulty_array(
    rows: usize,
    cols: usize,
    base: &NemRelayDevice,
    faults: &[Fault],
) -> Result<CrossbarArray, CrossbarError> {
    for f in faults {
        if f.row >= rows || f.col >= cols {
            return Err(CrossbarError::OutOfBounds { row: f.row, col: f.col, rows, cols });
        }
    }
    let mut devices = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let fault = faults.iter().find(|f| f.row == r && f.col == c);
            devices.push(match fault {
                Some(f) => faulty_device(base, f.kind),
                None => base.clone(),
            });
        }
    }
    let mut array = CrossbarArray::from_population(rows, cols, &devices)?;
    // Stuck-closed relays sit latched from the start: actuate them once.
    for f in faults.iter().filter(|f| f.kind == FaultKind::StuckClosed) {
        let vpi = array.relay(f.row, f.col).expect("in bounds").device().pull_in_voltage();
        let mut sources = vec![nemfpga_tech::units::Volts::zero(); rows];
        let mut gates = vec![nemfpga_tech::units::Volts::zero(); cols];
        sources[f.row] = -(vpi * 0.6);
        gates[f.col] = vpi * 0.6;
        array.apply_line_voltages(&sources, &gates);
    }
    Ok(array)
}

/// Result of one fault-detection experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Faults injected.
    pub injected: Vec<Fault>,
    /// Whether the programming+verification sequence flagged an error.
    pub detected: bool,
    /// Relays whose final state mismatched the target (empty when the
    /// fault is silent for this particular target pattern).
    pub mismatches: Vec<(usize, usize)>,
}

/// Programs a faulty array toward `target` and reports whether the paper's
/// verify-after-program discipline catches the faults.
///
/// A fault is only *observable* if the target exercises it (a stuck-open
/// relay that should stay off is silent), so detection is target-dependent
/// — exactly why the paper verifies every configuration exhaustively.
///
/// # Errors
///
/// Propagates construction errors; programming mismatches are converted
/// into the report rather than an error.
pub fn detect_faults(
    rows: usize,
    cols: usize,
    base: &NemRelayDevice,
    faults: &[Fault],
    target: &Configuration,
    levels: &ProgrammingLevels,
) -> Result<DetectionReport, CrossbarError> {
    let mut array = build_faulty_array(rows, cols, base, faults)?;
    match program_unchecked(&mut array, target, levels) {
        Ok(_) => Ok(DetectionReport {
            injected: faults.to_vec(),
            detected: false,
            mismatches: Vec::new(),
        }),
        Err(CrossbarError::ProgrammingMismatch { mismatches }) => {
            Ok(DetectionReport { injected: faults.to_vec(), detected: true, mismatches })
        }
        Err(e) => Err(e),
    }
}

/// Monte Carlo fault-coverage estimate: injects one random fault at a time
/// and measures how often random target patterns expose it.
///
/// Returns `(stuck_closed_coverage, stuck_open_coverage)` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `trials` is zero or the array is degenerate.
pub fn coverage_estimate(
    rows: usize,
    cols: usize,
    base: &NemRelayDevice,
    levels: &ProgrammingLevels,
    trials: usize,
    seed: u64,
) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(rows > 0 && cols > 0, "array must be non-degenerate");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let coords: Vec<(usize, usize)> =
        (0..rows).flat_map(|r| (0..cols).map(move |c| (r, c))).collect();
    let mut detected = [0usize; 2];
    for t in 0..trials {
        let &(row, col) = coords.choose(&mut rng).expect("non-empty");
        let target = Configuration::from_code(
            rows,
            cols,
            (t as u64).wrapping_mul(0x9E37_79B9) & ((1u64 << (rows * cols).min(63)) - 1),
        );
        for (i, kind) in [FaultKind::StuckClosed, FaultKind::StuckOpen].into_iter().enumerate() {
            let report =
                detect_faults(rows, cols, base, &[Fault { row, col, kind }], &target, levels)
                    .expect("experiment runs");
            if report.detected {
                detected[i] += 1;
            }
        }
    }
    (detected[0] as f64 / trials as f64, detected[1] as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NemRelayDevice {
        NemRelayDevice::fabricated()
    }

    #[test]
    fn stuck_open_detected_when_target_needs_it_on() {
        let mut target = Configuration::all_off(2, 2);
        target.set(0, 1, true);
        let report = detect_faults(
            2,
            2,
            &base(),
            &[Fault { row: 0, col: 1, kind: FaultKind::StuckOpen }],
            &target,
            &ProgrammingLevels::paper_demo(),
        )
        .expect("runs");
        assert!(report.detected);
        assert!(report.mismatches.contains(&(0, 1)));
    }

    #[test]
    fn stuck_open_is_silent_when_target_leaves_it_off() {
        // The fault exists but this configuration never exercises it.
        let mut target = Configuration::all_off(2, 2);
        target.set(1, 0, true);
        let report = detect_faults(
            2,
            2,
            &base(),
            &[Fault { row: 0, col: 1, kind: FaultKind::StuckOpen }],
            &target,
            &ProgrammingLevels::paper_demo(),
        )
        .expect("runs");
        assert!(!report.detected);
    }

    #[test]
    fn stuck_closed_detected_when_target_wants_it_off() {
        let target = Configuration::all_off(2, 2);
        let report = detect_faults(
            2,
            2,
            &base(),
            &[Fault { row: 1, col: 1, kind: FaultKind::StuckClosed }],
            &target,
            &ProgrammingLevels::paper_demo(),
        )
        .expect("runs");
        assert!(report.detected);
        assert!(report.mismatches.contains(&(1, 1)));
    }

    #[test]
    fn fault_free_array_never_reports() {
        let target = Configuration::from_code(3, 3, 0b101_010_101);
        let report = detect_faults(3, 3, &base(), &[], &target, &ProgrammingLevels::paper_demo())
            .expect("runs");
        assert!(!report.detected);
    }

    #[test]
    fn coverage_is_substantial_for_random_patterns() {
        let (closed, open) =
            coverage_estimate(3, 3, &base(), &ProgrammingLevels::paper_demo(), 40, 11);
        // A random pattern exercises any given relay about half the time.
        assert!(closed > 0.3, "stuck-closed coverage {closed}");
        assert!(open > 0.3, "stuck-open coverage {open}");
        assert!(closed <= 1.0 && open <= 1.0);
    }

    #[test]
    fn out_of_bounds_fault_rejected() {
        let err = build_faulty_array(
            2,
            2,
            &base(),
            &[Fault { row: 5, col: 0, kind: FaultKind::StuckOpen }],
        );
        assert!(matches!(err, Err(CrossbarError::OutOfBounds { .. })));
    }
}
