//! Array-scale programmability yield.
//!
//! "Today's FPGAs typically contain millions of configurable routing
//! switches. As a result, large variations can make it impossible to
//! correctly configure all NEM relays" (Sec. 2.3). This module quantifies
//! that: the probability that one relay drawn from the variation model
//! complies with a fixed set of programming levels, and the yield of an
//! `n`-relay array that needs *all* of them to comply.

use crate::levels::ProgrammingLevels;
use nemfpga_device::relay::NemRelayDevice;
use nemfpga_device::variation::VariationModel;
use nemfpga_runtime::{parallel_map_cfg, ParallelConfig};
use serde::{Deserialize, Serialize};

/// Result of a Monte Carlo compliance estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplianceEstimate {
    /// Fraction of sampled relays satisfying every half-select constraint.
    pub compliance: f64,
    /// Number of Monte Carlo samples used.
    pub samples: usize,
}

impl ComplianceEstimate {
    /// Yield of an array of `relays` relays: `compliance^relays`.
    ///
    /// Computed in log space so million-relay arrays do not underflow.
    pub fn array_yield(&self, relays: u64) -> f64 {
        if self.compliance <= 0.0 {
            return if relays == 0 { 1.0 } else { 0.0 };
        }
        (relays as f64 * self.compliance.ln()).exp()
    }
}

/// Estimates per-relay compliance with `levels` by sampling `samples`
/// devices around `nominal` from `variation`.
///
/// # Panics
///
/// Panics if `samples` is zero.
///
/// # Examples
///
/// ```
/// use nemfpga_crossbar::levels::ProgrammingLevels;
/// use nemfpga_crossbar::yield_analysis::estimate_compliance;
/// use nemfpga_device::relay::NemRelayDevice;
/// use nemfpga_device::variation::VariationModel;
///
/// let est = estimate_compliance(
///     &NemRelayDevice::fabricated(),
///     &VariationModel::fabrication_default(),
///     &ProgrammingLevels::paper_demo(),
///     2000,
///     42,
/// );
/// assert!(est.compliance > 0.5); // demo levels work for most relays
/// ```
pub fn estimate_compliance(
    nominal: &NemRelayDevice,
    variation: &VariationModel,
    levels: &ProgrammingLevels,
    samples: usize,
    seed: u64,
) -> ComplianceEstimate {
    estimate_compliance_with(nominal, variation, levels, samples, seed, &ParallelConfig::serial())
}

/// [`estimate_compliance`] fanned out across threads.
///
/// Each sample is drawn from its own `(seed, index)` ChaCha stream and
/// validated independently, so the estimate is byte-identical for any
/// `parallel.threads` (including the serial entry point above).
pub fn estimate_compliance_with(
    nominal: &NemRelayDevice,
    variation: &VariationModel,
    levels: &ProgrammingLevels,
    samples: usize,
    seed: u64,
    parallel: &ParallelConfig,
) -> ComplianceEstimate {
    assert!(samples > 0, "compliance estimate needs at least one sample");
    let ok = parallel_map_cfg(parallel, samples, |i| {
        let device = variation.sample_indexed(nominal, seed, i as u64);
        levels.validate_for(&device).is_ok()
    })
    .into_iter()
    .filter(|&pass| pass)
    .count();
    ComplianceEstimate { compliance: ok as f64 / samples as f64, samples }
}

/// One row of a yield-vs-array-size curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YieldPoint {
    /// Relays in the array.
    pub relays: u64,
    /// Probability every relay complies.
    pub array_yield: f64,
}

/// Sweeps array sizes for a fixed compliance estimate.
pub fn yield_curve(estimate: &ComplianceEstimate, sizes: &[u64]) -> Vec<YieldPoint> {
    sizes
        .iter()
        .map(|&relays| YieldPoint { relays, array_yield: estimate.array_yield(relays) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::solve_window;
    use nemfpga_device::variation::PopulationStats;

    #[test]
    fn yield_decays_with_array_size() {
        let est = ComplianceEstimate { compliance: 0.999, samples: 1000 };
        let curve = yield_curve(&est, &[4, 1_000, 1_000_000]);
        assert!(curve[0].array_yield > curve[1].array_yield);
        assert!(curve[1].array_yield > curve[2].array_yield);
        // A million relays at 3-nines compliance is essentially dead --
        // the paper's point about needing tight Vpi control at scale.
        assert!(curve[2].array_yield < 1e-100);
    }

    #[test]
    fn perfect_compliance_yields_one() {
        let est = ComplianceEstimate { compliance: 1.0, samples: 10 };
        assert_eq!(est.array_yield(1_000_000), 1.0);
    }

    #[test]
    fn zero_compliance_yields_zero_except_empty_array() {
        let est = ComplianceEstimate { compliance: 0.0, samples: 10 };
        assert_eq!(est.array_yield(1), 0.0);
        assert_eq!(est.array_yield(0), 1.0);
    }

    #[test]
    fn tightened_process_improves_compliance() {
        let nominal = NemRelayDevice::fabricated();
        // Solve levels on a representative population, then compare
        // compliance under the as-is vs tightened process.
        let pop = VariationModel::fabrication_default().sample_population(&nominal, 400, 3);
        let solved = solve_window(&PopulationStats::of(&pop)).unwrap();
        let loose = estimate_compliance(
            &nominal,
            &VariationModel::fabrication_default(),
            &solved.levels,
            2000,
            4,
        );
        let tight = estimate_compliance(
            &nominal,
            &VariationModel::tightened(0.25),
            &solved.levels,
            2000,
            4,
        );
        assert!(tight.compliance >= loose.compliance);
        assert!(tight.compliance > 0.99, "tight compliance {}", tight.compliance);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let nominal = NemRelayDevice::fabricated();
        let v = VariationModel::fabrication_default();
        let l = ProgrammingLevels::paper_demo();
        let a = estimate_compliance(&nominal, &v, &l, 500, 9);
        let b = estimate_compliance(&nominal, &v, &l, 500, 9);
        assert_eq!(a, b);
    }
}
