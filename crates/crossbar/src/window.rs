//! Programming-window solver: find `(Vhold, Vselect)` for a measured relay
//! population (the Fig. 6 exercise).
//!
//! The paper measured `Vpi`/`Vpo` for 100 relays and showed that "the
//! required half-select programming voltage levels ... could still be
//! identified". Given population extremes, the feasible region is
//!
//! ```text
//! Vselect ∈ ( Vpi,max - Vpi,min ,  Vpi,min - Vpo,max )
//! Vhold   ∈ ( max(Vpo,max, Vpi,max - 2·Vselect) ,  Vpi,min - Vselect )
//! ```
//!
//! and the solver returns the levels that maximize the smallest of the
//! three noise margins annotated in Fig. 6.

use crate::error::CrossbarError;
use crate::levels::ProgrammingLevels;
use nemfpga_device::variation::PopulationStats;
use nemfpga_tech::units::Volts;
use serde::{Deserialize, Serialize};

/// A solved programming window with its margins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolvedWindow {
    /// The chosen levels.
    pub levels: ProgrammingLevels,
    /// The three Fig. 6 noise margins at these levels
    /// (`Vhold - Vpo,max`, `Vpi,min - (Vhold+Vselect)`,
    /// `(Vhold+2Vselect) - Vpi,max`).
    pub margins: [Volts; 3],
    /// The smallest of the three margins (the solver's objective).
    pub worst_margin: Volts,
}

/// Solves for the max-min-margin programming levels of a population.
///
/// # Errors
///
/// Returns [`CrossbarError::InfeasibleWindow`] when no levels can satisfy
/// every relay — i.e. when the pull-in spread `Vpi,max - Vpi,min` is not
/// smaller than the usable span `Vpi,min - Vpo,max` (the quantitative form
/// of the paper's "large variations can make it impossible to correctly
/// configure all NEM relays").
///
/// # Examples
///
/// ```
/// use nemfpga_crossbar::window::solve_window;
/// use nemfpga_device::relay::NemRelayDevice;
/// use nemfpga_device::variation::{PopulationStats, VariationModel};
///
/// let pop = VariationModel::fabrication_default()
///     .sample_population(&NemRelayDevice::fabricated(), 100, 42);
/// let solved = solve_window(&PopulationStats::of(&pop))?;
/// assert!(solved.worst_margin.value() > 0.0);
/// # Ok::<(), nemfpga_crossbar::error::CrossbarError>(())
/// ```
pub fn solve_window(stats: &PopulationStats) -> Result<SolvedWindow, CrossbarError> {
    let usable_span = stats.vpi_min - stats.vpo_max;
    let vpi_spread = stats.vpi_max - stats.vpi_min;
    // Equal-margin optimum: all three margins equal m*.
    let m = (stats.vpi_min * 2.0 - stats.vpo_max - stats.vpi_max) / 4.0;
    if m.value() <= 0.0 {
        return Err(CrossbarError::InfeasibleWindow {
            usable_span: usable_span.value(),
            vpi_spread: vpi_spread.value(),
        });
    }
    let vhold = stats.vpo_max + m;
    let vselect = stats.vpi_min - stats.vpo_max - m * 2.0;
    let levels = ProgrammingLevels { vhold, vselect };
    levels.validate_for_population(stats)?;
    let margins = levels.noise_margins(stats);
    let worst_margin = margins.iter().copied().fold(Volts::new(f64::INFINITY), Volts::min);
    Ok(SolvedWindow { levels, margins, worst_margin })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga_device::relay::NemRelayDevice;
    use nemfpga_device::variation::VariationModel;

    fn stats(seed: u64) -> PopulationStats {
        let pop = VariationModel::fabrication_default().sample_population(
            &NemRelayDevice::fabricated(),
            100,
            seed,
        );
        PopulationStats::of(&pop)
    }

    #[test]
    fn solver_finds_levels_for_fig6_population() {
        let s = stats(42);
        let solved = solve_window(&s).unwrap();
        // The solution is valid and its margins are all positive.
        solved.levels.validate_for_population(&s).unwrap();
        assert!(solved.margins.iter().all(|m| m.value() > 0.0));
        // Levels land in the paper's neighbourhood (volts, not millivolts).
        assert!(solved.levels.vhold.value() > 3.0 && solved.levels.vhold.value() < 6.2);
        assert!(solved.levels.vselect.value() > 0.1 && solved.levels.vselect.value() < 2.0);
    }

    #[test]
    fn optimum_equalizes_the_three_margins() {
        let s = stats(7);
        let solved = solve_window(&s).unwrap();
        let [a, b, c] = solved.margins;
        assert!((a.value() - b.value()).abs() < 1e-9);
        assert!((b.value() - c.value()).abs() < 1e-9);
        assert_eq!(solved.worst_margin, a.min(b).min(c));
    }

    #[test]
    fn no_perturbation_beats_the_optimum() {
        let s = stats(13);
        let solved = solve_window(&s).unwrap();
        let worst = |levels: ProgrammingLevels| {
            levels.noise_margins(&s).iter().copied().fold(Volts::new(f64::INFINITY), Volts::min)
        };
        for (dh, ds) in [(0.05, 0.0), (-0.05, 0.0), (0.0, 0.05), (0.0, -0.05)] {
            let perturbed = ProgrammingLevels {
                vhold: solved.levels.vhold + Volts::new(dh),
                vselect: solved.levels.vselect + Volts::new(ds),
            };
            assert!(worst(perturbed) <= solved.worst_margin + Volts::new(1e-9));
        }
    }

    #[test]
    fn wide_vpi_spread_is_infeasible() {
        // Construct a pathological population: Vpi spread exceeding the
        // usable span makes programming impossible.
        let s = PopulationStats {
            count: 2,
            vpi_min: Volts::new(5.0),
            vpi_max: Volts::new(7.5),
            vpi_mean: Volts::new(6.2),
            vpo_min: Volts::new(2.0),
            vpo_max: Volts::new(3.4),
            vpo_mean: Volts::new(2.7),
            min_window: Volts::new(1.0),
        };
        assert!(matches!(solve_window(&s), Err(CrossbarError::InfeasibleWindow { .. })));
    }

    #[test]
    fn solved_levels_program_a_population_array() {
        use crate::array::{Configuration, CrossbarArray};
        use crate::program::program;
        let pop = VariationModel::fabrication_default().sample_population(
            &NemRelayDevice::fabricated(),
            100,
            42,
        );
        let solved = solve_window(&PopulationStats::of(&pop)).unwrap();
        // Organize the 100 measured relays as a 10x10 array, as the paper
        // hypothesizes ("if they were organized in an array").
        let mut xbar = CrossbarArray::from_population(10, 10, &pop).unwrap();
        let mut target = Configuration::all_off(10, 10);
        for i in 0..10 {
            target.set(i, (i * 3) % 10, true);
        }
        program(&mut xbar, &target, &solved.levels).unwrap();
        assert_eq!(xbar.state_configuration(), target);
    }
}
