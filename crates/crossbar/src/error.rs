//! Error types for crossbar construction and programming.

use std::fmt;

/// Errors produced while building or programming a relay crossbar.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossbarError {
    /// The requested array shape was degenerate.
    EmptyArray,
    /// A relay population did not contain enough devices for the shape.
    PopulationTooSmall {
        /// Devices required (`rows * cols`).
        required: usize,
        /// Devices supplied.
        supplied: usize,
    },
    /// A coordinate was outside the array.
    OutOfBounds {
        /// Requested source-line (row) index.
        row: usize,
        /// Requested gate-line (column) index.
        col: usize,
        /// Array rows.
        rows: usize,
        /// Array columns.
        cols: usize,
    },
    /// A configuration's shape did not match the array's.
    ShapeMismatch {
        /// Configuration rows × cols.
        config: (usize, usize),
        /// Array rows × cols.
        array: (usize, usize),
    },
    /// The programming levels violate the half-select constraints for at
    /// least one relay in the array.
    LevelsViolateWindow {
        /// Human-readable description of the first violated constraint.
        constraint: String,
    },
    /// No feasible (Vhold, Vselect) pair exists for the given population.
    InfeasibleWindow {
        /// `Vpi,min - Vpo,max` of the population in volts.
        usable_span: f64,
        /// `Vpi,max - Vpi,min` of the population in volts.
        vpi_spread: f64,
    },
    /// Programming completed but the array state does not match the target.
    ProgrammingMismatch {
        /// Coordinates of relays whose final state is wrong.
        mismatches: Vec<(usize, usize)>,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyArray => write!(f, "crossbar must have at least one row and one column"),
            Self::PopulationTooSmall { required, supplied } => write!(
                f,
                "population of {supplied} devices cannot fill a crossbar needing {required}"
            ),
            Self::OutOfBounds { row, col, rows, cols } => {
                write!(f, "relay ({row}, {col}) outside {rows}x{cols} crossbar")
            }
            Self::ShapeMismatch { config, array } => write!(
                f,
                "configuration is {}x{} but crossbar is {}x{}",
                config.0, config.1, array.0, array.1
            ),
            Self::LevelsViolateWindow { constraint } => {
                write!(f, "programming levels violate half-select constraint: {constraint}")
            }
            Self::InfeasibleWindow { usable_span, vpi_spread } => write!(
                f,
                "no feasible programming window: Vpi spread {vpi_spread} V exceeds usable span {usable_span} V"
            ),
            Self::ProgrammingMismatch { mismatches } => {
                write!(f, "{} relay(s) ended in the wrong state after programming", mismatches.len())
            }
        }
    }
}

impl std::error::Error for CrossbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CrossbarError::OutOfBounds { row: 5, col: 1, rows: 2, cols: 2 };
        assert!(e.to_string().contains("(5, 1)"));
        let e = CrossbarError::InfeasibleWindow { usable_span: 0.2, vpi_spread: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CrossbarError>();
    }
}
