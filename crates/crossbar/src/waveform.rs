//! Three-phase (program / test / reset) waveform simulation of a relay
//! crossbar — the software twin of the oscilloscope traces in Fig. 5.
//!
//! * **Program**: the half-select sequence drives the gate and beam lines;
//!   each step is recorded.
//! * **Test**: two anti-phase (180°-shifted) pulse trains are applied to
//!   the beams while the gates hold at `Vhold`; the drain lines reproduce
//!   the pulses of whichever beams are connected through pulled-in relays.
//! * **Reset**: the gate lines drop to 0 V and the drain signals vanish,
//!   confirming the relays released.

use crate::array::{Configuration, CrossbarArray};
use crate::error::CrossbarError;
use crate::levels::ProgrammingLevels;
use crate::program::program;
use nemfpga_tech::units::{Seconds, Volts};
use serde::{Deserialize, Serialize};

/// Which phase a trace point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Half-select programming steps.
    Program,
    /// Anti-phase test pulses.
    Test,
    /// Gate grounding and release.
    Reset,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Phase::Program => "program",
            Phase::Test => "test",
            Phase::Reset => "reset",
        })
    }
}

/// Sampling parameters of the simulated measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveformConfig {
    /// Dwell time of each recorded step.
    pub step_time: Seconds,
    /// Full pulse periods applied to each beam during the test phase.
    pub test_periods: usize,
    /// Test pulse amplitude (Fig. 5 uses ±0.3 V pulses).
    pub pulse_amplitude: Volts,
    /// Samples recorded in the reset phase.
    pub reset_samples: usize,
}

impl WaveformConfig {
    /// The Fig. 5 setup: seconds-scale steps, ±0.3 V anti-phase pulses.
    pub fn paper_fig5() -> Self {
        Self {
            step_time: Seconds::new(1.0),
            test_periods: 3,
            pulse_amplitude: Volts::new(0.3),
            reset_samples: 4,
        }
    }
}

impl Default for WaveformConfig {
    fn default() -> Self {
        Self::paper_fig5()
    }
}

/// One sample of every line voltage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Sample time from the start of the sequence.
    pub time: Seconds,
    /// Phase this sample belongs to.
    pub phase: Phase,
    /// Beam (source) line voltages.
    pub beams: Vec<Volts>,
    /// Gate line voltages.
    pub gates: Vec<Volts>,
    /// Observed drain line voltages.
    pub drains: Vec<Volts>,
}

/// A complete program/test/reset trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    /// Samples in time order.
    pub points: Vec<TracePoint>,
    /// The configuration that was programmed.
    pub target: Configuration,
}

impl Waveform {
    /// Samples belonging to `phase`.
    pub fn phase_points(&self, phase: Phase) -> impl Iterator<Item = &TracePoint> {
        self.points.iter().filter(move |p| p.phase == phase)
    }

    /// Checks the test-phase drains against the programmed connectivity:
    /// each drain must reproduce the superposition of its connected beams,
    /// and every reset-phase drain must be quiet. This is the "objective of
    /// the test phase ... to verify correct configuration" from Sec. 2.3.
    pub fn verify(&self) -> bool {
        let tol = 1e-9;
        for p in self.phase_points(Phase::Test) {
            for c in 0..self.target.cols() {
                let connected: Vec<usize> =
                    (0..self.target.rows()).filter(|&r| self.target.get(r, c)).collect();
                let expected = if connected.is_empty() {
                    Volts::zero()
                } else {
                    let sum: Volts = connected.iter().map(|&r| p.beams[r]).sum();
                    sum / connected.len() as f64
                };
                if (p.drains[c] - expected).abs().value() > tol {
                    return false;
                }
            }
        }
        self.phase_points(Phase::Reset).all(|p| p.drains.iter().all(|d| d.abs().value() < tol))
    }
}

/// Observed drain voltages given the array state and beam drive: a drain
/// follows the (shorted) average of the beams connected to it, or rests at
/// 0 V when floating.
fn observe_drains(array: &CrossbarArray, beams: &[Volts]) -> Vec<Volts> {
    (0..array.cols())
        .map(|c| {
            let rows = array.connected_rows(c).expect("in-bounds column");
            if rows.is_empty() {
                Volts::zero()
            } else {
                let sum: Volts = rows.iter().map(|&r| beams[r]).sum();
                sum / rows.len() as f64
            }
        })
        .collect()
}

/// Runs the full three-phase demonstration on `array`, programming it to
/// `target` and recording every line voltage.
///
/// # Errors
///
/// Propagates any [`CrossbarError`] from the programming sequence.
///
/// # Examples
///
/// ```
/// use nemfpga_crossbar::array::{Configuration, CrossbarArray};
/// use nemfpga_crossbar::levels::ProgrammingLevels;
/// use nemfpga_crossbar::waveform::{run_demo, WaveformConfig};
/// use nemfpga_device::relay::NemRelayDevice;
///
/// let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated())?;
/// let target = Configuration::from_code(2, 2, 0b1001); // Fig. 5b-style
/// let wave = run_demo(
///     &mut xbar,
///     &target,
///     &ProgrammingLevels::paper_demo(),
///     &WaveformConfig::paper_fig5(),
/// )?;
/// assert!(wave.verify());
/// # Ok::<(), nemfpga_crossbar::error::CrossbarError>(())
/// ```
pub fn run_demo(
    array: &mut CrossbarArray,
    target: &Configuration,
    levels: &ProgrammingLevels,
    config: &WaveformConfig,
) -> Result<Waveform, CrossbarError> {
    let mut points = Vec::new();
    let mut t = Seconds::zero();
    let dt = config.step_time;

    // --- Program phase ---
    let log = program(array, target, levels)?;
    for step in &log.steps {
        points.push(TracePoint {
            time: t,
            phase: Phase::Program,
            beams: step.source_lines.clone(),
            gates: step.gate_lines.clone(),
            drains: observe_drains(array, &step.source_lines),
        });
        t += dt;
    }

    // --- Test phase: anti-phase pulses on the beams, gates at Vhold ---
    let hold_gates = vec![levels.vhold; array.cols()];
    let amp = config.pulse_amplitude;
    for period in 0..config.test_periods {
        for half in 0..2 {
            let phase0 = if half == 0 { amp } else { -amp };
            let beams: Vec<Volts> =
                (0..array.rows()).map(|r| if r % 2 == 0 { phase0 } else { -phase0 }).collect();
            array.apply_line_voltages(&beams, &hold_gates);
            points.push(TracePoint {
                time: t,
                phase: Phase::Test,
                beams: beams.clone(),
                gates: hold_gates.clone(),
                drains: observe_drains(array, &beams),
            });
            t += dt;
            let _ = period;
        }
    }

    // --- Reset phase: gates grounded; beams keep pulsing to show drains die ---
    let ground_gates = vec![Volts::zero(); array.cols()];
    for sample in 0..config.reset_samples {
        let phase0 = if sample % 2 == 0 { amp } else { -amp };
        let beams: Vec<Volts> =
            (0..array.rows()).map(|r| if r % 2 == 0 { phase0 } else { -phase0 }).collect();
        array.apply_line_voltages(&beams, &ground_gates);
        points.push(TracePoint {
            time: t,
            phase: Phase::Reset,
            beams: beams.clone(),
            gates: ground_gates.clone(),
            drains: observe_drains(array, &beams),
        });
        t += dt;
    }

    Ok(Waveform { points, target: target.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga_device::relay::NemRelayDevice;

    fn demo(code: u64) -> Waveform {
        let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated()).unwrap();
        run_demo(
            &mut xbar,
            &Configuration::from_code(2, 2, code),
            &ProgrammingLevels::paper_demo(),
            &WaveformConfig::paper_fig5(),
        )
        .unwrap()
    }

    #[test]
    fn fig5b_style_diagonal_configuration_verifies() {
        // Relays (0,0) and (1,1) closed: drain0 follows beam0, drain1
        // follows beam1 (anti-phase).
        let wave = demo(0b1001);
        assert!(wave.verify());
        let test_pt = wave.phase_points(Phase::Test).next().unwrap();
        assert_eq!(test_pt.drains[0], test_pt.beams[0]);
        assert_eq!(test_pt.drains[1], test_pt.beams[1]);
        assert!((test_pt.drains[0] + test_pt.drains[1]).abs().value() < 1e-12);
    }

    #[test]
    fn fig5c_style_cross_configuration_verifies() {
        // Relays (1,0) and (0,1) closed: drains swap the beams.
        let wave = demo(0b0110);
        assert!(wave.verify());
        let test_pt = wave.phase_points(Phase::Test).next().unwrap();
        assert_eq!(test_pt.drains[0], test_pt.beams[1]);
        assert_eq!(test_pt.drains[1], test_pt.beams[0]);
    }

    #[test]
    fn all_sixteen_configurations_verify() {
        for code in 0..16 {
            assert!(demo(code).verify(), "config {code}");
        }
    }

    #[test]
    fn open_drains_are_quiet_during_test() {
        let wave = demo(0b0001); // only (0,0) closed; drain 1 floats
        for p in wave.phase_points(Phase::Test) {
            assert_eq!(p.drains[1], Volts::zero());
        }
    }

    #[test]
    fn reset_phase_silences_all_drains() {
        let wave = demo(0b1111);
        let reset_points: Vec<_> = wave.phase_points(Phase::Reset).collect();
        assert!(!reset_points.is_empty());
        for p in reset_points {
            for d in &p.drains {
                assert_eq!(*d, Volts::zero());
            }
            // Beams are still pulsing -- the silence is from released relays.
            assert!(p.beams.iter().any(|b| b.abs().value() > 0.0));
        }
    }

    #[test]
    fn test_pulses_do_not_disturb_programmed_state() {
        // The small ±0.3 V swing rides on Vhold and stays inside the
        // hysteresis window; the target must persist through the test.
        let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated()).unwrap();
        let target = Configuration::from_code(2, 2, 0b1010);
        let cfg = WaveformConfig { test_periods: 10, ..WaveformConfig::paper_fig5() };
        // Run program + test phases; check state right before reset.
        let wave = run_demo(&mut xbar, &target, &ProgrammingLevels::paper_demo(), &cfg).unwrap();
        assert!(wave.verify());
    }

    #[test]
    fn timeline_is_monotonic_and_phased() {
        let wave = demo(0b1001);
        assert!(wave.points.windows(2).all(|w| w[0].time < w[1].time));
        let phases: Vec<Phase> = wave.points.iter().map(|p| p.phase).collect();
        // Program first, then test, then reset, with no interleaving.
        let first_test = phases.iter().position(|p| *p == Phase::Test).unwrap();
        let first_reset = phases.iter().position(|p| *p == Phase::Reset).unwrap();
        assert!(first_test < first_reset);
        assert!(phases[..first_test].iter().all(|p| *p == Phase::Program));
        assert!(phases[first_test..first_reset].iter().all(|p| *p == Phase::Test));
        assert!(phases[first_reset..].iter().all(|p| *p == Phase::Reset));
    }
}
