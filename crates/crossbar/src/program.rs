//! The half-select programming controller (Sec. 2.2).
//!
//! Programming proceeds column-by-column: the selected gate line is raised
//! to `Vhold + Vselect`, source lines of relays that must pull in drop to
//! `-Vselect` (their relays see `Vhold + 2Vselect > Vpi`), every other
//! relay sees `Vhold` or `Vhold + Vselect` — both inside the hysteresis
//! window — and therefore retains its state. Afterwards all gate lines sit
//! at `Vhold` to hold the programmed pattern indefinitely.

use crate::array::{Configuration, CrossbarArray};
use crate::error::CrossbarError;
use crate::levels::ProgrammingLevels;
use nemfpga_tech::units::Volts;
use serde::{Deserialize, Serialize};

/// One applied step of line voltages, for waveform reconstruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramStep {
    /// Human-readable label (`"reset"`, `"select column 1"`, `"hold"`).
    pub label: String,
    /// Voltage per source (beam) line.
    pub source_lines: Vec<Volts>,
    /// Voltage per gate line.
    pub gate_lines: Vec<Volts>,
}

/// Record of a full programming sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramLog {
    /// Steps in application order.
    pub steps: Vec<ProgramStep>,
    /// Total relay switching events caused by this sequence.
    pub switching_events: u64,
}

/// Programs `array` to `target` using `levels`, verifying the result.
///
/// The sequence is: global reset (all lines grounded, releasing every
/// relay), one select step per gate column, then the hold step. The
/// array's final state is compared against `target` relay by relay.
///
/// # Errors
///
/// * [`CrossbarError::ShapeMismatch`] if `target` has the wrong shape.
/// * [`CrossbarError::LevelsViolateWindow`] if `levels` fail the
///   half-select constraints for any relay in the array (checked before
///   any voltage is applied).
/// * [`CrossbarError::ProgrammingMismatch`] listing relays whose final
///   state differs from `target` (possible with out-of-window device
///   variation or stuck relays).
///
/// # Examples
///
/// ```
/// use nemfpga_crossbar::array::{Configuration, CrossbarArray};
/// use nemfpga_crossbar::levels::ProgrammingLevels;
/// use nemfpga_crossbar::program::program;
/// use nemfpga_device::relay::NemRelayDevice;
///
/// let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated())?;
/// let mut target = Configuration::all_off(2, 2);
/// target.set(0, 1, true);
/// program(&mut xbar, &target, &ProgrammingLevels::paper_demo())?;
/// assert_eq!(xbar.state_configuration(), target);
/// # Ok::<(), nemfpga_crossbar::error::CrossbarError>(())
/// ```
pub fn program(
    array: &mut CrossbarArray,
    target: &Configuration,
    levels: &ProgrammingLevels,
) -> Result<ProgramLog, CrossbarError> {
    // Pre-flight: the levels must respect every relay's *modelled* window.
    for r in 0..array.rows() {
        for c in 0..array.cols() {
            let relay = array.relay(r, c).expect("in-bounds by construction");
            levels.validate_for(relay.device())?;
        }
    }
    program_unchecked(array, target, levels)
}

/// Programs `array` like [`program`] but without the model-level window
/// pre-flight: voltages are simply applied and the final state verified.
///
/// This is the *physical* semantics — real programming hardware cannot
/// interrogate each relay's true window first — and is what fault-injection
/// experiments use: an out-of-window (faulty) relay shows up as a
/// [`CrossbarError::ProgrammingMismatch`], exactly as it would on the
/// bench during the paper's test phase.
///
/// # Errors
///
/// * [`CrossbarError::ShapeMismatch`] if `target` has the wrong shape.
/// * [`CrossbarError::ProgrammingMismatch`] listing wrong-state relays.
pub fn program_unchecked(
    array: &mut CrossbarArray,
    target: &Configuration,
    levels: &ProgrammingLevels,
) -> Result<ProgramLog, CrossbarError> {
    if target.rows() != array.rows() || target.cols() != array.cols() {
        return Err(CrossbarError::ShapeMismatch {
            config: (target.rows(), target.cols()),
            array: (array.rows(), array.cols()),
        });
    }

    let cycles_before = array.total_switching_cycles();
    let mut steps = Vec::with_capacity(array.cols() + 2);
    let zeros_src = vec![Volts::zero(); array.rows()];
    let zeros_gate = vec![Volts::zero(); array.cols()];

    // Phase 0: reset — all V_GS = 0 releases every relay.
    array.apply_line_voltages(&zeros_src, &zeros_gate);
    steps.push(ProgramStep {
        label: "reset".to_owned(),
        source_lines: zeros_src.clone(),
        gate_lines: zeros_gate.clone(),
    });

    // Phase 1: select one gate column at a time.
    for c in 0..array.cols() {
        let gate_lines: Vec<Volts> = (0..array.cols())
            .map(|j| if j == c { levels.gate_selected() } else { levels.vhold })
            .collect();
        let source_lines: Vec<Volts> = (0..array.rows())
            .map(|r| if target.get(r, c) { -levels.vselect } else { Volts::zero() })
            .collect();
        array.apply_line_voltages(&source_lines, &gate_lines);
        steps.push(ProgramStep { label: format!("select column {c}"), source_lines, gate_lines });
    }

    // Phase 2: hold — all gate lines at Vhold retain the pattern.
    let hold_gates = vec![levels.vhold; array.cols()];
    array.apply_line_voltages(&zeros_src, &hold_gates);
    steps.push(ProgramStep {
        label: "hold".to_owned(),
        source_lines: zeros_src,
        gate_lines: hold_gates,
    });

    // Verification, as in the paper's test phase.
    let achieved = array.state_configuration();
    if &achieved != target {
        let mismatches: Vec<(usize, usize)> = target
            .iter()
            .filter(|&(r, c, want)| achieved.get(r, c) != want)
            .map(|(r, c, _)| (r, c))
            .collect();
        return Err(CrossbarError::ProgrammingMismatch { mismatches });
    }

    Ok(ProgramLog { steps, switching_events: array.total_switching_cycles() - cycles_before })
}

/// Partially reconfigures a single gate column without disturbing the rest
/// of the array.
///
/// The half-select scheme can *set* relays incrementally but cannot clear
/// one relay selectively; what it can do is release a whole gate line
/// (drop that gate to 0 V while the others hold) and then re-run the
/// select step for just that column — one-column-granularity partial
/// reconfiguration. All other columns stay at `Vhold` throughout and are
/// untouched.
///
/// # Errors
///
/// * [`CrossbarError::OutOfBounds`] for an invalid column.
/// * [`CrossbarError::ShapeMismatch`] if `new_column.len() != rows`.
/// * [`CrossbarError::LevelsViolateWindow`] if `levels` fail any relay.
/// * [`CrossbarError::ProgrammingMismatch`] if the column's final state is
///   wrong (stuck relays).
///
/// # Examples
///
/// ```
/// use nemfpga_crossbar::array::{Configuration, CrossbarArray};
/// use nemfpga_crossbar::levels::ProgrammingLevels;
/// use nemfpga_crossbar::program::{program, reprogram_column};
/// use nemfpga_device::relay::NemRelayDevice;
///
/// let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated())?;
/// let levels = ProgrammingLevels::paper_demo();
/// program(&mut xbar, &Configuration::from_code(2, 2, 0b1001), &levels)?;
/// // Flip column 1 from {row 1} to {row 0} without touching column 0.
/// reprogram_column(&mut xbar, 1, &[true, false], &levels)?;
/// assert!(xbar.relay(0, 0)?.is_on());  // column 0 undisturbed
/// assert!(xbar.relay(0, 1)?.is_on());
/// assert!(!xbar.relay(1, 1)?.is_on());
/// # Ok::<(), nemfpga_crossbar::error::CrossbarError>(())
/// ```
pub fn reprogram_column(
    array: &mut CrossbarArray,
    col: usize,
    new_column: &[bool],
    levels: &ProgrammingLevels,
) -> Result<(), CrossbarError> {
    if col >= array.cols() {
        return Err(CrossbarError::OutOfBounds {
            row: 0,
            col,
            rows: array.rows(),
            cols: array.cols(),
        });
    }
    if new_column.len() != array.rows() {
        return Err(CrossbarError::ShapeMismatch {
            config: (new_column.len(), 1),
            array: (array.rows(), array.cols()),
        });
    }
    for r in 0..array.rows() {
        for c in 0..array.cols() {
            let relay = array.relay(r, c).expect("in-bounds by construction");
            levels.validate_for(relay.device())?;
        }
    }
    // Remember what the rest of the array must still look like afterwards.
    let mut expected = array.state_configuration();
    for (r, &on) in new_column.iter().enumerate() {
        expected.set(r, col, on);
    }

    // Phase 1: release the whole target column (gate to 0, others hold).
    let zeros_src = vec![Volts::zero(); array.rows()];
    let gates: Vec<Volts> =
        (0..array.cols()).map(|c| if c == col { Volts::zero() } else { levels.vhold }).collect();
    array.apply_line_voltages(&zeros_src, &gates);

    // Phase 2: select step for just this column.
    let gates: Vec<Volts> = (0..array.cols())
        .map(|c| if c == col { levels.gate_selected() } else { levels.vhold })
        .collect();
    let sources: Vec<Volts> =
        new_column.iter().map(|&on| if on { -levels.vselect } else { Volts::zero() }).collect();
    array.apply_line_voltages(&sources, &gates);

    // Phase 3: back to hold.
    let hold = vec![levels.vhold; array.cols()];
    array.apply_line_voltages(&zeros_src, &hold);

    let achieved = array.state_configuration();
    if achieved != expected {
        let mismatches = expected
            .iter()
            .filter(|&(r, c, want)| achieved.get(r, c) != want)
            .map(|(r, c, _)| (r, c))
            .collect();
        return Err(CrossbarError::ProgrammingMismatch { mismatches });
    }
    Ok(())
}

/// Resets every relay by grounding all lines (the paper's reset phase) and
/// verifies the array released.
///
/// # Errors
///
/// Returns [`CrossbarError::ProgrammingMismatch`] listing relays that did
/// not release (stuck contacts).
pub fn reset(array: &mut CrossbarArray) -> Result<(), CrossbarError> {
    let zeros_src = vec![Volts::zero(); array.rows()];
    let zeros_gate = vec![Volts::zero(); array.cols()];
    array.apply_line_voltages(&zeros_src, &zeros_gate);
    if array.all_pulled_out() {
        return Ok(());
    }
    let snapshot = array.state_configuration();
    let stuck = snapshot.iter().filter(|(_, _, on)| *on).map(|(r, c, _)| (r, c)).collect();
    Err(CrossbarError::ProgrammingMismatch { mismatches: stuck })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemfpga_device::relay::NemRelayDevice;

    fn demo() -> CrossbarArray {
        CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated()).unwrap()
    }

    #[test]
    fn all_sixteen_2x2_configurations_program_correctly() {
        // The paper: "all configurations exhaustively verified" (Fig. 5).
        let levels = ProgrammingLevels::paper_demo();
        for code in 0..16u64 {
            let mut xbar = demo();
            let target = Configuration::from_code(2, 2, code);
            program(&mut xbar, &target, &levels)
                .unwrap_or_else(|e| panic!("config {code} failed: {e}"));
            assert_eq!(xbar.state_configuration(), target, "config {code}");
        }
    }

    #[test]
    fn reprogramming_overwrites_previous_configuration() {
        // Fig. 5b then 5c: program, reset, re-program differently.
        let levels = ProgrammingLevels::paper_demo();
        let mut xbar = demo();
        let first = Configuration::from_code(2, 2, 0b1001);
        program(&mut xbar, &first, &levels).unwrap();
        assert_eq!(xbar.state_configuration(), first);
        let second = Configuration::from_code(2, 2, 0b0110);
        program(&mut xbar, &second, &levels).unwrap();
        assert_eq!(xbar.state_configuration(), second);
    }

    #[test]
    fn half_selected_relays_retain_state_across_columns() {
        // Program column 0 then column 1; relays in column 0 see
        // half-select voltages during column 1's step and must hold.
        let levels = ProgrammingLevels::paper_demo();
        let mut xbar = demo();
        let mut target = Configuration::all_off(2, 2);
        target.set(0, 0, true);
        target.set(1, 1, true);
        let log = program(&mut xbar, &target, &levels).unwrap();
        assert_eq!(xbar.state_configuration(), target);
        // Exactly two pull-ins should have happened (plus nothing spurious).
        assert_eq!(log.switching_events, 2);
    }

    #[test]
    fn program_log_has_reset_selects_hold() {
        let levels = ProgrammingLevels::paper_demo();
        let mut xbar = demo();
        let target = Configuration::from_code(2, 2, 0b0001);
        let log = program(&mut xbar, &target, &levels).unwrap();
        assert_eq!(log.steps.len(), 4); // reset + 2 columns + hold
        assert_eq!(log.steps[0].label, "reset");
        assert_eq!(log.steps.last().unwrap().label, "hold");
    }

    #[test]
    fn bad_levels_rejected_before_touching_the_array() {
        let mut xbar = demo();
        let levels = ProgrammingLevels { vhold: Volts::new(1.0), vselect: Volts::new(0.1) };
        let target = Configuration::from_code(2, 2, 0b0001);
        let err = program(&mut xbar, &target, &levels).unwrap_err();
        assert!(matches!(err, CrossbarError::LevelsViolateWindow { .. }));
        assert!(xbar.all_pulled_out());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut xbar = demo();
        let target = Configuration::all_off(3, 2);
        assert!(matches!(
            program(&mut xbar, &target, &ProgrammingLevels::paper_demo()),
            Err(CrossbarError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn stuck_relay_detected_at_reset() {
        let mut device = NemRelayDevice::fabricated();
        let mut xbar = CrossbarArray::uniform(2, 2, device.clone()).unwrap();
        // Pull everything in with a clean device first.
        let levels = ProgrammingLevels::paper_demo();
        let all_on = Configuration::from_code(2, 2, 0b1111);
        program(&mut xbar, &all_on, &levels).unwrap();
        // Now the same array with a stiction-prone device cannot reset.
        device.adhesion_per_width = 10.0;
        let mut sticky = CrossbarArray::uniform(2, 2, device).unwrap();
        // Force pull-in directly (programming would fail validation since
        // a stuck device has Vpo = 0 < any Vhold... which is the point).
        let vpi = sticky.relay(0, 0).unwrap().device().pull_in_voltage();
        sticky.apply_line_voltages(&[-(vpi); 2], &[vpi; 2]);
        let err = reset(&mut sticky).unwrap_err();
        assert!(matches!(err, CrossbarError::ProgrammingMismatch { .. }));
    }

    #[test]
    fn column_reprogramming_leaves_other_columns_alone() {
        let levels = ProgrammingLevels::paper_demo();
        let mut xbar = CrossbarArray::uniform(4, 4, NemRelayDevice::fabricated()).unwrap();
        let initial = Configuration::from_code(4, 4, 0b1010_0101_1100_0011);
        program(&mut xbar, &initial, &levels).unwrap();

        // Rewrite column 2 to an arbitrary new pattern.
        let new_col = [true, true, false, true];
        reprogram_column(&mut xbar, 2, &new_col, &levels).unwrap();

        let after = xbar.state_configuration();
        for (r, &rewritten) in new_col.iter().enumerate() {
            for c in 0..4 {
                let want = if c == 2 { rewritten } else { initial.get(r, c) };
                assert_eq!(after.get(r, c), want, "({r},{c})");
            }
        }
    }

    #[test]
    fn column_reprogramming_is_idempotent_and_repeatable() {
        let levels = ProgrammingLevels::paper_demo();
        let mut xbar = CrossbarArray::uniform(3, 3, NemRelayDevice::fabricated()).unwrap();
        program(&mut xbar, &Configuration::all_off(3, 3), &levels).unwrap();
        for round in 0..4 {
            let pattern = [round % 2 == 0, round % 3 == 0, true];
            reprogram_column(&mut xbar, 1, &pattern, &levels).unwrap();
            for (r, &want) in pattern.iter().enumerate() {
                assert_eq!(xbar.relay(r, 1).unwrap().is_on(), want, "round {round}");
            }
        }
    }

    #[test]
    fn column_reprogramming_rejects_bad_arguments() {
        let levels = ProgrammingLevels::paper_demo();
        let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated()).unwrap();
        assert!(matches!(
            reprogram_column(&mut xbar, 5, &[true, false], &levels),
            Err(CrossbarError::OutOfBounds { .. })
        ));
        assert!(matches!(
            reprogram_column(&mut xbar, 0, &[true], &levels),
            Err(CrossbarError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn reset_after_program_releases_everything() {
        let levels = ProgrammingLevels::paper_demo();
        let mut xbar = demo();
        program(&mut xbar, &Configuration::from_code(2, 2, 0b1111), &levels).unwrap();
        reset(&mut xbar).unwrap();
        assert!(xbar.all_pulled_out());
    }
}
