//! # nemfpga-crossbar
//!
//! NEM relay programmable routing crossbars and the half-select
//! programming scheme, reproducing Sec. 2.2–2.3 of *"Nano-Electro-
//! Mechanical Relays for FPGA Routing"* (DATE 2012):
//!
//! * [`levels`] — the three programming voltage levels and the half-select
//!   inequalities of Fig. 4.
//! * [`array`] — relay arrays with shared source/gate lines and target
//!   [`array::Configuration`]s.
//! * [`program`] — the column-by-column half-select programmer with
//!   verification.
//! * [`waveform`] — the Fig. 5 program/test/reset trace simulator.
//! * [`window`] — solving `(Vhold, Vselect)` from a measured population
//!   (the Fig. 6 exercise) with max-min noise margins.
//! * [`yield_analysis`] — array-scale programmability yield under device
//!   variation ("millions of switches" feasibility).
//!
//! # Examples
//!
//! Program a 2×2 crossbar exactly as the paper's hardware demo does:
//!
//! ```
//! use nemfpga_crossbar::array::{Configuration, CrossbarArray};
//! use nemfpga_crossbar::levels::ProgrammingLevels;
//! use nemfpga_crossbar::waveform::{run_demo, WaveformConfig};
//! use nemfpga_device::relay::NemRelayDevice;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated())?;
//! let target = Configuration::from_code(2, 2, 0b0110);
//! let wave = run_demo(
//!     &mut xbar,
//!     &target,
//!     &ProgrammingLevels::paper_demo(),
//!     &WaveformConfig::paper_fig5(),
//! )?;
//! assert!(wave.verify());
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod error;
pub mod faults;
pub mod levels;
pub mod program;
pub mod waveform;
pub mod window;
pub mod yield_analysis;

pub use array::{Configuration, CrossbarArray};
pub use error::CrossbarError;
pub use faults::{coverage_estimate, detect_faults, Fault, FaultKind};
pub use levels::ProgrammingLevels;
pub use program::{program, program_unchecked, reprogram_column, reset, ProgramLog};
pub use waveform::{run_demo, Waveform, WaveformConfig};
pub use window::{solve_window, SolvedWindow};
