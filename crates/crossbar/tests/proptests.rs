//! Property-based tests of half-select programming: arbitrary target
//! configurations on arbitrary array shapes always program correctly with
//! valid levels, and the window solver's output is always valid.

use nemfpga_crossbar::array::{Configuration, CrossbarArray};
use nemfpga_crossbar::levels::ProgrammingLevels;
use nemfpga_crossbar::program::{program, reset};
use nemfpga_crossbar::window::solve_window;
use nemfpga_device::variation::{PopulationStats, VariationModel};
use nemfpga_device::NemRelayDevice;
use proptest::prelude::*;

fn arb_config(rows: usize, cols: usize) -> impl Strategy<Value = Configuration> {
    prop::collection::vec(any::<bool>(), rows * cols)
        .prop_map(move |bits| Configuration::from_bits(rows, cols, &bits).expect("shape matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any target on any array up to 8x8 programs exactly, and a reset
    /// releases everything, for the paper's demo levels on the nominal
    /// fabricated device.
    #[test]
    fn arbitrary_configurations_program_exactly(
        rows in 1usize..8,
        cols in 1usize..8,
        seed_bits in prop::collection::vec(any::<bool>(), 64),
    ) {
        let bits = &seed_bits[..rows * cols];
        let target = Configuration::from_bits(rows, cols, bits).expect("shape");
        let mut xbar =
            CrossbarArray::uniform(rows, cols, NemRelayDevice::fabricated()).expect("builds");
        program(&mut xbar, &target, &ProgrammingLevels::paper_demo()).expect("programs");
        prop_assert_eq!(xbar.state_configuration(), target);
        reset(&mut xbar).expect("resets");
        prop_assert!(xbar.all_pulled_out());
    }

    /// Sequential reprogramming: the second pattern fully overwrites the
    /// first, regardless of overlap.
    #[test]
    fn reprogramming_overwrites(
        first in arb_config(4, 4),
        second in arb_config(4, 4),
    ) {
        let mut xbar =
            CrossbarArray::uniform(4, 4, NemRelayDevice::fabricated()).expect("builds");
        let levels = ProgrammingLevels::paper_demo();
        program(&mut xbar, &first, &levels).expect("first programs");
        program(&mut xbar, &second, &levels).expect("second programs");
        prop_assert_eq!(xbar.state_configuration(), second);
    }

    /// The window solver's output always validates against the population
    /// it was solved from, with strictly positive margins.
    #[test]
    fn solved_windows_are_always_valid(seed in 0u64..500, n in 20usize..150) {
        let pop = VariationModel::fabrication_default().sample_population(
            &NemRelayDevice::fabricated(),
            n,
            seed,
        );
        let stats = PopulationStats::of(&pop);
        prop_assume!(stats.exact_feasibility_condition());
        let solved = solve_window(&stats).expect("feasible population solves");
        solved.levels.validate_for_population(&stats).expect("levels valid");
        prop_assert!(solved.worst_margin.value() > 0.0);
        // Margins reported are exactly the validation margins.
        for m in solved.margins {
            prop_assert!(m >= solved.worst_margin);
        }
    }

    /// Programming a population array with its solved window succeeds for
    /// any target pattern.
    #[test]
    fn population_arrays_program_with_solved_window(
        seed in 0u64..200,
        target in arb_config(5, 5),
    ) {
        let pop = VariationModel::fabrication_default().sample_population(
            &NemRelayDevice::fabricated(),
            25,
            seed,
        );
        let stats = PopulationStats::of(&pop);
        prop_assume!(stats.exact_feasibility_condition());
        let solved = solve_window(&stats).expect("solves");
        let mut xbar = CrossbarArray::from_population(5, 5, &pop).expect("builds");
        program(&mut xbar, &target, &solved.levels).expect("programs");
        prop_assert_eq!(xbar.state_configuration(), target);
    }

    /// Relay actuation count equals the number of on-bits per fresh
    /// programming run (nothing spurious toggles).
    #[test]
    fn actuation_count_matches_on_bits(target in arb_config(6, 6)) {
        let mut xbar =
            CrossbarArray::uniform(6, 6, NemRelayDevice::fabricated()).expect("builds");
        let log =
            program(&mut xbar, &target, &ProgrammingLevels::paper_demo()).expect("programs");
        prop_assert_eq!(log.switching_events as usize, target.on_count());
    }
}
