//! Property-based tests of half-select programming: arbitrary target
//! configurations on arbitrary array shapes always program correctly with
//! valid levels, and the window solver's output is always valid.

use nemfpga_crossbar::array::{Configuration, CrossbarArray};
use nemfpga_crossbar::levels::ProgrammingLevels;
use nemfpga_crossbar::program::{program, reprogram_column, reset};
use nemfpga_crossbar::window::solve_window;
use nemfpga_device::variation::{PopulationStats, VariationModel};
use nemfpga_device::NemRelayDevice;
use proptest::prelude::*;

fn arb_config(rows: usize, cols: usize) -> impl Strategy<Value = Configuration> {
    prop::collection::vec(any::<bool>(), rows * cols)
        .prop_map(move |bits| Configuration::from_bits(rows, cols, &bits).expect("shape matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any target on any array up to 8x8 programs exactly, and a reset
    /// releases everything, for the paper's demo levels on the nominal
    /// fabricated device.
    #[test]
    fn arbitrary_configurations_program_exactly(
        rows in 1usize..8,
        cols in 1usize..8,
        seed_bits in prop::collection::vec(any::<bool>(), 64),
    ) {
        let bits = &seed_bits[..rows * cols];
        let target = Configuration::from_bits(rows, cols, bits).expect("shape");
        let mut xbar =
            CrossbarArray::uniform(rows, cols, NemRelayDevice::fabricated()).expect("builds");
        program(&mut xbar, &target, &ProgrammingLevels::paper_demo()).expect("programs");
        prop_assert_eq!(xbar.state_configuration(), target);
        reset(&mut xbar).expect("resets");
        prop_assert!(xbar.all_pulled_out());
    }

    /// Sequential reprogramming: the second pattern fully overwrites the
    /// first, regardless of overlap.
    #[test]
    fn reprogramming_overwrites(
        first in arb_config(4, 4),
        second in arb_config(4, 4),
    ) {
        let mut xbar =
            CrossbarArray::uniform(4, 4, NemRelayDevice::fabricated()).expect("builds");
        let levels = ProgrammingLevels::paper_demo();
        program(&mut xbar, &first, &levels).expect("first programs");
        program(&mut xbar, &second, &levels).expect("second programs");
        prop_assert_eq!(xbar.state_configuration(), second);
    }

    /// The window solver's output always validates against the population
    /// it was solved from, with strictly positive margins.
    #[test]
    fn solved_windows_are_always_valid(seed in 0u64..500, n in 20usize..150) {
        let pop = VariationModel::fabrication_default().sample_population(
            &NemRelayDevice::fabricated(),
            n,
            seed,
        );
        let stats = PopulationStats::of(&pop);
        prop_assume!(stats.exact_feasibility_condition());
        let solved = solve_window(&stats).expect("feasible population solves");
        solved.levels.validate_for_population(&stats).expect("levels valid");
        prop_assert!(solved.worst_margin.value() > 0.0);
        // Margins reported are exactly the validation margins.
        for m in solved.margins {
            prop_assert!(m >= solved.worst_margin);
        }
    }

    /// Programming a population array with its solved window succeeds for
    /// any target pattern.
    #[test]
    fn population_arrays_program_with_solved_window(
        seed in 0u64..200,
        target in arb_config(5, 5),
    ) {
        let pop = VariationModel::fabrication_default().sample_population(
            &NemRelayDevice::fabricated(),
            25,
            seed,
        );
        let stats = PopulationStats::of(&pop);
        prop_assume!(stats.exact_feasibility_condition());
        let solved = solve_window(&stats).expect("solves");
        let mut xbar = CrossbarArray::from_population(5, 5, &pop).expect("builds");
        program(&mut xbar, &target, &solved.levels).expect("programs");
        prop_assert_eq!(xbar.state_configuration(), target);
    }

    /// Relay actuation count equals the number of on-bits per fresh
    /// programming run (nothing spurious toggles).
    #[test]
    fn actuation_count_matches_on_bits(target in arb_config(6, 6)) {
        let mut xbar =
            CrossbarArray::uniform(6, 6, NemRelayDevice::fabricated()).expect("builds");
        let log =
            program(&mut xbar, &target, &ProgrammingLevels::paper_demo()).expect("programs");
        prop_assert_eq!(log.switching_events as usize, target.on_count());
    }

    /// The half-select guarantee, exhaustively per array: for every
    /// array shape from 2x2 to 8x8 and EVERY target cell, programming
    /// just that relay (a one-bit column rewrite) never disturbs any
    /// half-selected relay — every relay whose window straddles the hold
    /// voltage (`Vpo < Vhold < Vpi`) keeps its state.
    #[test]
    fn single_relay_writes_never_disturb_half_selected_relays(
        rows in 2usize..9,
        cols in 2usize..9,
        seed_bits in prop::collection::vec(any::<bool>(), 64),
    ) {
        let levels = ProgrammingLevels::paper_demo();
        let initial =
            Configuration::from_bits(rows, cols, &seed_bits[..rows * cols]).expect("shape");
        let mut programmed =
            CrossbarArray::uniform(rows, cols, NemRelayDevice::fabricated()).expect("builds");
        program(&mut programmed, &initial, &levels).expect("programs");

        // The precondition the paper's scheme rests on: every relay is
        // genuinely half-selectable at these levels.
        for r in 0..rows {
            for c in 0..cols {
                let device = programmed.relay(r, c).expect("in bounds").device();
                prop_assert!(device.pull_out_voltage().value() < levels.vhold.value());
                prop_assert!(levels.vhold.value() < device.pull_in_voltage().value());
            }
        }

        for target_row in 0..rows {
            for target_col in 0..cols {
                for new_bit in [true, false] {
                    let mut xbar = programmed.clone();
                    let mut column: Vec<bool> =
                        (0..rows).map(|r| initial.get(r, target_col)).collect();
                    column[target_row] = new_bit;
                    reprogram_column(&mut xbar, target_col, &column, &levels)
                        .expect("reprograms");

                    let mut expected = initial.clone();
                    expected.set(target_row, target_col, new_bit);
                    prop_assert_eq!(
                        xbar.state_configuration(),
                        expected,
                        "writing ({}, {}) <- {} disturbed a half-selected relay",
                        target_row,
                        target_col,
                        new_bit
                    );
                }
            }
        }
    }

    /// The same half-select guarantee on fabrication-varied populations
    /// programmed at their *solved* window: variation moves every Vpi /
    /// Vpo, yet single-relay writes still leave the rest of the array
    /// untouched as long as each relay's window straddles the solved
    /// Vhold.
    #[test]
    fn half_select_holds_on_varied_populations_with_solved_window(
        seed in 0u64..300,
        rows in 2usize..7,
        cols in 2usize..7,
        seed_bits in prop::collection::vec(any::<bool>(), 36),
    ) {
        let pop = VariationModel::fabrication_default().sample_population(
            &NemRelayDevice::fabricated(),
            rows * cols,
            seed,
        );
        let stats = PopulationStats::of(&pop);
        prop_assume!(stats.exact_feasibility_condition());
        let solved = solve_window(&stats).expect("feasible population solves");
        let levels = solved.levels;

        let initial =
            Configuration::from_bits(rows, cols, &seed_bits[..rows * cols]).expect("shape");
        let mut programmed = CrossbarArray::from_population(rows, cols, &pop).expect("builds");
        program(&mut programmed, &initial, &levels).expect("programs");

        for (i, device) in pop.iter().enumerate() {
            prop_assert!(
                device.pull_out_voltage().value() < levels.vhold.value()
                    && levels.vhold.value() < device.pull_in_voltage().value(),
                "device {} is not half-selectable at the solved window",
                i
            );
        }

        for target_row in 0..rows {
            for target_col in 0..cols {
                let mut xbar = programmed.clone();
                let mut column: Vec<bool> =
                    (0..rows).map(|r| initial.get(r, target_col)).collect();
                column[target_row] = !column[target_row];
                reprogram_column(&mut xbar, target_col, &column, &levels).expect("reprograms");

                let mut expected = initial.clone();
                expected.set(target_row, target_col, !initial.get(target_row, target_col));
                prop_assert_eq!(xbar.state_configuration(), expected);
            }
        }
    }
}
