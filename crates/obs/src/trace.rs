//! chrome://tracing exporter for drained spans.
//!
//! Renders [`SpanRecord`]s as the Trace Event Format's JSON array form
//! (complete events, `"ph": "X"`), loadable in `chrome://tracing`,
//! `about:tracing`, and Perfetto. Timestamps are microseconds with
//! nanosecond precision kept in three decimals. The writer is
//! deterministic: span order is whatever the caller passes (sessions
//! sort by start time) and all keys are emitted in a fixed order.

use crate::span::SpanRecord;

/// Renders spans as a chrome://tracing JSON document.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&s.tid.to_string());
        out.push_str(",\"ts\":");
        push_micros(&mut out, s.start_ns);
        out.push_str(",\"dur\":");
        push_micros(&mut out, s.dur_ns);
        out.push_str(",\"cat\":\"");
        out.push_str(s.cat);
        out.push_str("\",\"name\":\"");
        out.push_str(s.name);
        out.push('"');
        if !s.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in s.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(k);
                out.push_str("\":");
                out.push_str(&v.to_string());
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Writes `nanos` as a decimal microsecond value (`1234567` ns →
/// `1234.567`), avoiding float formatting so output is bit-stable.
fn push_micros(out: &mut String, nanos: u64) {
    let micros = nanos / 1_000;
    let frac = nanos % 1_000;
    out.push_str(&micros.to_string());
    if frac != 0 {
        out.push('.');
        let digits = format!("{frac:03}");
        out.push_str(digits.trim_end_matches('0'));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord { cat: "flow", name, start_ns, dur_ns, tid: 1, args: Vec::new() }
    }

    #[test]
    fn renders_complete_events_with_micro_timestamps() {
        let mut with_args = rec("route", 1_234_567, 2_000);
        with_args.args.push(("iterations", 7));
        let doc = to_chrome_trace(&[rec("pack", 0, 1_500_000), with_args]);
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":1500,\"cat\":\"flow\",\"name\":\"pack\"}"
        ));
        assert!(doc.contains("\"ts\":1234.567,\"dur\":2,"));
        assert!(doc.contains("\"args\":{\"iterations\":7}"));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        assert_eq!(to_chrome_trace(&[]), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
