//! The monotonic clock behind span timestamps.
//!
//! Defaults to wall monotonic time (`Instant` relative to a process
//! epoch). Deterministic test harnesses install a *manual* clock that
//! only moves when [`advance`] is called, so span start/duration fields
//! are bit-stable across runs regardless of scheduler jitter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// `true` → [`now_nanos`] reads the manual counter instead of `Instant`.
static MANUAL_MODE: AtomicBool = AtomicBool::new(false);
/// The manual clock's current reading, in nanoseconds.
static MANUAL_NANOS: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since an arbitrary fixed origin (process start for the
/// real clock, zero for a freshly-installed manual clock). Monotonic in
/// both modes.
pub fn now_nanos() -> u64 {
    if MANUAL_MODE.load(Ordering::Acquire) {
        MANUAL_NANOS.load(Ordering::Acquire)
    } else {
        epoch().elapsed().as_nanos() as u64
    }
}

/// Switches to a manually-advanced clock starting at `start_nanos`.
/// Process-global: affects every span site until [`use_real_clock`].
pub fn install_manual_clock(start_nanos: u64) {
    MANUAL_NANOS.store(start_nanos, Ordering::Release);
    MANUAL_MODE.store(true, Ordering::Release);
}

/// Advances the manual clock; no-op on the real clock.
pub fn advance(nanos: u64) {
    MANUAL_NANOS.fetch_add(nanos, Ordering::AcqRel);
}

/// Restores the default `Instant`-backed clock.
pub fn use_real_clock() {
    MANUAL_MODE.store(false, Ordering::Release);
}

/// Serializes unit tests that mutate process-global clock/span state.
#[cfg(test)]
pub(crate) fn test_globals_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let _serial = test_globals_lock();
        install_manual_clock(100);
        assert_eq!(now_nanos(), 100);
        assert_eq!(now_nanos(), 100);
        advance(25);
        assert_eq!(now_nanos(), 125);
        use_real_clock();
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a, "real clock must be monotonic");
    }
}
