//! In-band job progress reporting.
//!
//! The span layer ([`crate::span`]) records *timing* for offline trace
//! analysis and compiles out without the `trace` feature. Progress is
//! the live counterpart: the engine announces "I am now packing",
//! "router iteration 7" to whoever is watching *right now* — the
//! serving layer forwards these to streaming clients. It is therefore
//! **always compiled**, like metrics.
//!
//! The mechanism mirrors `nemfpga_runtime::cancel`: the worker that
//! picks a job up [`install`]s a sink for the duration of the job, and
//! instrumented sites call [`stage`] / [`tick`] without threading
//! anything through the call graph. With no sink installed a site costs
//! one thread-local read. The thread-local sink does not inherit into
//! spawned threads; fan-out primitives that run work on behalf of the
//! current job capture [`current`] and re-[`install`] it per worker,
//! exactly as they do for the cancel token.

use std::cell::RefCell;
use std::sync::Arc;

/// One progress announcement from an instrumented engine site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A named flow stage began (`pack`, `place`, `route`, `sta`, ...).
    Stage {
        /// Stage name, stable across runs.
        name: &'static str,
    },
    /// A counted step inside a stage (e.g. router iteration `value`).
    Tick {
        /// Counter name, stable across runs.
        name: &'static str,
        /// Current count (1-based for loop iterations).
        value: u64,
    },
}

/// Where progress events go. Sinks must be cheap and non-blocking: they
/// run inline on the engine thread at stage boundaries.
pub type ProgressSink = Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

thread_local! {
    static CURRENT: RefCell<Option<ProgressSink>> = const { RefCell::new(None) };
}

/// Restores the previously-installed sink (if any) on drop.
pub struct ProgressGuard {
    previous: Option<ProgressSink>,
}

impl Drop for ProgressGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// Makes `sink` the current sink for this thread until the returned
/// guard drops. Nests: the guard restores whatever was current before.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub fn install(sink: ProgressSink) -> ProgressGuard {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(sink));
    ProgressGuard { previous }
}

/// The sink installed on this thread, if any. Fan-out primitives use
/// this to propagate the sink onto their worker threads.
pub fn current() -> Option<ProgressSink> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Announces the start of a named flow stage.
#[inline]
pub fn stage(name: &'static str) {
    emit(&ProgressEvent::Stage { name });
}

/// Announces a counted step inside a stage.
#[inline]
pub fn tick(name: &'static str, value: u64) {
    emit(&ProgressEvent::Tick { name, value });
}

fn emit(event: &ProgressEvent) {
    CURRENT.with(|current| {
        if let Some(sink) = current.borrow().as_ref() {
            sink(event);
        }
    });
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;

    fn collecting_sink() -> (ProgressSink, Arc<Mutex<Vec<ProgressEvent>>>) {
        let seen: Arc<Mutex<Vec<ProgressEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let seen = Arc::clone(&seen);
            Arc::new(move |event: &ProgressEvent| {
                seen.lock().expect("sink lock").push(event.clone());
            })
        };
        (sink, seen)
    }

    #[test]
    fn sites_are_inert_without_a_sink() {
        stage("pack");
        tick("route.iteration", 1);
    }

    #[test]
    fn installed_sink_sees_events_in_order() {
        let (sink, seen) = collecting_sink();
        {
            let _guard = install(sink);
            stage("pack");
            tick("route.iteration", 3);
        }
        stage("after-guard"); // must not land anywhere
        let seen = seen.lock().expect("seen lock");
        assert_eq!(
            *seen,
            vec![
                ProgressEvent::Stage { name: "pack" },
                ProgressEvent::Tick { name: "route.iteration", value: 3 },
            ]
        );
    }

    #[test]
    fn install_nests_and_restores() {
        let (outer, outer_seen) = collecting_sink();
        let (inner, inner_seen) = collecting_sink();
        let g1 = install(outer);
        {
            let _g2 = install(inner);
            stage("inner");
        }
        stage("outer");
        drop(g1);
        assert!(current().is_none());
        assert_eq!(inner_seen.lock().expect("lock").len(), 1);
        assert_eq!(outer_seen.lock().expect("lock").len(), 1);
    }

    #[test]
    fn current_clone_reinstalls_on_another_thread() {
        let (sink, seen) = collecting_sink();
        let _guard = install(sink);
        let captured = current().expect("sink is installed");
        std::thread::spawn(move || {
            let _guard = install(captured);
            stage("fanned-out");
        })
        .join()
        .expect("join");
        assert_eq!(seen.lock().expect("lock").len(), 1);
    }
}
