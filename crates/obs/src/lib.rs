//! Observability core for the nemfpga workspace.
//!
//! Four pieces, deliberately decoupled:
//!
//! * [`metrics`] — a typed metric registry ([`Counter`], [`Gauge`],
//!   [`Histogram`]) that is **always compiled**. Histograms are
//!   log-bucketed with exact u64 counts and merge associatively, so
//!   quantiles come from real distributions instead of point samples
//!   and per-shard histograms can be combined without loss.
//! * [`progress`] — an always-compiled, thread-local progress sink the
//!   engine announces stage starts and loop ticks to. The serving layer
//!   installs a per-job sink and forwards events to streaming clients;
//!   with no sink installed a site costs one thread-local read.
//! * [`span`] — a lock-minimal span recorder behind the `trace`
//!   feature. Spans buffer in thread-local storage and drain into a
//!   global sink in batches; with the feature off every guard is a
//!   zero-sized no-op, mirroring the `fault-injection` pattern in
//!   `nemfpga-runtime`. Even with the feature *on*, a disarmed process
//!   pays one relaxed atomic load per span site.
//! * [`clock`] — the monotonic clock behind span timestamps. Tests and
//!   the deterministic testkit can install a manually-advanced clock so
//!   recorded traces are bit-stable across runs.
//!
//! [`trace`] renders drained spans as chrome://tracing JSON
//! (`about:tracing` / Perfetto loadable), and
//! [`metrics::RegistrySnapshot::to_prometheus`] renders a registry as
//! Prometheus text exposition format. JSON rendering of metrics lives
//! with the service's deterministic JSON codec, not here.

pub mod clock;
pub mod metrics;
pub mod progress;
pub mod span;
pub mod trace;

pub use metrics::{
    engine_registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot,
};
pub use progress::{ProgressEvent, ProgressGuard, ProgressSink};
pub use span::{flush_thread, span, SpanGuard, SpanRecord, TraceSession};
