//! Typed metric registry: counters, gauges, and log-bucketed histograms.
//!
//! Everything here is always compiled (no feature gate): the service's
//! `/v1/metrics` surface and the chaos-suite reconciliation invariant
//! read these counters unconditionally, so they must exist in every
//! build. Handles are `Clone` + cheap (an `Arc` around atomics); hot
//! paths never take a lock — the registry mutex is touched only at
//! registration and snapshot time.
//!
//! Histograms are power-of-two log-bucketed: value `v` lands in bucket
//! `0` when `v == 0`, else bucket `64 - v.leading_zeros()`, i.e. bucket
//! `i ≥ 1` covers `[2^(i-1), 2^i - 1]`. Counts are exact u64s (no
//! sampling, no decay) and merging two histograms is bucket-wise
//! addition, so merge is associative and commutative and the total
//! count is always the exact number of recorded observations.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// The process-global registry for *engine-side* metrics — effort
/// counters recorded deep inside CAD kernels (router iterations, heap
/// pushes, conflict groups) that have no service handle to thread
/// through. Library code records here unconditionally; exporters (the
/// service's `/v1/metrics`) merge a snapshot of this registry into
/// their own at render time. Engine metric names are prefixed by their
/// subsystem (`route_…`) so they can never collide with service names.
pub fn engine_registry() -> &'static Arc<Registry> {
    static ENGINE: OnceLock<Arc<Registry>> = OnceLock::new();
    ENGINE.get_or_init(|| Arc::new(Registry::new()))
}

/// Number of histogram buckets: one for zero plus one per bit of u64.
pub const BUCKETS: usize = 65;

/// Bucket index for a recorded value (see module docs for the layout).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A monotonically-increasing event count.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value that can move both ways.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

/// A log-bucketed distribution with exact counts. `record` is two
/// relaxed atomic adds; snapshots and quantiles never block recorders.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in integer microseconds (the workspace-wide
    /// unit for latency histograms — ns overflows sums too fast, ms
    /// quantizes sub-millisecond CAD stages to nothing).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Folds another histogram's counts into this one.
    pub fn merge_from(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (i, &c) in snap.buckets.iter().enumerate() {
            if c > 0 {
                self.0.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.0.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    /// A point-in-time copy (per-bucket atomic reads; counts lag the
    /// sum by at most the handful of in-flight `record` calls).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Exact observation count per bucket (see [`bucket_upper_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Exact sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise sum of two snapshots (`sum` wraps on overflow, like
    /// the atomic adds backing the live histogram).
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// observation (0 ≤ q ≤ 1), or 0 when empty. Log buckets bound the
    /// relative error at 2× — honest for latency work, unlike a
    /// 2-sample point estimate.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the selected observation, 1-based, clamped to range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

/// One registered metric, by kind.
#[derive(Clone)]
pub enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Get-or-create registration returns a
/// shared handle: two calls with the same name see the same atomics,
/// which is what lets `/v1/metrics` and in-process assertions (the
/// chaos reconciliation invariant) read one source of truth.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the named counter. Panics if the name is already
    /// registered as a different kind — that is a programming error,
    /// not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("registry lock poisoned");
        match map.entry(name.to_string()).or_insert_with(|| Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create the named gauge (same contract as [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("registry lock poisoned");
        match map.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create the named histogram (same contract as [`Self::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().expect("registry lock poisoned");
        match map.entry(name.to_string()).or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.inner.lock().expect("registry lock poisoned");
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Everything a [`Registry`] held at one instant, ready to export.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Prometheus text exposition format (version 0.0.4). Histograms
    /// render cumulative `_bucket{le=...}` series (only buckets that
    /// change the cumulative count, plus `+Inf`), `_sum`, `_count`.
    pub fn to_prometheus(&self) -> String {
        // Registry names may embed labels (`family{tenant="x"}`); the
        // exposition format wants one `# TYPE` line per *family*, and
        // histogram suffixes (`_bucket`, `_sum`, `_count`) attached to
        // the family name with the labels following. BTreeMap order
        // keeps a family's labeled series adjacent, so deduping TYPE
        // lines only needs the previously emitted family.
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, family: &str, kind: &str| {
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last_family = family.to_owned();
            }
        };
        for (name, v) in &self.counters {
            let (family, _) = split_labels(name);
            type_line(&mut out, family, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let (family, _) = split_labels(name);
            type_line(&mut out, family, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let (family, labels) = split_labels(name);
            type_line(&mut out, family, "histogram");
            // `{tenant="x"}` composes with `le` as `{tenant="x",le=…}`.
            let with = |extra: &str| match (labels, extra.is_empty()) {
                (None, true) => String::new(),
                (None, false) => format!("{{{extra}}}"),
                (Some(labels), true) => format!("{{{labels}}}"),
                (Some(labels), false) => format!("{{{labels},{extra}}}"),
            };
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{family}_bucket{} {cumulative}",
                    with(&format!("le=\"{}\"", bucket_upper_bound(i)))
                );
            }
            let _ = writeln!(out, "{family}_bucket{} {cumulative}", with("le=\"+Inf\""));
            let _ = writeln!(out, "{family}_sum{} {}", with(""), h.sum);
            let _ = writeln!(out, "{family}_count{} {cumulative}", with(""));
        }
        out
    }
}

/// Splits a registry name into its metric family and the embedded label
/// body, if any: `f{a="b"}` → `("f", Some("a=\"b\""))`, `f` → `("f", None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((family, rest)) => (family, Some(rest.strip_suffix('}').unwrap_or(rest))),
        None => (name, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64_without_overlap() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound lands in that bucket, and the next
        // value up lands in the next bucket.
        for i in 0..BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            if ub < u64::MAX {
                assert_eq!(bucket_index(ub + 1), i + 1);
            }
        }
    }

    #[test]
    fn histogram_counts_are_exact_and_quantiles_bound_values() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500_500);
        // The p50 bucket upper bound must be >= the true median and
        // within 2x of it (log-bucket guarantee).
        let p50 = s.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(s.quantile(0.0), bucket_upper_bound(bucket_index(1)));
        assert_eq!(s.quantile(1.0), 1023);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(3);
        b.record(3);
        b.record(100);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum, 106);
        assert_eq!(s.buckets[bucket_index(3)], 2);
        assert_eq!(s.buckets[bucket_index(100)], 1);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x").get(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("x"), Some(&3));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("dual");
        r.gauge("dual");
    }

    #[test]
    fn engine_registry_is_one_process_wide_instance() {
        let c = engine_registry().counter("obs_test_engine_counter");
        c.inc();
        // A second lookup sees the same atomics.
        let seen = engine_registry().snapshot().counters["obs_test_engine_counter"];
        assert!(seen >= 1, "engine registry lost a write: {seen}");
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let r = Registry::new();
        r.counter("reqs").add(7);
        r.gauge("depth").set(2);
        let h = r.histogram("lat_us");
        h.record(1);
        h.record(1);
        h.record(300);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE reqs counter\nreqs 7\n"), "{text}");
        assert!(text.contains("depth 2\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"511\"} 3\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("lat_us_sum 302\n"), "{text}");
        assert!(text.contains("lat_us_count 3\n"), "{text}");
    }

    #[test]
    fn prometheus_groups_labeled_series_under_one_family() {
        let r = Registry::new();
        r.counter("jobs{tenant=\"a\"}").add(2);
        r.counter("jobs{tenant=\"b\"}").add(5);
        let h = r.histogram("lat{tenant=\"a\"}");
        h.record(1);
        let text = r.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE jobs counter").count(), 1, "{text}");
        assert!(text.contains("jobs{tenant=\"a\"} 2\n"), "{text}");
        assert!(text.contains("jobs{tenant=\"b\"} 5\n"), "{text}");
        assert!(!text.contains("# TYPE jobs{"), "labels leaked into a TYPE line: {text}");
        assert!(text.contains("# TYPE lat histogram\n"), "{text}");
        assert!(text.contains("lat_bucket{tenant=\"a\",le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("lat_bucket{tenant=\"a\",le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("lat_sum{tenant=\"a\"} 1\n"), "{text}");
        assert!(text.contains("lat_count{tenant=\"a\"} 1\n"), "{text}");
    }
}
