//! Lock-minimal span recorder behind the `trace` feature.
//!
//! Production code marks timed regions with RAII guards:
//!
//! ```
//! {
//!     let mut s = nemfpga_obs::span("flow", "route");
//!     s.set_arg("iterations", 12);
//! } // span recorded on drop
//! ```
//!
//! Recording only happens inside an armed [`TraceSession`]. The cost
//! model mirrors `nemfpga-runtime`'s fault points:
//!
//! * feature off — [`span`] returns a zero-sized guard and every call
//!   is an `#[inline(always)]` no-op the optimizer deletes;
//! * feature on, disarmed — one relaxed-ish atomic load per site;
//! * feature on, armed — a clock read plus a push onto a thread-local
//!   buffer. Buffers drain into the global sink in batches of
//!   [`FLUSH_AT`] (and on thread exit), so the sink mutex is touched
//!   roughly once per 64 spans per thread, never per span.
//!
//! Long-lived threads that outlive a session (the service worker pool)
//! call [`flush_thread`] at job boundaries so their spans are visible
//! when the session finishes. Timestamps come from [`crate::clock`],
//! which deterministic harnesses can pin.

/// One completed span, as drained from a [`TraceSession`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Category (chrome://tracing `cat`): a coarse subsystem name.
    pub cat: &'static str,
    /// Span name (chrome://tracing `name`): the timed operation.
    pub name: &'static str,
    /// Start, in [`crate::clock::now_nanos`] nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small per-process thread id (1-based, assignment order).
    pub tid: u64,
    /// Numeric annotations (e.g. `("rerouted", 37)`).
    pub args: Vec<(&'static str, u64)>,
}

/// Whether the span recorder is compiled in (`trace` feature).
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "trace")
}

#[cfg(feature = "trace")]
mod imp {
    use super::SpanRecord;
    use crate::clock;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard};

    /// Thread-local buffer length that triggers a drain into the sink.
    pub const FLUSH_AT: usize = 64;

    static ARMED: AtomicBool = AtomicBool::new(false);
    static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    /// Serializes sessions: they drain one process-global sink.
    static SESSION: Mutex<()> = Mutex::new(());

    struct ThreadBuf {
        tid: u64,
        buf: Vec<SpanRecord>,
    }

    impl ThreadBuf {
        fn flush(&mut self) {
            if self.buf.is_empty() {
                return;
            }
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            sink.append(&mut self.buf);
        }
    }

    impl Drop for ThreadBuf {
        fn drop(&mut self) {
            self.flush();
        }
    }

    thread_local! {
        static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            buf: Vec::new(),
        });
    }

    /// An open span; records itself on drop. Returned disarmed (a
    /// no-op) when no session is active.
    #[must_use = "a span guard measures the scope it lives in"]
    pub struct SpanGuard(Option<OpenSpan>);

    struct OpenSpan {
        cat: &'static str,
        name: &'static str,
        start_ns: u64,
        args: Vec<(&'static str, u64)>,
    }

    impl SpanGuard {
        /// Attaches a numeric annotation (no-op when disarmed).
        #[inline]
        pub fn set_arg(&mut self, key: &'static str, value: u64) {
            if let Some(open) = self.0.as_mut() {
                open.args.push((key, value));
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(open) = self.0.take() else { return };
            let record = SpanRecord {
                cat: open.cat,
                name: open.name,
                start_ns: open.start_ns,
                dur_ns: clock::now_nanos().saturating_sub(open.start_ns),
                tid: 0, // stamped below from the thread-local
                args: open.args,
            };
            // During thread teardown the TLS slot may already be gone;
            // fall straight through to the sink so the span survives.
            let fallback = match TLS.try_with(|tls| {
                let mut tls = tls.borrow_mut();
                let mut record = record.clone();
                record.tid = tls.tid;
                tls.buf.push(record);
                if tls.buf.len() >= FLUSH_AT {
                    tls.flush();
                }
            }) {
                Ok(()) => None,
                Err(_) => Some(record),
            };
            if let Some(record) = fallback {
                SINK.lock().unwrap_or_else(|e| e.into_inner()).push(record);
            }
        }
    }

    /// Opens a span (armed sessions only; one atomic load otherwise).
    #[inline]
    pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
        if !ARMED.load(Ordering::Acquire) {
            return SpanGuard(None);
        }
        SpanGuard(Some(OpenSpan { cat, name, start_ns: clock::now_nanos(), args: Vec::new() }))
    }

    /// Drains this thread's buffer into the global sink.
    pub fn flush_thread() {
        let _ = TLS.try_with(|tls| tls.borrow_mut().flush());
    }

    /// RAII over an armed recording window. Sessions serialize on a
    /// process-global lock (the sink is global); dropping without
    /// [`TraceSession::finish`] disarms and discards.
    pub struct TraceSession {
        _serial: MutexGuard<'static, ()>,
    }

    impl TraceSession {
        /// Arms recording, starting from an empty sink.
        pub fn begin() -> TraceSession {
            let serial = SESSION.lock().unwrap_or_else(|e| e.into_inner());
            SINK.lock().unwrap_or_else(|e| e.into_inner()).clear();
            ARMED.store(true, Ordering::Release);
            TraceSession { _serial: serial }
        }

        /// Disarms and returns every recorded span, ordered by
        /// (start, tid) so output is stable under a pinned clock.
        pub fn finish(self) -> Vec<SpanRecord> {
            ARMED.store(false, Ordering::Release);
            flush_thread();
            let mut spans = std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()));
            spans.sort_by_key(|s| (s.start_ns, s.tid, s.name));
            spans
        }
    }

    impl Drop for TraceSession {
        fn drop(&mut self) {
            ARMED.store(false, Ordering::Release);
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::SpanRecord;

    /// Zero-sized stand-in; every method folds away.
    #[must_use = "a span guard measures the scope it lives in"]
    pub struct SpanGuard(());

    impl SpanGuard {
        /// No-op without the `trace` feature.
        #[inline(always)]
        pub fn set_arg(&mut self, _key: &'static str, _value: u64) {}
    }

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn span(_cat: &'static str, _name: &'static str) -> SpanGuard {
        SpanGuard(())
    }

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn flush_thread() {}

    /// Inert stand-in: sessions exist so callers compile either way,
    /// but record nothing.
    pub struct TraceSession(());

    impl TraceSession {
        /// Returns an inert session.
        pub fn begin() -> TraceSession {
            TraceSession(())
        }

        /// Always empty without the `trace` feature.
        pub fn finish(self) -> Vec<SpanRecord> {
            Vec::new()
        }
    }
}

pub use imp::{flush_thread, span, SpanGuard, TraceSession};

#[cfg(all(test, not(feature = "trace")))]
mod noop_tests {
    use super::*;

    #[test]
    fn disabled_sites_are_zero_sized_and_sessions_stay_empty() {
        assert!(!enabled());
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        let session = TraceSession::begin();
        {
            let mut s = span("t", "noop");
            s.set_arg("k", 1);
        }
        flush_thread();
        assert!(session.finish().is_empty());
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::clock;

    #[test]
    fn disarmed_spans_record_nothing() {
        let _serial = crate::clock::test_globals_lock();
        {
            let mut s = span("t", "ignored");
            s.set_arg("k", 1);
        }
        let session = TraceSession::begin();
        assert!(session.finish().is_empty());
    }

    #[test]
    fn armed_spans_capture_nesting_args_and_pinned_clock() {
        let _serial = crate::clock::test_globals_lock();
        let session = TraceSession::begin();
        clock::install_manual_clock(1_000);
        {
            let mut outer = span("t", "outer");
            outer.set_arg("n", 42);
            clock::advance(500);
            {
                let _inner = span("t", "inner");
                clock::advance(250);
            }
            clock::advance(250);
        }
        clock::use_real_clock();
        let spans = session.finish();
        assert_eq!(spans.len(), 2);
        // Sorted by start: outer (1000) before inner (1500).
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].start_ns, 1_000);
        assert_eq!(spans[0].dur_ns, 1_000);
        assert_eq!(spans[0].args, vec![("n", 42)]);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].start_ns, 1_500);
        assert_eq!(spans[1].dur_ns, 250);
        assert_eq!(spans[0].tid, spans[1].tid);
    }

    #[test]
    fn spawned_threads_flush_on_exit_with_distinct_tids() {
        let _serial = crate::clock::test_globals_lock();
        let session = TraceSession::begin();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("t", "worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let spans = session.finish();
        assert_eq!(spans.len(), 3);
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread gets its own tid");
    }
}
