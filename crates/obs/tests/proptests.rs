//! Property tests for the histogram algebra.
//!
//! The service's `/v1/metrics` quantiles and the bench-side merge path
//! both lean on three structural guarantees: counts are *exact* (every
//! `record` is visible in exactly one bucket), merge is associative and
//! commutative (so per-shard histograms combine in any order), and the
//! bucket layout is monotone (so cumulative Prometheus buckets and
//! quantile scans are well-defined).

use nemfpga_obs::metrics::{
    bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS,
};
use proptest::prelude::*;

fn filled(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every recorded observation lands in exactly one bucket, and the
    /// sum tracks the (wrapping) sum of inputs.
    #[test]
    fn total_count_is_exact(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let s = filled(&values);
        prop_assert_eq!(s.count(), values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(s.sum, expected_sum);
    }

    /// Merging snapshots is associative and commutative, and merging
    /// equals recording the concatenated stream in one histogram.
    #[test]
    fn merge_is_associative_commutative_and_lossless(
        xs in prop::collection::vec(any::<u64>(), 0..60),
        ys in prop::collection::vec(any::<u64>(), 0..60),
        zs in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        let (a, b, c) = (filled(&xs), filled(&ys), filled(&zs));
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        prop_assert_eq!(a.merged(&b).merged(&c), filled(&all));
    }

    /// `merge_from` on live histograms agrees with snapshot merge.
    #[test]
    fn live_merge_matches_snapshot_merge(
        xs in prop::collection::vec(any::<u64>(), 0..60),
        ys in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        let a = Histogram::default();
        for &v in &xs {
            a.record(v);
        }
        let b = Histogram::default();
        for &v in &ys {
            b.record(v);
        }
        let expected = a.snapshot().merged(&b.snapshot());
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), expected);
    }

    /// The bucket layout is monotone: larger values never map to
    /// earlier buckets, and each value is <= its bucket's upper bound.
    #[test]
    fn bucket_layout_is_monotone(v in any::<u64>(), w in any::<u64>()) {
        let (lo, hi) = (v.min(w), v.max(w));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        prop_assert!(lo <= bucket_upper_bound(bucket_index(lo)));
        prop_assert!(bucket_index(hi) < BUCKETS);
    }

    /// Quantiles are honest: the reported value is an upper bound on
    /// the true order statistic and within the 2x log-bucket envelope.
    #[test]
    fn quantile_bounds_the_true_order_statistic(
        values in prop::collection::vec(0u64..1_000_000, 1..150),
        q_millis in 0u64..1001,
    ) {
        let q = q_millis as f64 / 1000.0;
        let s = filled(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let reported = s.quantile(q);
        prop_assert!(reported >= truth, "reported {reported} < true {truth}");
        prop_assert!(
            reported <= truth.saturating_mul(2).max(1),
            "reported {reported} blows the 2x envelope over {truth}"
        );
    }
}
