//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace's test suites use.
//!
//! The real proptest cannot be fetched (no crates.io access), so this
//! shim keeps the same *test source code* compiling and meaningful:
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {..} }`
//! expands to a `#[test]` that samples each strategy from a per-test
//! deterministic ChaCha stream and runs the body for `cases` iterations.
//! `prop_assert!`/`prop_assert_eq!` panic with the failing inputs printed
//! by the harness through ordinary test failure output. Shrinking is not
//! implemented — failures report the raw counterexample case index.

use std::ops::Range;

use rand_chacha::ChaCha8Rng;

pub use rand::Rng as __Rng;
pub use rand::SeedableRng as __SeedableRng;

/// Runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The sampling RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Builds the deterministic RNG for one property, salted by its name so
/// sibling properties draw independent streams.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    <TestRng as rand::SeedableRng>::seed_from_u64(h)
}

/// A source of random values (sampling only; no shrinking).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps resampling until `f` returns `Some`; panics after 10 000
    /// consecutive rejections (the property's generator is then broken).
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, reason }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 consecutive samples: {}", self.reason);
    }
}

impl<T: rand::UniformSampled + Copy> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                <$t as rand::Standard>::sample_standard(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_standard!(bool, u32, u64, f64);

/// `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! `prop::collection` equivalents.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything usable as a collection size: a fixed count or a range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.start..self.end)
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Drop-in `proptest::prelude`.

    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};

    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its precondition fails. Must appear at the
/// top level of a `proptest!` body (it `continue`s the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..100 {
            let x = Strategy::sample(&(1.5f64..9.0), &mut rng);
            assert!((1.5..9.0).contains(&x));
        }
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = crate::test_rng("fm");
        let even = (0u32..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&even, &mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro front-end itself: bindings, tuples, collections.
        #[test]
        fn macro_smoke(x in 0usize..10, v in prop::collection::vec(any::<bool>(), 1..5)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
