//! No-op stand-ins for `#[derive(Serialize, Deserialize)]`.
//!
//! The build environment has no access to crates.io, so the real
//! `serde_derive` cannot be vendored. The workspace only uses serde for
//! derive annotations (no `serde_json` or other serializer is linked);
//! emitting nothing preserves every API while keeping the derives legal.
//! `attributes(serde)` keeps field/container attributes like
//! `#[serde(transparent)]` inert rather than unknown.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
