//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The real criterion cannot be fetched (no crates.io access). This shim
//! keeps `cargo bench` working: each benchmark is warmed up, calibrated to
//! a target measurement window, sampled `sample_size` times, and reported
//! as min/median/mean wall-clock per iteration. `cargo bench -- --test`
//! runs every benchmark exactly once (the smoke mode CI uses), and
//! positional CLI arguments filter benchmarks by substring. Results
//! accumulate in a process-wide registry that [`write_summary_json`] can
//! dump for downstream tooling (e.g. `BENCH_pnr.json`).

use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    pub name: String,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
    /// True when run under `--test` (single smoke iteration, no timing).
    pub smoke: bool,
}

static REGISTRY: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// All records measured so far in this process, in execution order.
pub fn records() -> Vec<BenchRecord> {
    REGISTRY.lock().expect("registry lock").clone()
}

/// Dumps every measured benchmark to `path` as a JSON array.
///
/// # Panics
///
/// Panics if the file cannot be written (benches treat that as fatal).
pub fn write_summary_json(path: &str) {
    let records = records();
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"min_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"mean_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}, \"smoke\": {}}}{}\n",
            r.name.replace('"', "'"),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            r.iters_per_sample,
            r.smoke,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    let mut f = std::fs::File::create(path).expect("create benchmark summary");
    f.write_all(out.as_bytes()).expect("write benchmark summary");
    println!("wrote benchmark summary: {path}");
}

#[derive(Debug, Clone)]
struct Options {
    /// `--test`: run each bench once, skip measurement.
    smoke: bool,
    /// Positional substrings: run only matching benchmark names.
    filters: Vec<String>,
}

impl Options {
    fn from_args() -> Self {
        let mut smoke = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                // Flags cargo/criterion conventionally pass; all ignorable
                // for this harness.
                "--bench" | "--profile-time" | "--noplot" | "--quiet" | "--verbose" => {}
                other if other.starts_with('-') => {}
                other => filters.push(other.to_owned()),
            }
        }
        Self { smoke, filters }
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    result: Option<BenchRecord>,
}

impl Bencher {
    /// Measures `f`, criterion-style: warm-up, iteration-count
    /// calibration, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.result = Some(BenchRecord {
                name: String::new(),
                min_ns: 0.0,
                median_ns: 0.0,
                mean_ns: 0.0,
                samples: 0,
                iters_per_sample: 1,
                smoke: true,
            });
            return;
        }
        // Warm-up and calibration: grow the per-sample iteration count
        // until one sample takes at least ~2 ms (or one call is clearly
        // long enough to time directly).
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        // Budget ~300 ms of measurement across the samples.
        let budget = 0.3f64;
        let per_sample = (budget / self.sample_size as f64 / per_iter.max(1e-9)).floor();
        let iters = (per_sample as u64).clamp(1, 1 << 24);
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.result = Some(BenchRecord {
            name: String::new(),
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            samples: samples_ns.len(),
            iters_per_sample: iters,
            smoke: false,
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(name: &str, options: &Options, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if !options.matches(name) {
        return;
    }
    let mut b = Bencher { smoke: options.smoke, sample_size, result: None };
    f(&mut b);
    let Some(mut record) = b.result.take() else {
        return; // Closure never called b.iter.
    };
    record.name = name.to_owned();
    if record.smoke {
        println!("Testing {name} ... ok");
    } else {
        println!(
            "{name:<55} time: [{} {} {}]",
            human(record.min_ns),
            human(record.median_ns),
            human(record.mean_ns)
        );
    }
    REGISTRY.lock().expect("registry lock").push(record);
}

/// Top-level benchmark context, mirroring `criterion::Criterion`.
pub struct Criterion {
    options: Options,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { options: Options::from_args(), sample_size: 20 }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; this shim already did in `default`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &self.options, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, prefix: name.to_owned(), sample_size: None }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, &self.criterion.options, samples, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_registers() {
        let options = Options { smoke: false, filters: Vec::new() };
        run_one("shim/self_test", &options, 3, &mut |b| {
            b.iter(|| std::hint::black_box(3u64.pow(7)))
        });
        let recs = records();
        let r = recs.iter().find(|r| r.name == "shim/self_test").expect("registered");
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
    }

    #[test]
    fn filters_select_by_substring() {
        let options = Options { smoke: true, filters: vec!["match_me".into()] };
        assert!(options.matches("group/match_me_please"));
        assert!(!options.matches("group/other"));
    }
}
