//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The container has no crates.io access. This shim reimplements the
//! exact trait surface the code calls — `RngCore`, `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::{from_seed, seed_from_u64}` and
//! `seq::SliceRandom::{choose, shuffle}` — with deterministic, documented
//! algorithms. Streams are *not* bit-compatible with upstream rand; every
//! consumer in this workspace only relies on per-seed determinism, which
//! the test suite pins.

use std::ops::Range;

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types drawable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits of one 64-bit draw.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range (`Rng::gen_range`).
pub trait UniformSampled: Sized + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample_standard(rng);
        // Clamp so accumulated FP error can never emit `hi` itself.
        let v = lo + u * (hi - lo);
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                debug_assert!(span > 0, "gen_range needs a non-empty range");
                // Widening multiply maps 64 random bits onto the span with
                // negligible (< 2^-64) bias — deterministic and branch-free.
                let r = rng.next_u64() as u128;
                lo + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience methods every `RngCore` gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit state into a full seed via SplitMix64 (the same
    /// construction upstream rand uses, so low-entropy seeds decorrelate).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Slice helpers mirroring `rand::seq`.

    use super::{Rng, UniformSampled};

    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    //! A small default generator for completeness (SplitMix64-based).

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit SplitMix generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Self { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[derive(Default)]
    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = Counter::default();
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = Counter::default();
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&y));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Counter::default();
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter::default();
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
