//! Offline stand-in for the subset of `serde` this workspace touches.
//!
//! The container has no crates.io access, so the real serde cannot be
//! fetched. The workspace only *annotates* types with the derives — no
//! serializer crate is linked — so marker traits plus no-op derive macros
//! reproduce the whole API surface in use. If a future change needs real
//! serialization, replace this shim with a vendored serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (never used as a bound here).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (never used as a bound here).
pub trait Deserialize<'de> {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
