//! ChaCha-based RNGs for the offline `rand` shim.
//!
//! Implements the RFC 7539 ChaCha block function (8- and 20-round
//! variants) keyed from a 32-byte seed. Output streams are deterministic
//! per seed but intentionally not bit-compatible with upstream
//! `rand_chacha` (nothing in the workspace depends on upstream streams).

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 16 input words -> 16 output words after `rounds`.
fn chacha_block(input: &[u32; 16], rounds: usize) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column rounds.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (out, inp) in x.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    x
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            /// Key (words 4..12) + nonce/stream (words 14..16); word 12/13
            /// is the 64-bit block counter.
            state: [u32; 16],
            buffer: [u32; 16],
            /// Next unread word in `buffer`; 16 = exhausted.
            cursor: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.state, $rounds);
                let counter =
                    (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
                self.state[12] = counter as u32;
                self.state[13] = (counter >> 32) as u32;
                self.cursor = 0;
            }

            /// Selects an independent output stream (maps to the nonce
            /// words), mirroring `rand_chacha`'s `set_stream`.
            pub fn set_stream(&mut self, stream: u64) {
                self.state[14] = stream as u32;
                self.state[15] = (stream >> 32) as u32;
                self.state[12] = 0;
                self.state[13] = 0;
                self.cursor = 16;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.cursor >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.cursor];
                self.cursor += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CHACHA_CONSTANTS);
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                }
                // Counter and nonce start at zero.
                Self { state, buffer: [0; 16], cursor: 16 }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds (fast, statistically strong).");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds (reference strength).");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_output_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn rfc7539_chacha20_block() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00:00:00:09:00:00:00:4a:00:00:00:00.
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&super::CHACHA_CONSTANTS);
        for i in 0..8 {
            let b = [(4 * i) as u8, (4 * i + 1) as u8, (4 * i + 2) as u8, (4 * i + 3) as u8];
            input[4 + i] = u32::from_le_bytes(b);
        }
        input[12] = 1;
        input[13] = u32::from_le_bytes([0x00, 0x00, 0x00, 0x09]);
        input[14] = u32::from_le_bytes([0x00, 0x00, 0x00, 0x4a]);
        input[15] = 0;
        let out = chacha_block(&input, 20);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[15], 0x4e3c_50a2);
    }
}
