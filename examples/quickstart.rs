//! Quickstart: the paper in five minutes.
//!
//! 1. Build the fabricated NEM relay and watch its hysteresis (Fig. 2b).
//! 2. Program a 2×2 relay crossbar with half-select voltages (Fig. 5).
//! 3. Evaluate a small design on a CMOS-only vs a CMOS-NEM FPGA.
//!
//! Run with: `cargo run --release --example quickstart`

use nemfpga::flow::{evaluate, EvaluationConfig};
use nemfpga::report::Comparison;
use nemfpga::variant::FpgaVariant;
use nemfpga_crossbar::array::{Configuration, CrossbarArray};
use nemfpga_crossbar::levels::ProgrammingLevels;
use nemfpga_crossbar::program::program;
use nemfpga_device::iv::{sweep, SweepConfig};
use nemfpga_device::{NemRelayDevice, Relay};
use nemfpga_netlist::synth::SynthConfig;
use nemfpga_tech::units::Volts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The device ---------------------------------------------------
    let device = NemRelayDevice::fabricated();
    println!(
        "fabricated relay: Vpi = {:.2} V, Vpo = {:.2} V, hysteresis window {:.2} V",
        device.pull_in_voltage().value(),
        device.pull_out_voltage().value(),
        device.hysteresis_window().value(),
    );
    let mut relay = Relay::new(device.clone());
    let curve = sweep(&mut relay, Volts::new(8.0), &SweepConfig::paper_fig2b())?;
    println!(
        "I-V sweep observes pull-in at {:.2} V and pull-out at {:.2} V",
        curve.observed_vpi.expect("relay pulled in").value(),
        curve.observed_vpo.expect("relay released").value(),
    );

    // --- 2. The crossbar --------------------------------------------------
    let mut xbar = CrossbarArray::uniform(2, 2, device)?;
    let mut target = Configuration::all_off(2, 2);
    target.set(0, 0, true);
    target.set(1, 1, true);
    let log = program(&mut xbar, &target, &ProgrammingLevels::paper_demo())?;
    println!(
        "programmed 2x2 crossbar to the diagonal pattern in {} steps ({} relay actuations)",
        log.steps.len(),
        log.switching_events,
    );
    assert_eq!(xbar.state_configuration(), target);

    // --- 3. The FPGA ------------------------------------------------------
    let cfg = EvaluationConfig::fast(42);
    let variants = vec![FpgaVariant::cmos_baseline(&cfg.node), FpgaVariant::cmos_nem(4.0)];
    let netlist = SynthConfig::tiny("quickstart", 60, 42).generate()?;
    let eval = evaluate(netlist, &cfg, &variants)?;
    println!(
        "implemented 'quickstart' (60 LUTs): Wmin = {:?}, operating W = {}",
        eval.w_min, eval.channel_width,
    );
    print!("{}", Comparison::against_baseline(&eval));
    Ok(())
}
