//! The selective buffer removal / downsizing technique in isolation
//! (Sec. 3.2 and 3.4).
//!
//! Designs a delay-optimal inverter chain for a segment wire, then
//! "redesigns it while pretending that it drives a smaller capacitive
//! load" (up to 8× smaller, as the paper sweeps) and prints the resulting
//! delay / leakage / switched-capacitance / area trade-off — the raw
//! material of Fig. 12 before the CAD flow ever runs.
//!
//! Run with: `cargo run --release --example buffer_downsizing`

use nemfpga_tech::buffer::BufferChain;
use nemfpga_tech::gates::vt_drop_delay_penalty;
use nemfpga_tech::interconnect::{InterconnectModel, MetalLayer};
use nemfpga_tech::process::ProcessNode;
use nemfpga_tech::switch::RoutingSwitch;
use nemfpga_tech::units::Meters;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = ProcessNode::ptm_22nm();
    let wires = InterconnectModel::ptm_22nm();

    // An L=4 segment wire at a ~20 um tile pitch.
    let seg = wires.wire(MetalLayer::Intermediate, Meters::from_micro(80.0));
    println!(
        "segment wire: {:.0} um, {:.1} fF, {:.0} Ohm",
        seg.length.as_micro(),
        seg.c_total.value() * 1e15,
        seg.r_total.value(),
    );

    let full = BufferChain::design(&node, seg.c_total);
    println!(
        "delay-optimal chain: {} stages, sizes {:?}",
        full.num_stages(),
        full.stage_sizes().iter().map(|s| (s * 10.0).round() / 10.0).collect::<Vec<_>>(),
    );

    println!("\npretend-load divisor sweep (the paper's 1x..8x):");
    println!("  div   stages   delay(ps)  leak(nW)  sw-cap(fF)  area(um^2)");
    for div in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0] {
        let chain = BufferChain::design_downsized(&node, seg.c_total, div)?;
        println!(
            "  {:>3.1}  {:>6}   {:>8.1}  {:>8.1}  {:>9.2}  {:>9.4}",
            div,
            chain.num_stages(),
            chain.delay(&node, seg.c_total).as_pico(),
            chain.leakage(&node).value() * 1e9,
            chain.switched_cap(&node).value() * 1e15,
            chain.area(&node).value() * 1e12,
        );
    }

    // Why only NEM relays allow this: the switch that feeds the buffer.
    println!("\nthe switch feeding each buffer:");
    for (label, sw) in [
        ("NMOS pass transistor (10x min)", RoutingSwitch::nmos_pass(&node, 10.0)),
        ("NEM relay (paper Fig. 11)", RoutingSwitch::nem_relay_paper()),
        ("NEM relay (demo 100k contacts)", RoutingSwitch::nem_relay_demo_contact()),
    ] {
        println!(
            "  {label}: Ron = {:>6.1} kOhm, leak = {:>5.1} nW, delay penalty {:.2}x, needs restorer: {}",
            sw.r_on.value() / 1e3,
            sw.leakage.value() * 1e9,
            sw.delay_penalty,
            sw.needs_level_restoration,
        );
    }
    println!(
        "\n(the Vt-drop penalty of {:.2}x on every CMOS routing hop is what NEM relays buy back,",
        vt_drop_delay_penalty(&node),
    );
    println!(" and that speed headroom is what the technique spends on smaller buffers)");

    // Level-restoring buffers: the CMOS-only tax.
    let restoring = BufferChain::design(&node, seg.c_total).with_level_restoration();
    println!(
        "\nhalf-latch restorer tax: leakage {:.1} nW vs plain {:.1} nW for the same chain",
        restoring.leakage(&node).value() * 1e9,
        full.leakage(&node).value() * 1e9,
    );
    Ok(())
}
