//! Fault injection and programmability yield: what the paper's test phase
//! is *for*.
//!
//! Injects the two failure classes the paper worries about (stiction and
//! contact-open, Sec. 2.3) into relay crossbars, shows how the
//! program-then-verify discipline catches them, and measures how coverage
//! depends on the test pattern — motivating the paper's exhaustive
//! verification of all 16 configurations.
//!
//! Run with: `cargo run --release --example fault_injection`

use nemfpga_crossbar::array::Configuration;
use nemfpga_crossbar::faults::{coverage_estimate, detect_faults, Fault, FaultKind};
use nemfpga_crossbar::levels::ProgrammingLevels;
use nemfpga_device::reliability::ReliabilityBudget;
use nemfpga_device::NemRelayDevice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = NemRelayDevice::fabricated();
    let levels = ProgrammingLevels::paper_demo();

    // --- One fault of each class, observed and missed --------------------
    println!("single-fault anatomy on a 2x2 crossbar:");
    let cases = [
        ("stuck-open, pattern exercises it", FaultKind::StuckOpen, 0b0010u64),
        ("stuck-open, pattern leaves it off", FaultKind::StuckOpen, 0b0100),
        ("stuck-closed, pattern wants it off", FaultKind::StuckClosed, 0b0000),
        ("stuck-closed, pattern wants it on", FaultKind::StuckClosed, 0b0010),
    ];
    for (label, kind, code) in cases {
        let report = detect_faults(
            2,
            2,
            &base,
            &[Fault { row: 0, col: 1, kind }],
            &Configuration::from_code(2, 2, code),
            &levels,
        )?;
        println!(
            "  {label:<38} detected = {:<5} mismatches {:?}",
            report.detected, report.mismatches
        );
    }

    // --- Exhaustive testing catches everything a single pattern misses ---
    let fault = Fault { row: 1, col: 0, kind: FaultKind::StuckOpen };
    let caught = (0..16u64)
        .filter(|&code| {
            detect_faults(2, 2, &base, &[fault], &Configuration::from_code(2, 2, code), &levels)
                .expect("runs")
                .detected
        })
        .count();
    println!("\nexhaustive sweep: a stuck-open relay is exposed by {caught}/16 configurations");
    println!("(any full sweep catches every fault -- the paper's verification strategy)");

    // --- Coverage statistics at larger sizes ------------------------------
    println!("\nrandom-single-pattern coverage (one programming pass):");
    for side in [2usize, 3, 4, 6] {
        let (stuck_closed, stuck_open) = coverage_estimate(side, side, &base, &levels, 80, 7);
        println!(
            "  {side}x{side}: stuck-closed {:>4.0}%, stuck-open {:>4.0}%",
            stuck_closed * 100.0,
            stuck_open * 100.0
        );
    }

    // --- And the wear budget that testing consumes ------------------------
    let budget = ReliabilityBudget::paper_default();
    let per_sweep = 2u64 * 16; // two actuations per config, 16 configs
    println!(
        "\nwear: an exhaustive 2x2 sweep costs ~{per_sweep} actuations; endurance {} cycles",
        budget.endurance_cycles
    );
    println!(
        "      => {:.0} full test sweeps available per relay lifetime",
        budget.endurance_cycles as f64 / per_sweep as f64
    );
    Ok(())
}
