//! The complete Fig. 10 evaluation flow on an MCNC-style benchmark:
//! pack → place → minimum-channel-width search → route → per-variant
//! timing, power, and area — producing one benchmark's slice of Fig. 12.
//!
//! Run with: `cargo run --release --example full_flow [-- <scale>]`
//! (`scale` in (0,1] shrinks the benchmark; default 0.1)

use nemfpga::flow::{evaluate, EvaluationConfig};
use nemfpga::sweep::{tradeoff_sweep, PAPER_DIVISORS};
use nemfpga::variant::FpgaVariant;
use nemfpga_netlist::stats::NetlistStats;
use nemfpga_netlist::synth::preset_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.1);

    // The tseng MCNC benchmark, scaled for a quick run.
    let mut cfg_synth = preset_by_name("tseng").expect("tseng is a preset");
    cfg_synth.luts = ((cfg_synth.luts as f64 * scale) as usize).max(50);
    cfg_synth.inputs = (cfg_synth.inputs as f64 * scale.sqrt()).max(6.0) as usize;
    cfg_synth.outputs = (cfg_synth.outputs as f64 * scale.sqrt()).max(6.0) as usize;
    let netlist = cfg_synth.generate()?;
    let stats = NetlistStats::of(&netlist)?;
    println!(
        "benchmark tseng (scaled {scale}): {} LUTs, {} FFs, {} PIs, {} POs, depth {}",
        stats.luts, stats.latches, stats.inputs, stats.outputs, stats.logic_depth,
    );

    let cfg = EvaluationConfig::paper_defaults(7);
    let variants = vec![
        FpgaVariant::cmos_baseline(&cfg.node),
        FpgaVariant::cmos_nem_without_technique(),
        FpgaVariant::cmos_nem(4.0),
    ];
    let eval = evaluate(netlist.clone(), &cfg, &variants)?;
    println!(
        "\nimplementation: grid {}x{}, Wmin = {:?}, W = {}, routed wirelength {} tiles",
        eval.grid.0, eval.grid.1, eval.w_min, eval.channel_width, eval.wirelength_tiles,
    );
    {
        // Congestion picture at the low-stress width.
        use nemfpga_pnr::flow::{implement, WidthPolicy};
        let imp = implement(
            netlist.clone(),
            &cfg.params,
            &cfg.place,
            &cfg.route,
            WidthPolicy::Fixed(eval.channel_width),
        )?;
        let u = nemfpga_pnr::route::utilization(&imp.rr, &imp.routing);
        println!(
            "utilization: {:.0}% of wires, peak channel occupancy {:.0}%, {} switches on",
            u.wire_utilization * 100.0,
            u.peak_channel_occupancy * 100.0,
            u.switches_used,
        );
    }
    println!("evaluation clock: {:.0} MHz (baseline fmax)\n", eval.clock.value() / 1e6);

    println!(
        "{:<46} {:>9} {:>10} {:>10} {:>10}",
        "variant", "cp (ns)", "dyn (mW)", "leak (mW)", "tile (um2)"
    );
    for v in &eval.variants {
        println!(
            "{:<46} {:>9.2} {:>10.3} {:>10.3} {:>10.0}",
            v.variant.name,
            v.critical_path.as_nano(),
            v.power.dynamic.total().as_milli(),
            v.power.leakage.total().as_milli(),
            v.tile.footprint().value() * 1e12,
        );
    }
    let base = &eval.variants[0];
    println!("\nbaseline power detail:\n{}", base.power);

    // The Fig. 12 sweep for this benchmark.
    let (curve, _) = tradeoff_sweep(netlist, &cfg, &PAPER_DIVISORS)?;
    println!("\nFig. 12 trade-off (vs CMOS-only baseline):");
    println!("  div   speedup  dyn-red  leak-red  area-red");
    for p in &curve.points {
        println!(
            "  {:>3.1}  {:>7.2}  {:>7.2}  {:>8.2}  {:>8.2}",
            p.divisor, p.speedup, p.dynamic_reduction, p.leakage_reduction, p.area_reduction,
        );
    }
    let corner = curve.preferred_corner(1.0);
    println!(
        "\npreferred corner (no speed penalty): divisor {:.0} -> {:.2}x dynamic, {:.2}x leakage, {:.2}x area",
        corner.divisor, corner.dynamic_reduction, corner.leakage_reduction, corner.area_reduction,
    );
    Ok(())
}
