//! Half-select programming of NEM relay crossbars, end to end:
//!
//! * exhaustively verify all 16 configurations of the paper's 2×2 demo,
//!   printing a Fig. 5-style waveform for one of them;
//! * solve programming levels for a 100-relay population with process
//!   variation (Fig. 6) and program a 10×10 crossbar built from it;
//! * show what happens at scale: array programmability yield vs. size.
//!
//! Run with: `cargo run --release --example crossbar_programming`

use nemfpga_crossbar::array::{Configuration, CrossbarArray};
use nemfpga_crossbar::levels::ProgrammingLevels;
use nemfpga_crossbar::program::program;
use nemfpga_crossbar::waveform::{run_demo, Phase, WaveformConfig};
use nemfpga_crossbar::window::solve_window;
use nemfpga_crossbar::yield_analysis::{estimate_compliance, yield_curve};
use nemfpga_device::variation::{PopulationStats, VariationModel};
use nemfpga_device::NemRelayDevice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The 2x2 hardware demo -------------------------------------------
    let levels = ProgrammingLevels::paper_demo();
    let mut verified = 0;
    for code in 0..16u64 {
        let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated())?;
        let wave = run_demo(
            &mut xbar,
            &Configuration::from_code(2, 2, code),
            &levels,
            &WaveformConfig::paper_fig5(),
        )?;
        if wave.verify() {
            verified += 1;
        }
    }
    println!("2x2 crossbar: {verified}/16 configurations program, test, and reset correctly");

    let mut xbar = CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated())?;
    let wave = run_demo(
        &mut xbar,
        &Configuration::from_code(2, 2, 0b0110),
        &levels,
        &WaveformConfig::paper_fig5(),
    )?;
    println!("\nFig. 5c-style trace (beams swap onto opposite drains):");
    println!("  t(s)  phase    beam1  beam2  drain1 drain2");
    for p in wave.phase_points(Phase::Test).chain(wave.phase_points(Phase::Reset)) {
        println!(
            "  {:>4.0}  {:<7} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            p.time.value(),
            p.phase.to_string(),
            p.beams[0].value(),
            p.beams[1].value(),
            p.drains[0].value(),
            p.drains[1].value(),
        );
    }

    // --- A realistic population (Fig. 6) ----------------------------------
    let population = VariationModel::fabrication_default().sample_population(
        &NemRelayDevice::fabricated(),
        100,
        0xF166,
    );
    let stats = PopulationStats::of(&population);
    let window = solve_window(&stats)?;
    println!(
        "\n100-relay population: Vpi in [{:.2}, {:.2}] V, Vpo in [{:.2}, {:.2}] V",
        stats.vpi_min.value(),
        stats.vpi_max.value(),
        stats.vpo_min.value(),
        stats.vpo_max.value(),
    );
    println!(
        "solved window: Vhold = {:.2} V, Vselect = {:.2} V (worst margin {:.2} V)",
        window.levels.vhold.value(),
        window.levels.vselect.value(),
        window.worst_margin.value(),
    );

    let mut big = CrossbarArray::from_population(10, 10, &population)?;
    let mut target = Configuration::all_off(10, 10);
    for i in 0..10 {
        target.set(i, (3 * i + 1) % 10, true);
        target.set(i, (7 * i + 4) % 10, true);
    }
    program(&mut big, &target, &window.levels)?;
    println!(
        "10x10 crossbar from the measured population programmed correctly ({} relays on)",
        target.on_count(),
    );

    // --- Yield at FPGA scale ----------------------------------------------
    // The paper's own demo levels sit with "very small" noise margins; a
    // max-margin solved window is far safer. Compare both at scale.
    println!("\narray yield (per-relay compliance from 20k samples):");
    for (label, lvls, variation) in [
        ("paper demo levels, as-fabricated", levels, VariationModel::fabrication_default()),
        ("paper demo levels, tightened 4x ", levels, VariationModel::tightened(0.25)),
        ("solved max-margin, as-fabricated", window.levels, VariationModel::fabrication_default()),
    ] {
        let est = estimate_compliance(&NemRelayDevice::fabricated(), &variation, &lvls, 20_000, 9);
        let curve = yield_curve(&est, &[100, 10_000, 1_000_000]);
        println!(
            "  {label}: compliance {:.5} -> yield @100 {:.3}, @10k {:.3e}, @1M {:.3e}",
            est.compliance, curve[0].array_yield, curve[1].array_yield, curve[2].array_yield,
        );
    }
    println!("(the paper: tight Vpi control is what makes million-switch arrays feasible)");
    Ok(())
}
