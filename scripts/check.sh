#!/usr/bin/env bash
# Full local gate: format, lints, tests, and a smoke pass over every
# Criterion bench. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo bench -- --test (smoke)"
cargo bench --workspace -- --test

echo "All checks passed."
