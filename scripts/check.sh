#!/usr/bin/env bash
# Full local gate: format, lints, tests, a service smoke test, and a
# smoke pass over every Criterion bench. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast, with an actionable message, when a required cargo component
# is missing — a bare `cargo fmt` failure on a fresh toolchain is cryptic.
require_component() {
    local subcommand="$1" component="$2"
    if ! cargo "$subcommand" --version >/dev/null 2>&1; then
        echo "error: \`cargo $subcommand\` is not available." >&2
        echo "       Install it with: rustup component add $component" >&2
        exit 1
    fi
}
require_component fmt rustfmt
require_component clippy clippy

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> service smoke test (serve --self-test)"
cargo run -q -p nemfpga-bench --bin serve -- --self-test

echo "==> cargo bench -- --test (smoke)"
cargo bench --workspace -- --test

echo "All checks passed."
