#!/usr/bin/env bash
# Full local gate: format, lints, tests, a service smoke test, and a
# smoke pass over every Criterion bench. Run before pushing.
#
# `--chaos` appends the adversarial stage: the chaos driver over 20
# fixed seeds, both guarded-bug detection runs (which must FAIL loudly,
# proving the invariants have teeth), the differential matrix at two
# thread counts, and an audit that every `#[ignore]`d test is accounted
# for in TESTING.md.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_CHAOS=0
for arg in "$@"; do
    case "$arg" in
        --chaos) RUN_CHAOS=1 ;;
        *) echo "usage: scripts/check.sh [--chaos]" >&2; exit 2 ;;
    esac
done

# Fail fast, with an actionable message, when a required cargo component
# is missing — a bare `cargo fmt` failure on a fresh toolchain is cryptic.
require_component() {
    local subcommand="$1" component="$2"
    if ! cargo "$subcommand" --version >/dev/null 2>&1; then
        echo "error: \`cargo $subcommand\` is not available." >&2
        echo "       Install it with: rustup component add $component" >&2
        exit 1
    fi
}
require_component fmt rustfmt
require_component clippy clippy

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> service smoke test (serve --self-test)"
cargo run -q -p nemfpga-bench --bin serve -- --self-test

echo "==> cargo bench -- --test (smoke)"
cargo bench --workspace -- --test

if [[ "$RUN_CHAOS" -eq 1 ]]; then
    echo "==> chaos: 20 seeded fault plans against the live serve loop"
    cargo run -q --release -p nemfpga-testkit --bin chaos -- --seeds 0..20

    echo "==> chaos: guarded bugs must be caught when reintroduced"
    cargo run -q --release -p nemfpga-testkit --bin chaos -- \
        --seeds 0..3 --with-bug skip-double-check
    cargo run -q --release -p nemfpga-testkit --bin chaos -- \
        --seeds 0..3 --with-bug leak-inflight

    echo "==> differential: CAD equivalence matrix at 2 thread counts"
    cargo run -q --release -p nemfpga-testkit --bin differential -- --cases 56 --threads 4
    cargo run -q --release -p nemfpga-testkit --bin differential -- --cases 56 --threads 7

    echo "==> differential: injected divergence must shrink to the minimal case"
    cargo run -q --release -p nemfpga-testkit --bin differential -- --inject-divergence 5

    echo "==> audit: every #[ignore]d test must be documented in TESTING.md"
    ignored=$(grep -rn '#\[ignore' --include='*.rs' crates/ shims/ | grep -v 'TESTING.md' || true)
    if [[ -n "$ignored" ]]; then
        while IFS= read -r line; do
            test_name=$(sed -n "$(( $(echo "$line" | cut -d: -f2) + 1 )),+3p" \
                "$(echo "$line" | cut -d: -f1)" | grep -o 'fn [a-z_0-9]*' | head -1 | cut -d' ' -f2)
            if [[ -z "$test_name" ]] || ! grep -q "$test_name" TESTING.md; then
                echo "error: ignored test not referenced in TESTING.md: $line" >&2
                exit 1
            fi
        done <<< "$ignored"
    fi
fi

echo "All checks passed."
