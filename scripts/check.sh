#!/usr/bin/env bash
# Full local gate: format, lints, tests, a service smoke test, and a
# smoke pass over every Criterion bench. Run before pushing.
#
# `--chaos` appends the adversarial stage: the chaos driver over 20
# fixed seeds, both guarded-bug detection runs (which must FAIL loudly,
# proving the invariants have teeth), 8 seeded multi-tenant floods plus
# the weighted fair-share load test, the differential matrix at two
# thread counts, and an audit that every `#[ignore]`d test is accounted
# for in TESTING.md.
#
# `--chaos` also appends the hardening stage: 4 seeded crash loops
# proving journal-persisted poison-job quarantine, plus the staged
# overload brownout run of `loadgen --overload` with its exact
# admission ledger.
#
# `--recovery` appends the kill-and-restart stage: 12 seeded staged
# crashes mid-load, each restarted on the same journal + cache, with
# every recovery invariant checked (no accepted job lost, byte-identical
# results, one compute per key per process, reconciled metrics), plus a
# drain-mid-flood run of the load generator over real HTTP. `--chaos`
# implies `--recovery`.
#
# `--cluster` appends the multi-node stage: the 3-node kill + partition
# + rejoin chaos scenario over 6 seeds, then a real 3-process fleet
# (`serve --peers` on fixed ports) flooded twice by `loadgen --cluster`,
# which requires exactly one compute per key cluster-wide, byte-equal
# digests on every node, and a second pass served entirely from cache.
# `--chaos` implies `--cluster`.
#
# `--obs` appends the observability stage: the obs crate's tests with
# the `trace` feature armed, a traced `repro` run whose chrome://tracing
# file must cover all five flow stages with stdout byte-identical to an
# untraced run, and a smoke pass over the obs_overhead bench.
#
# `--bench` appends the performance stage: the route/sweep/service
# Criterion groups run *for real* (measured, release), their medians are
# merged into BENCH_pnr.json, and benchgate fails the build on any
# median more than 10% worse than the committed BENCH_baseline.json.
# The route group includes `route/graph_store_wmin`, pinning the
# graph-store speedup of the W_min binary search (its baseline entry
# was measured store-less, so a store regression shows up as a miss of
# the committed ≥20% win, not just noise).
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_CHAOS=0
RUN_RECOVERY=0
RUN_CLUSTER=0
RUN_OBS=0
RUN_BENCH=0
for arg in "$@"; do
    case "$arg" in
        --chaos) RUN_CHAOS=1; RUN_RECOVERY=1; RUN_CLUSTER=1 ;;
        --recovery) RUN_RECOVERY=1 ;;
        --cluster) RUN_CLUSTER=1 ;;
        --obs) RUN_OBS=1 ;;
        --bench) RUN_BENCH=1 ;;
        *) echo "usage: scripts/check.sh [--chaos] [--recovery] [--cluster] [--obs] [--bench]" >&2; exit 2 ;;
    esac
done

# Fail fast, with an actionable message, when a required cargo component
# is missing — a bare `cargo fmt` failure on a fresh toolchain is cryptic.
require_component() {
    local subcommand="$1" component="$2"
    if ! cargo "$subcommand" --version >/dev/null 2>&1; then
        echo "error: \`cargo $subcommand\` is not available." >&2
        echo "       Install it with: rustup component add $component" >&2
        exit 1
    fi
}
require_component fmt rustfmt
require_component clippy clippy

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> service smoke test (serve --self-test)"
cargo run -q -p nemfpga-bench --bin serve -- --self-test

echo "==> cargo bench -- --test (smoke)"
cargo bench --workspace -- --test

if [[ "$RUN_CHAOS" -eq 1 ]]; then
    echo "==> chaos: 20 seeded fault plans against the live serve loop"
    cargo run -q --release -p nemfpga-testkit --bin chaos -- --seeds 0..20

    echo "==> chaos: guarded bugs must be caught when reintroduced"
    cargo run -q --release -p nemfpga-testkit --bin chaos -- \
        --seeds 0..3 --with-bug skip-double-check
    cargo run -q --release -p nemfpga-testkit --bin chaos -- \
        --seeds 0..3 --with-bug leak-inflight

    echo "==> chaos: 8 seeded multi-tenant floods, every QoS invariant required"
    cargo run -q --release -p nemfpga-testkit --bin chaos -- --tenants --seeds 0..8

    echo "==> qos: weighted fair-share under load (loadgen --tenants)"
    cargo run -q --release -p nemfpga-bench --bin loadgen -- --tenants

    echo "==> hardening: 4 seeded crash loops, poison keys quarantined on schedule"
    cargo run -q --release -p nemfpga-testkit --bin chaos -- --crash-loop --seeds 0..4

    echo "==> hardening: staged overload brownout with exact ledger (loadgen --overload)"
    cargo run -q --release -p nemfpga-bench --bin loadgen -- --overload

    echo "==> differential: CAD equivalence matrix at 2 thread counts"
    cargo run -q --release -p nemfpga-testkit --bin differential -- --cases 56 --threads 4
    cargo run -q --release -p nemfpga-testkit --bin differential -- --cases 56 --threads 7

    echo "==> differential: injected divergence must shrink to the minimal case"
    cargo run -q --release -p nemfpga-testkit --bin differential -- --inject-divergence 5

    echo "==> audit: every #[ignore]d test must be documented in TESTING.md"
    ignored=$(grep -rn '#\[ignore' --include='*.rs' crates/ shims/ | grep -v 'TESTING.md' || true)
    if [[ -n "$ignored" ]]; then
        while IFS= read -r line; do
            test_name=$(sed -n "$(( $(echo "$line" | cut -d: -f2) + 1 )),+3p" \
                "$(echo "$line" | cut -d: -f1)" | grep -o 'fn [a-z_0-9]*' | head -1 | cut -d' ' -f2)
            if [[ -z "$test_name" ]] || ! grep -q "$test_name" TESTING.md; then
                echo "error: ignored test not referenced in TESTING.md: $line" >&2
                exit 1
            fi
        done <<< "$ignored"
    fi
fi

if [[ "$RUN_RECOVERY" -eq 1 ]]; then
    echo "==> recovery: 12 seeded kill-and-restart crashes, zero violations required"
    cargo run -q --release -p nemfpga-testkit --bin chaos -- --restart --seeds 0..12

    echo "==> recovery: drain mid-flood over HTTP, zero lost jobs required"
    cargo run -q --release -p nemfpga-bench --bin loadgen -- --chaos-restart \
        --requests 256 --unique 64 --concurrency 48 --threads 1 --drain-grace-ms 0
fi

if [[ "$RUN_CLUSTER" -eq 1 ]]; then
    echo "==> cluster: 6 seeded kill+partition+rejoin schedules, zero violations required"
    cargo run -q --release -p nemfpga-testkit --bin chaos -- --cluster --seeds 0..6

    echo "==> cluster: 3-process fleet over real HTTP, flooded twice by loadgen --cluster"
    cluster_dir=$(mktemp -d)
    PEERS="127.0.0.1:17871,127.0.0.1:17872,127.0.0.1:17873"
    declare -a cluster_pids=()
    cleanup_cluster() {
        for pid in "${cluster_pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
        for pid in "${cluster_pids[@]:-}"; do wait "$pid" 2>/dev/null || true; done
        rm -rf "$cluster_dir"
    }
    trap cleanup_cluster EXIT
    cargo build -q --release -p nemfpga-bench --bin serve --bin loadgen
    for i in 1 2 3; do
        port=$((17870 + i))
        target/release/serve --addr "127.0.0.1:$port" \
            --peers "$PEERS" --sync-interval-ms 200 --cluster-seed "$i" \
            --cache-dir "$cluster_dir/node-$i/cache" \
            --journal "$cluster_dir/node-$i/journal.log" \
            > "$cluster_dir/node-$i.log" 2>&1 &
        cluster_pids+=($!)
    done
    for i in 1 2 3; do
        port=$((17870 + i))
        for _ in $(seq 1 100); do
            if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then exec 3>&-; break; fi
            sleep 0.1
        done
    done
    target/release/loadgen --cluster --peers "$PEERS" --unique 24 --concurrency 12 || {
        echo "error: loadgen --cluster failed against the serve fleet" >&2
        for i in 1 2 3; do echo "--- node $i log ---" >&2; cat "$cluster_dir/node-$i.log" >&2; done
        exit 1
    }
    cleanup_cluster
    cluster_pids=()
    trap - EXIT
fi

if [[ "$RUN_OBS" -eq 1 ]]; then
    echo "==> obs: span recorder tests with the trace feature armed"
    cargo test -q -p nemfpga-obs --features trace

    echo "==> obs: traced repro covers all five flow stages, stdout unchanged"
    trace_dir=$(mktemp -d)
    trap 'rm -rf "$trace_dir"' EXIT
    cargo run -q -p nemfpga-bench --bin repro -- fig9 > "$trace_dir/plain.txt"
    cargo run -q -p nemfpga-bench --features obs --bin repro -- \
        fig9 --trace-out "$trace_dir/trace.json" \
        > "$trace_dir/traced.txt" 2> "$trace_dir/summary.txt"
    cmp "$trace_dir/plain.txt" "$trace_dir/traced.txt" || {
        echo "error: traced repro output diverged from the untraced run" >&2; exit 1; }
    for stage in pack place route sta power; do
        grep -q "\"name\":\"$stage\"" "$trace_dir/trace.json" || {
            echo "error: trace is missing the $stage stage" >&2
            cat "$trace_dir/summary.txt" >&2
            exit 1
        }
    done
    cat "$trace_dir/summary.txt"

    echo "==> obs: obs_overhead bench (smoke, trace feature on)"
    cargo bench -q -p nemfpga-bench --features obs --bench obs_benches -- --test
fi

if [[ "$RUN_BENCH" -eq 1 ]]; then
    echo "==> bench: route/sweep/cad and service groups, measured for real"
    bench_dir=$(mktemp -d)
    # ${trace_dir:+…} keeps the --obs stage's temp dir covered: a second
    # `trap … EXIT` replaces the first.
    trap 'rm -rf "$bench_dir" ${trace_dir:+"$trace_dir"}' EXIT
    BENCH_OUT="$bench_dir/cad.json" \
        cargo bench -q -p nemfpga-bench --bench cad_benches -- route sweep cad
    BENCH_OUT="$bench_dir/service.json" \
        cargo bench -q -p nemfpga-bench --bench service_benches

    echo "==> bench: merging medians into BENCH_pnr.json"
    cargo run -q --release -p nemfpga-bench --bin benchgate -- merge \
        BENCH_pnr.json "$bench_dir/cad.json" "$bench_dir/service.json"

    echo "==> bench: gating against BENCH_baseline.json (>10% median regression fails)"
    cargo run -q --release -p nemfpga-bench --bin benchgate -- compare \
        BENCH_baseline.json BENCH_pnr.json --max-regress 0.10 --groups route,sweep,service
fi

echo "All checks passed."
