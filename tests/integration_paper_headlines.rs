//! Integration: the paper's quantitative claims, checked end to end on a
//! mid-size benchmark. Shapes and ratios, not absolute numbers — see
//! EXPERIMENTS.md.

use nemfpga::flow::{evaluate, EvaluationConfig};
use nemfpga::sweep::{tradeoff_sweep, PAPER_DIVISORS};
use nemfpga::variant::FpgaVariant;
use nemfpga_netlist::synth::SynthConfig;

fn midsize_netlist(seed: u64) -> nemfpga_netlist::Netlist {
    let mut cfg = SynthConfig::tiny("headline", 260, seed);
    cfg.inputs = 30;
    cfg.outputs = 24;
    cfg.latch_fraction = 0.25;
    cfg.generate().expect("generates")
}

#[test]
fn headline_ratios_hold_at_the_iso_delay_corner() {
    let cfg = EvaluationConfig::fast(3);
    let (curve, _) = tradeoff_sweep(midsize_netlist(3), &cfg, &PAPER_DIVISORS).expect("sweep runs");
    let corner = curve.preferred_corner(1.0);

    // Paper: no speed penalty, ~2x dynamic, ~10x leakage, ~2x area.
    assert!(corner.speedup >= 1.0, "speed penalty at the corner: {}", corner.speedup);
    assert!(
        corner.dynamic_reduction > 1.4,
        "dynamic reduction {} too weak",
        corner.dynamic_reduction
    );
    assert!(
        corner.leakage_reduction > 5.0,
        "leakage reduction {} too weak",
        corner.leakage_reduction
    );
    assert!(corner.area_reduction > 1.45, "area reduction {} too weak", corner.area_reduction);
}

#[test]
fn technique_strictly_dominates_no_technique() {
    // Paper Sec. 3.4: without selective removal/downsizing, a CMOS-NEM
    // FPGA reaches only 1.8x area / 1.3x dynamic / 2x leakage.
    let cfg = EvaluationConfig::fast(5);
    let variants = vec![
        FpgaVariant::cmos_baseline(&cfg.node),
        FpgaVariant::cmos_nem_without_technique(),
        FpgaVariant::cmos_nem(8.0),
    ];
    let eval = evaluate(midsize_netlist(5), &cfg, &variants).expect("evaluates");
    let base = &eval.variants[0];
    let plain = &eval.variants[1];
    let technique = &eval.variants[2];

    let leak_plain = base.power.leakage.total() / plain.power.leakage.total();
    let leak_tech = base.power.leakage.total() / technique.power.leakage.total();
    assert!(leak_tech > leak_plain * 1.8, "technique leakage {leak_tech} vs plain {leak_plain}");

    let dyn_plain = base.power.dynamic.total() / plain.power.dynamic.total();
    let dyn_tech = base.power.dynamic.total() / technique.power.dynamic.total();
    assert!(dyn_tech > dyn_plain, "technique dynamic {dyn_tech} vs plain {dyn_plain}");

    let area_plain = base.total_area / plain.total_area;
    let area_tech = base.total_area / technique.total_area;
    assert!(area_tech > area_plain, "technique area {area_tech} vs plain {area_plain}");
    // The no-technique design already gets ~2x from stacking + SRAM
    // removal alone.
    assert!(area_plain > 1.5, "stacking-only area reduction {area_plain}");
}

#[test]
fn baseline_power_breakdown_has_fig9_shape() {
    let cfg = EvaluationConfig::fast(7);
    let variants = vec![FpgaVariant::cmos_baseline(&cfg.node)];
    let eval = evaluate(midsize_netlist(7), &cfg, &variants).expect("evaluates");
    let v = &eval.variants[0];

    let [wires, buffers, luts, clock] = v.power.dynamic.fractions();
    // Wires + buffers dominate dynamic power (paper: 70% combined).
    assert!(wires + buffers > 0.5, "wires {wires} + buffers {buffers}");
    assert!(luts > 0.05 && luts < 0.45, "luts {luts}");
    assert!(clock > 0.02 && clock < 0.3, "clock {clock}");

    let [lbuf, sram, switches, logic] = v.power.leakage.fractions();
    // Routing buffers dominate leakage (paper: 70%).
    assert!(lbuf > 0.55, "buffer leakage share {lbuf}");
    assert!(sram > 0.03 && sram < 0.25, "sram share {sram}");
    assert!(switches > 0.03 && switches < 0.25, "switch share {switches}");
    assert!(logic > 0.03 && logic < 0.25, "logic share {logic}");
}

#[test]
fn demo_quality_contacts_erase_the_speed_headroom() {
    // Sec. 2.3: the 2x2 demo measured ~100 kOhm contacts; "high Ron values
    // are not desirable for FPGA programmable routing". With them, the
    // technique variant must be slower than with 2 kOhm contacts.
    let cfg = EvaluationConfig::fast(9);
    let variants = vec![
        FpgaVariant::cmos_baseline(&cfg.node),
        FpgaVariant::cmos_nem(2.0),
        FpgaVariant::cmos_nem_demo_contacts(2.0),
    ];
    let eval = evaluate(midsize_netlist(9), &cfg, &variants).expect("evaluates");
    let good = &eval.variants[1];
    let demo = &eval.variants[2];
    assert!(
        demo.critical_path > good.critical_path * 1.2,
        "100k contacts: {} vs {} ns",
        demo.critical_path.as_nano(),
        good.critical_path.as_nano()
    );
}
