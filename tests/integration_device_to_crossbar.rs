//! Integration: device physics → hysteresis → crossbar programming →
//! waveform verification, across `nemfpga-device` and `nemfpga-crossbar`.

use nemfpga_crossbar::array::{Configuration, CrossbarArray};
use nemfpga_crossbar::levels::ProgrammingLevels;
use nemfpga_crossbar::program::{program, reset};
use nemfpga_crossbar::waveform::{run_demo, WaveformConfig};
use nemfpga_crossbar::window::solve_window;
use nemfpga_device::variation::{PopulationStats, VariationModel};
use nemfpga_device::{NemRelayDevice, Relay};
use nemfpga_tech::units::Volts;

#[test]
fn measured_iv_voltages_drive_correct_crossbar_programming() {
    // Extract Vpi/Vpo by "measurement" (I-V sweep), derive a window from
    // them, and program a crossbar with it — the full Sec. 2 story.
    let device = NemRelayDevice::fabricated();
    let mut relay = Relay::new(device.clone());
    let curve = nemfpga_device::iv::sweep(
        &mut relay,
        Volts::new(8.0),
        &nemfpga_device::iv::SweepConfig::paper_fig2b(),
    )
    .expect("sweep runs");
    let vpi = curve.observed_vpi.expect("pull-in observed");
    let vpo = curve.observed_vpo.expect("pull-out observed");

    // Build levels straddling the measured window.
    let levels = ProgrammingLevels { vhold: (vpi + vpo) / 2.0, vselect: (vpi - vpo) / 3.0 };
    levels.validate_for(&device).expect("window derived from measurement is valid");

    let mut xbar = CrossbarArray::uniform(3, 3, device).expect("3x3 builds");
    let mut target = Configuration::all_off(3, 3);
    target.set(0, 2, true);
    target.set(1, 0, true);
    target.set(2, 1, true);
    program(&mut xbar, &target, &levels).expect("programs");
    assert_eq!(xbar.state_configuration(), target);
    reset(&mut xbar).expect("resets");
    assert!(xbar.all_pulled_out());
}

#[test]
fn varied_population_programs_through_solved_window_end_to_end() {
    let population = VariationModel::fabrication_default().sample_population(
        &NemRelayDevice::fabricated(),
        64,
        2026,
    );
    let stats = PopulationStats::of(&population);
    assert!(stats.exact_feasibility_condition(), "population must be programmable");
    let window = solve_window(&stats).expect("window exists");

    let mut xbar = CrossbarArray::from_population(8, 8, &population).expect("8x8 builds");
    // A checkerboard pattern: worst case for half-select disturbance.
    let mut target = Configuration::all_off(8, 8);
    for r in 0..8 {
        for c in 0..8 {
            if (r + c) % 2 == 0 {
                target.set(r, c, true);
            }
        }
    }
    program(&mut xbar, &target, &window.levels).expect("whole population programs");
    assert_eq!(xbar.state_configuration(), target);
    // Reconfiguration: invert the checkerboard.
    let mut inverted = Configuration::all_off(8, 8);
    for r in 0..8 {
        for c in 0..8 {
            if (r + c) % 2 == 1 {
                inverted.set(r, c, true);
            }
        }
    }
    program(&mut xbar, &inverted, &window.levels).expect("reprograms");
    assert_eq!(xbar.state_configuration(), inverted);
}

#[test]
fn reliability_budget_covers_the_demo_sequence() {
    // Run the full three-phase demo on every configuration and verify the
    // accumulated actuations are negligible against the endurance budget.
    let mut total_cycles = 0u64;
    for code in 0..16u64 {
        let mut xbar =
            CrossbarArray::uniform(2, 2, NemRelayDevice::fabricated()).expect("2x2 builds");
        let wave = run_demo(
            &mut xbar,
            &Configuration::from_code(2, 2, code),
            &ProgrammingLevels::paper_demo(),
            &WaveformConfig::paper_fig5(),
        )
        .expect("demo runs");
        assert!(wave.verify(), "config {code}");
        total_cycles += xbar.total_switching_cycles();
    }
    let budget = nemfpga_device::reliability::ReliabilityBudget::paper_default();
    assert!(total_cycles < 200, "demo used {total_cycles} actuations");
    assert!((budget.endurance_cycles as f64 / total_cycles as f64) > 1e6);
}

#[test]
fn scaled_22nm_device_supports_cmos_level_programming() {
    // The architecture study's device must be programmable with ~1 V rails.
    let device = NemRelayDevice::scaled_22nm();
    let vpi = device.pull_in_voltage();
    assert!(vpi.value() < 1.2, "Vpi {} not CMOS-compatible", vpi);
    let levels = ProgrammingLevels {
        vhold: (vpi + device.pull_out_voltage()) / 2.0,
        vselect: (vpi - device.pull_out_voltage()) / 3.0,
    };
    let mut xbar = CrossbarArray::uniform(4, 4, device).expect("4x4 builds");
    let target = Configuration::from_code(4, 4, 0b1010_0101_1100_0011);
    program(&mut xbar, &target, &levels).expect("programs at ~1 V");
    assert_eq!(xbar.state_configuration(), target);
}
