//! Integration: BLIF round-trips for generated benchmarks of many shapes,
//! including property-style randomized checks.

use nemfpga_netlist::blif::{parse_blif, write_blif};
use nemfpga_netlist::cell::CellKind;
use nemfpga_netlist::stats::NetlistStats;
use nemfpga_netlist::synth::{mcnc20, SynthConfig};
use proptest::prelude::*;

fn assert_equivalent(a: &nemfpga_netlist::Netlist, b: &nemfpga_netlist::Netlist) {
    assert_eq!(a.num_luts(), b.num_luts());
    assert_eq!(a.num_latches(), b.num_latches());
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    for cell in a.cells() {
        if let CellKind::Lut(tt_a) = &cell.kind {
            let id_b = b
                .cell_by_name(&cell.name)
                .unwrap_or_else(|| panic!("cell {} lost in round-trip", cell.name));
            match &b.cell(id_b).kind {
                CellKind::Lut(tt_b) => assert_eq!(tt_a, tt_b, "function of {}", cell.name),
                other => panic!("cell {} changed kind to {other:?}", cell.name),
            }
            // Fan-in order (and hence semantics) preserved.
            let names_a: Vec<&str> = cell.inputs.iter().map(|n| a.net(*n).name.as_str()).collect();
            let names_b: Vec<&str> =
                b.cell(id_b).inputs.iter().map(|n| b.net(*n).name.as_str()).collect();
            assert_eq!(names_a, names_b, "fan-in of {}", cell.name);
        }
    }
}

#[test]
fn scaled_mcnc_presets_round_trip() {
    for mut cfg in mcnc20().into_iter().take(6) {
        cfg.luts = (cfg.luts / 20).max(30);
        cfg.inputs = (cfg.inputs / 4).max(4);
        cfg.outputs = (cfg.outputs / 4).max(4);
        let original = cfg.generate().expect("generates");
        let reparsed = parse_blif(&write_blif(&original)).expect("parses");
        assert_equivalent(&original, &reparsed);
        // Stats agree (depth is structural, so it must survive).
        let sa = NetlistStats::of(&original).expect("stats");
        let sb = NetlistStats::of(&reparsed).expect("stats");
        assert_eq!(sa.logic_depth, sb.logic_depth, "{}", cfg.name);
        assert_eq!(sa.max_fanout, sb.max_fanout, "{}", cfg.name);
    }
}

#[test]
fn double_round_trip_is_fixed_point() {
    let original = SynthConfig::tiny("fp", 80, 21).generate().expect("generates");
    let once = write_blif(&parse_blif(&write_blif(&original)).expect("parse 1"));
    let twice = write_blif(&parse_blif(&once).expect("parse 2"));
    assert_eq!(once, twice, "BLIF text must stabilize after one round-trip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_synthetic_netlists_round_trip(
        luts in 5usize..120,
        seed in 0u64..1_000,
        latch_pct in 0u32..60,
    ) {
        let mut cfg = SynthConfig::tiny("prop", luts, seed);
        cfg.latch_fraction = latch_pct as f64 / 100.0;
        let original = cfg.generate().expect("generates");
        let reparsed = parse_blif(&write_blif(&original)).expect("parses");
        assert_equivalent(&original, &reparsed);
    }

    #[test]
    fn generated_netlists_always_validate(
        luts in 1usize..150,
        seed in 0u64..1_000,
        depth in 1usize..12,
    ) {
        let mut cfg = SynthConfig::tiny("val", luts, seed);
        cfg.target_depth = depth;
        let netlist = cfg.generate().expect("generates");
        netlist.validate().expect("validates");
        prop_assert_eq!(netlist.num_luts(), luts);
        // Depth never exceeds the target.
        prop_assert!(netlist.logic_depth().expect("acyclic") <= depth);
    }
}
