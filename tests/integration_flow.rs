//! Integration: the full CAD + evaluation pipeline across netlist, arch,
//! pnr, power, and core crates.

use nemfpga::flow::{evaluate, EvaluationConfig};
use nemfpga::variant::FpgaVariant;
use nemfpga_arch::validate_rr_graph;
use nemfpga_netlist::blif::{parse_blif, write_blif};
use nemfpga_netlist::synth::SynthConfig;
use nemfpga_pnr::flow::{implement, WidthPolicy};
use nemfpga_pnr::place::{check_legal, PlaceConfig};
use nemfpga_pnr::route::{check_routing, RouteConfig};
use nemfpga_pnr::timing::{analyze_timing, test_timing_model};

#[test]
fn implement_produces_verifiable_artifacts() {
    let netlist = SynthConfig::tiny("veri", 90, 11).generate().expect("generates");
    let imp = implement(
        netlist,
        &nemfpga_arch::ArchParams::paper_table1(),
        &PlaceConfig::fast(11),
        &RouteConfig::new(),
        WidthPolicy::LowStress { hint: 12, max: 256 },
    )
    .expect("implements");

    validate_rr_graph(&imp.rr).expect("rr graph is structurally sound");
    check_legal(&imp.design, &imp.placement).expect("placement is legal");
    check_routing(&imp.rr, &imp.design, &imp.placement, &imp.routing)
        .expect("routing is connected and uncongested");

    let report =
        analyze_timing(&imp.rr, &imp.design, &imp.placement, &imp.routing, &test_timing_model())
            .expect("timing analyzes");
    assert!(report.critical_path.as_nano() > 0.1);
}

#[test]
fn blif_netlist_flows_through_the_full_pipeline() {
    // Round-trip a generated netlist through BLIF, then implement the
    // parsed copy: the interchange format feeds the CAD flow.
    let original = SynthConfig::tiny("io_test", 50, 5).generate().expect("generates");
    let text = write_blif(&original);
    let parsed = parse_blif(&text).expect("round-trips");
    assert_eq!(parsed.num_luts(), original.num_luts());

    let cfg = EvaluationConfig::fast(5);
    let variants = vec![FpgaVariant::cmos_baseline(&cfg.node)];
    let eval = evaluate(parsed, &cfg, &variants).expect("evaluates");
    assert!(eval.variants[0].power.total().value() > 0.0);
}

#[test]
fn evaluation_is_deterministic() {
    let run = || {
        let cfg = EvaluationConfig::fast(99);
        let variants = vec![FpgaVariant::cmos_baseline(&cfg.node), FpgaVariant::cmos_nem(4.0)];
        evaluate(SynthConfig::tiny("det", 70, 99).generate().expect("generates"), &cfg, &variants)
            .expect("evaluates")
    };
    let a = run();
    let b = run();
    assert_eq!(a.channel_width, b.channel_width);
    assert_eq!(a.wirelength_tiles, b.wirelength_tiles);
    assert_eq!(a.variants[0].critical_path, b.variants[0].critical_path);
    assert_eq!(a.variants[1].power.leakage.total(), b.variants[1].power.leakage.total());
}

#[test]
fn seeds_change_implementation_but_not_conclusions() {
    // Different CAD seeds give different placements/routings, but the
    // NEM-vs-CMOS leakage conclusion must be robust to them.
    let mut reductions = Vec::new();
    for seed in [1u64, 2, 3] {
        let cfg = EvaluationConfig::fast(seed);
        let variants = vec![FpgaVariant::cmos_baseline(&cfg.node), FpgaVariant::cmos_nem(4.0)];
        let eval = evaluate(
            SynthConfig::tiny("seeded", 80, 7).generate().expect("generates"),
            &cfg,
            &variants,
        )
        .expect("evaluates");
        let r = eval.variants[0].power.leakage.total() / eval.variants[1].power.leakage.total();
        reductions.push(r);
    }
    for r in &reductions {
        assert!(*r > 2.0, "leakage reduction {r} collapsed under a seed change");
    }
    let spread = reductions.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / reductions.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 1.5, "seed spread {spread} too wide");
}

#[test]
fn wider_channels_reduce_congestion_pressure() {
    // Same design at fixed widths: a comfortably wide channel must route
    // in fewer PathFinder iterations than a tight one.
    let netlist = SynthConfig::tiny("width", 80, 13).generate().expect("generates");
    let params = nemfpga_arch::ArchParams::paper_table1();
    let design = nemfpga_pnr::pack::pack(netlist, &params).expect("packs");
    let grid = nemfpga_arch::Grid::for_design(
        design.num_logic_blocks(),
        design.num_pads(),
        params.io_rate,
    )
    .expect("grid sizes");
    let placement =
        nemfpga_pnr::place::place(&design, grid, &PlaceConfig::fast(13)).expect("places");

    let mut iters = Vec::new();
    for w in [30usize, 60] {
        let rr = nemfpga_arch::build_rr_graph(&params, grid, w).expect("builds");
        if let Ok(routing) =
            nemfpga_pnr::route::route(&rr, &design, &placement, &RouteConfig::new())
        {
            iters.push((w, routing.iterations));
        }
    }
    // Both comfortable widths route, and neither grinds against the
    // iteration ceiling (exact counts vary with the per-width pin maps).
    assert_eq!(iters.len(), 2, "{iters:?}");
    for (w, it) in iters {
        assert!(it < 60, "W={w} needed {it} iterations");
    }
}
